//! Financial fraud detection — the paper's motivating scenario
//! (Figure 2): users are vertices, trust/transaction relationships are
//! weighted edges, and an account is *suspicious* when its shortest
//! distance from a known-malicious root falls within a threshold.
//!
//! Per-update analysis matters here: Figure 2 shows a user who is
//! suspicious only in an intermediate version — batch systems that skip
//! versions miss the detection window. This example reproduces exactly
//! that: a transient edge makes account 4 suspicious for one version,
//! then the edge disappears.
//!
//! ```sh
//! cargo run --release --example fraud_detection
//! ```

use std::sync::Arc;

use risgraph::core::server::{Server, ServerConfig};
use risgraph::prelude::*;

/// Accounts within this distance of the malicious root are flagged.
const SUSPICION_RADIUS: u64 = 2;
const MALICIOUS_ROOT: u64 = 0;

fn main() {
    // SSSP from the malicious root over the trust graph.
    let server: Server = Server::start(
        vec![Arc::new(Sssp::new(MALICIOUS_ROOT)) as DynAlgorithm],
        1 << 10,
        ServerConfig::default(),
    )
    .unwrap();

    // Figure 2's version 0: the malicious root trusts account 1
    // (weight 1); 1 trusts 2 (1); 2 trusts 5 (1); 1 trusts 3 at
    // distance 3 via weight 2... we mirror the figure's distances:
    //   dist(1)=1, dist(2)=... and account 4 starts unreachable.
    server.load_edges(&[
        (0, 1, 1), // root → 1
        (1, 2, 1), // 1 → 2
        (2, 5, 1), // 2 → 5
        (1, 3, 3), // 1 → 3 (far)
    ]);
    let session = server.session();
    let v0 = session.get_current_version();
    println!("version {v0}: initial trust graph");
    report(&session, v0);

    // An incoming interaction: 5 starts trusting 4. Per-update analysis
    // immediately sees dist(4) = dist(5)+1 = 3... wait — the paper's
    // example inserts <5,4> with weight 1 while dist(5)=2, pulling 4 to
    // distance 3? Figure 2 flags 4 as suspicious at distance ≤ 2 after
    // the insertion because dist(5)=1 in its configuration. We use
    // weights that reproduce the *flagging*: a direct transfer 1 → 4.
    let reply = session.ins_edge(Edge::new(1, 4, 1));
    let v1 = reply.version;
    println!("\nversion {v1}: edge 1→4 (weight 1) ingested");
    println!(
        "  modified accounts: {:?}",
        session.get_modified_vertices(0, v1).unwrap()
    );
    report(&session, v1);
    let d4 = session.get_value(0, v1, 4).unwrap();
    assert!(d4 <= SUSPICION_RADIUS);
    println!("  🚨 account 4 flagged (distance {d4} ≤ {SUSPICION_RADIUS})");

    // The edge disappears next update (fraudsters cover their tracks).
    let reply = session.del_edge(Edge::new(1, 4, 1));
    let v2 = reply.version;
    println!("\nversion {v2}: edge 1→4 deleted again");
    report(&session, v2);

    // The point of per-update analysis: version v1 remains auditable.
    println!(
        "\naudit trail: dist(4) was {} at v{v1}, is {} at v{v2} — a batch\n\
         system skipping v{v1} would have missed the flag entirely.",
        show(session.get_value(0, v1, 4).unwrap()),
        show(session.get_value(0, v2, 4).unwrap()),
    );

    // Dependency-tree forensics: *how* was account 4 reached at v1?
    if let Some(edge) = session.get_parent(0, v1, 4).unwrap() {
        println!(
            "forensics: at v{v1}, account 4's suspicion came through {} → 4 (weight {})",
            edge.src, edge.data
        );
    }
    server.shutdown();
}

fn report(session: &Session, version: u64) {
    print!("  distances from malicious root:");
    for account in 1..=5u64 {
        let d = session.get_value(0, version, account).unwrap();
        let mark = if d <= SUSPICION_RADIUS { "⚠" } else { " " };
        print!("  {account}:{}{mark}", show(d));
    }
    println!();
}

fn show(v: u64) -> String {
    if v == u64::MAX {
        "∞".into()
    } else {
        v.to_string()
    }
}
