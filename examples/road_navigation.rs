//! Live road navigation — §7's non-power-law scenario as an
//! application: SSSP over a road grid with real-time traffic updates
//! (closures and re-openings), extracting actual routes from the
//! dependency tree's parent pointers.
//!
//! ```sh
//! cargo run --release --example road_navigation
//! ```

use risgraph::prelude::*;
use risgraph::workloads::road::RoadConfig;

fn main() {
    let grid = RoadConfig {
        width: 24,
        height: 24,
        keep_fraction: 0.95,
        highways: 10,
        seed: 2024,
        max_weight: 9,
    };
    let depot: VertexId = 0; // top-left corner
    let edges = grid.generate();
    println!(
        "road grid: {}×{} intersections, {} directed segments",
        grid.width,
        grid.height,
        edges.len()
    );

    let engine: Engine = Engine::with_algorithm(Sssp::new(depot), grid.num_vertices());
    engine.load_edges(&edges);

    let destination = (grid.num_vertices() - 1) as VertexId; // bottom-right
    println!(
        "\nbaseline travel time depot → {destination}: {}",
        engine.value(0, destination)
    );
    print_route(&engine, destination);

    // Rush hour: close every segment on the current best route, one by
    // one, and watch the route re-plan incrementally.
    for round in 1..=3 {
        let route = route_edges(&engine, destination);
        let Some(&closed) = route.first() else { break };
        let t = std::time::Instant::now();
        engine.apply(&Update::DelEdge(closed)).unwrap();
        let dt = t.elapsed();
        println!(
            "\nround {round}: closed {} → {} (re-planned in {dt:?})",
            closed.src, closed.dst
        );
        let eta = engine.value(0, destination);
        if eta == u64::MAX {
            println!("  destination unreachable!");
            break;
        }
        println!("  new travel time: {eta}");
        print_route(&engine, destination);
    }

    // The road reopens — incremental insertion restores the old plan if
    // it is still the best one.
    println!("\ntraffic clears: reopening a fast diagonal highway");
    engine
        .apply(&Update::InsEdge(Edge::new(depot, destination, 30)))
        .unwrap();
    println!(
        "  direct highway gives travel time {}",
        engine.value(0, destination)
    );
    print_route(&engine, destination);
}

/// Follow parent pointers from `dst` back to the root.
fn route_edges(engine: &Engine, dst: VertexId) -> Vec<Edge> {
    let mut route = Vec::new();
    let mut v = dst;
    while let Some(edge) = engine.parent(0, v) {
        route.push(edge);
        v = edge.src;
        if route.len() > 10_000 {
            break; // defensive: trees are acyclic, but cap anyway
        }
    }
    route.reverse();
    route
}

fn print_route(engine: &Engine, dst: VertexId) {
    let route = route_edges(engine, dst);
    if route.is_empty() {
        println!("  (no route)");
        return;
    }
    let hops: Vec<String> = std::iter::once(route[0].src.to_string())
        .chain(route.iter().map(|e| e.dst.to_string()))
        .collect();
    let shown = if hops.len() > 12 {
        format!(
            "{} … {} ({} intersections)",
            hops[..6].join(" → "),
            hops[hops.len() - 3..].join(" → "),
            hops.len()
        )
    } else {
        hops.join(" → ")
    };
    println!("  route: {shown}");
}
