//! Quickstart: maintain BFS over an evolving graph, per update.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the three layers most users touch: the engine (direct,
//! single-writer), classification (why most updates are cheap), and the
//! interactive server (sessions + versioned snapshots).

use std::sync::Arc;

use risgraph::core::server::{Server, ServerConfig};
use risgraph::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The engine: incremental BFS from vertex 0.
    // ------------------------------------------------------------------
    let engine: Engine = Engine::with_algorithm(Bfs::new(0), 1 << 10);
    engine.load_edges(&[(0, 1, 0), (1, 2, 0), (2, 3, 0), (0, 4, 0)]);
    println!("initial distances:");
    for v in 0..5 {
        println!("  dist(0 → {v}) = {}", show(engine.value(0, v)));
    }

    // A shortcut edge appears: the result repairs in microseconds, and
    // the change set tells us exactly which vertices moved.
    let (safety, changes) = engine.apply(&Update::InsEdge(Edge::new(4, 3, 0))).unwrap();
    println!("\ninsert 4→3 was classified {safety:?}; changed vertices:");
    for c in &changes.per_algo[0] {
        println!("  v{}: {} → {}", c.vertex, show(c.old), show(c.new));
    }

    // Deleting a dependency-tree edge triggers subtree recovery; the
    // change set also reports dependency-tree rewires.
    let (_, changes) = engine.apply(&Update::DelEdge(Edge::new(0, 1, 0))).unwrap();
    println!("\ndelete 0→1 (a tree edge); changed vertices:");
    for c in &changes.per_algo[0] {
        if c.old == c.new {
            println!(
                "  v{}: value {} kept, parent rewired {:?} → {:?}",
                c.vertex,
                show(c.new),
                c.old_parent.map(|e| e.src),
                c.new_parent.map(|e| e.src)
            );
        } else {
            println!("  v{}: {} → {}", c.vertex, show(c.old), show(c.new));
        }
    }

    // ------------------------------------------------------------------
    // 2. Classification: most updates on skewed graphs are "safe" —
    //    provably result-preserving, executable in parallel.
    // ------------------------------------------------------------------
    let back_edge = Update::InsEdge(Edge::new(3, 0, 0));
    println!(
        "\ninsert 3→0 classifies as {:?} (cannot improve the root)",
        engine.classify(&back_edge)
    );

    // ------------------------------------------------------------------
    // 3. The interactive server: sessions, versions, history.
    // ------------------------------------------------------------------
    let server: Server = Server::start(
        vec![Arc::new(Bfs::new(0)) as DynAlgorithm],
        1 << 10,
        ServerConfig::default(),
    )
    .unwrap();
    server.load_edges(&[(0, 1, 0), (1, 2, 0)]);
    let session = server.session();

    let before = session.get_current_version();
    let reply = session.ins_edge(Edge::new(0, 2, 0));
    let after = reply.version;
    println!("\nserver: version {before} → {after}");
    println!(
        "  dist(2) @ v{before} = {}   (old snapshot, still queryable)",
        show(session.get_value(0, before, 2).unwrap())
    );
    println!(
        "  dist(2) @ v{after} = {}   (after the shortcut)",
        show(session.get_value(0, after, 2).unwrap())
    );
    println!(
        "  modified by v{after}: {:?}",
        session.get_modified_vertices(0, after).unwrap()
    );
    server.shutdown();
}

fn show(v: u64) -> String {
    if v == u64::MAX {
        "∞".into()
    } else {
        v.to_string()
    }
}
