//! Maintaining multiple algorithms at once (§4 "Supporting Transactions
//! and Multiple Algorithms"): one evolving network, three concurrent
//! analyses — reachability hops (BFS), latency (SSSP) and bandwidth
//! (SSWP) from a datacenter root — updated atomically by transactions
//! from concurrent operator sessions.
//!
//! ```sh
//! cargo run --release --example multi_algorithm
//! ```

use std::sync::Arc;

use risgraph::core::server::{Server, ServerConfig};
use risgraph::prelude::*;

const ROOT: u64 = 0;

fn main() {
    let server: Server = Server::start(
        vec![
            Arc::new(Bfs::new(ROOT)) as DynAlgorithm,
            Arc::new(Sssp::new(ROOT)) as DynAlgorithm,
            Arc::new(Sswp::new(ROOT)) as DynAlgorithm,
        ],
        1 << 12,
        ServerConfig::default(),
    )
    .unwrap();

    // A small leaf-spine network: weights are link latencies for SSSP
    // and capacities for SSWP (one weight per edge, interpreted per
    // algorithm — hops/latency/bandwidth all improve along the same
    // monotonic API).
    server.load_edges(&[
        (0, 1, 10), // root → spine1
        (0, 2, 10), // root → spine2
        (1, 3, 40),
        (1, 4, 40),
        (2, 4, 40),
        (2, 5, 40),
    ]);
    let session = server.session();
    let v = session.get_current_version();
    println!("metrics from the datacenter root (version {v}):");
    table(&session, v);

    // Concurrent operators patch the network. Each rewiring is an
    // atomic transaction: remove the old link and add the new one in a
    // single indivisible step, so no analysis ever sees a half-rewired
    // network.
    println!("\noperator A: migrate host 4's uplink 1→4 onto spine 2 (atomic txn)");
    let reply = session.txn_updates(vec![
        Update::DelEdge(Edge::new(1, 4, 40)),
        Update::InsEdge(Edge::new(2, 4, 80)),
    ]);
    let applied = reply.outcome.unwrap();
    println!(
        "  version {} ({:?}, {} result changes across 3 algorithms)",
        reply.version, applied.safety, applied.result_changes
    );
    table(&session, reply.version);

    // Two sessions racing: safe updates from both execute in parallel
    // inside one epoch; the engine proves they can't affect any of the
    // three analyses.
    let session_b = server.session();
    let h = std::thread::spawn(move || {
        // Back-edges toward the root: safe for all three algorithms.
        for leaf in [3u64, 4, 5] {
            let r = session_b.ins_edge(Edge::new(leaf, ROOT, 1));
            assert!(r.outcome.unwrap().result_changes == 0);
        }
    });
    let r = session.ins_edge(Edge::new(5, 3, 1));
    h.join().unwrap();
    println!(
        "\nconcurrent safe updates done (last version {}); metrics unchanged:",
        r.version
    );
    table(&session, session.get_current_version());

    // An update can be safe for one algorithm but not another — it is
    // parallel-executable only when safe for all (conjunctive rule).
    println!("\na fat direct link root→5 (improves SSWP and BFS, not SSSP):");
    let reply = session.ins_edge(Edge::new(0, 5, 500));
    println!(
        "  executed {:?}, {} result changes",
        reply.outcome.as_ref().unwrap().safety,
        reply.outcome.as_ref().unwrap().result_changes
    );
    table(&session, reply.version);
    server.shutdown();
}

fn table(session: &Session, version: u64) {
    println!("  host   hops  latency  bandwidth");
    for host in 1..=5u64 {
        let hops = session.get_value(0, version, host).unwrap();
        let lat = session.get_value(1, version, host).unwrap();
        let bw = session.get_value(2, version, host).unwrap();
        println!(
            "  {host:>4}   {:>4}  {:>7}  {:>9}",
            fmt(hops),
            fmt(lat),
            fmt(bw)
        );
    }
}

fn fmt(v: u64) -> String {
    if v == u64::MAX {
        "∞".into()
    } else {
        v.to_string()
    }
}
