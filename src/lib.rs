//! # RisGraph — a real-time streaming system for evolving graphs
//!
//! A from-scratch Rust reproduction of **RisGraph** (Feng et al.,
//! SIGMOD 2021): per-update incremental analysis of monotonic graph
//! algorithms (BFS, SSSP, SSWP, WCC, …) on evolving graphs, with
//! sub-millisecond processing latency at millions of updates per
//! second, via *localized data access* (Indexed Adjacency Lists, sparse
//! active sets, Hybrid Parallel Mode) and *inter-update parallelism*
//! (safe/unsafe classification + epoch loop scheduling).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`common`] | `risgraph-common` | ids, sparse sets, bitmaps, stats |
//! | [`storage`] | `risgraph-storage` | Indexed Adjacency Lists, index variants, baselines, CSR |
//! | [`algorithms`] | `risgraph-algorithms` | the Algorithm API + Table 2 algorithms |
//! | [`core`] | `risgraph-core` | engine, classification, epoch loop, scheduler, history, WAL, server |
//! | [`net`] | `risgraph-net` | TCP serving tier: framed wire protocol, pipelined sessions, NetClient |
//! | [`baselines`] | `risgraph-baselines` | KickStarter-/DD-style + recompute comparisons |
//! | [`workloads`] | `risgraph-workloads` | graph generators, dataset registry, update streams |
//!
//! ## Quick start
//!
//! ```
//! use risgraph::prelude::*;
//!
//! // Maintain BFS-from-vertex-0 over an evolving graph.
//! let engine: Engine = Engine::with_algorithm(Bfs::new(0), 1024);
//! engine.load_edges(&[(0, 1, 0), (1, 2, 0)]);
//! assert_eq!(engine.value(0, 2), 2);
//!
//! // Stream an update; the result repairs incrementally.
//! engine.apply(&Update::InsEdge(Edge::new(0, 2, 0))).unwrap();
//! assert_eq!(engine.value(0, 2), 1);
//!
//! // Deletions recover through the dependency tree.
//! engine.apply(&Update::DelEdge(Edge::new(0, 2, 0))).unwrap();
//! assert_eq!(engine.value(0, 2), 2);
//! ```
//!
//! ## Storage backends
//!
//! The engine is generic over [`storage::DynamicGraph`], the storage
//! contract extracted from the paper's §6.3 comparison. One engine —
//! and one server — drives the whole backend matrix:
//!
//! | `--store` | type | layout |
//! |-----------|------|--------|
//! | `ia-hash` (default) | `GraphStore<HashIndex>` | Indexed Adjacency Lists + hash indexes |
//! | `ia-btree` / `ia-art` | `GraphStore<_>` | ditto with B-tree / ART indexes |
//! | `io-hash` / `io-btree` / `io-art` | `IndexOnlyStore<_>` | edges only in per-vertex indexes |
//! | `ooc` | `OocStore` | out-of-core 4 KiB block chains + LRU cache (global mutex) |
//! | `ooc-mmap` | `MmapOocStore` | mmap-backed block chains, per-vertex lock striping + chain indexes |
//!
//! ```
//! use risgraph::prelude::*;
//! use std::sync::Arc;
//!
//! // The same engine API over a runtime-selected backend:
//! let kind = BackendKind::parse("io-hash").unwrap();
//! let store = AnyStore::open(&kind, 1024, Default::default()).unwrap();
//! let engine = Engine::from_store(
//!     store,
//!     vec![Arc::new(Bfs::new(0)) as DynAlgorithm],
//!     Default::default(),
//! );
//! engine.load_edges(&[(0, 1, 0), (1, 2, 0)]);
//! assert_eq!(engine.value(0, 2), 2);
//! ```
//!
//! Servers select their backend through
//! [`core::server::ServerConfig::backend`] (defaulting from the
//! `RISGRAPH_STORE` environment variable); the CLI exposes the same
//! choice as `risgraph --store <backend>`. A cross-backend differential
//! property test (`tests/proptest_invariants.rs`) holds all backends to
//! identical results and store contents under random update streams.
//!
//! For the full interactive tier (sessions, versioned snapshots,
//! transactions, durability) see [`core::server::Server`]; to serve it
//! over TCP — pipelined clients, client-observed latency percentiles,
//! a network ≡ in-process differential proof — see [`net::NetServer`] /
//! [`net::NetClient`] and `risgraph serve --listen ADDR`. Runnable
//! scenarios live in `examples/`.

pub use risgraph_algorithms as algorithms;
pub use risgraph_baselines as baselines;
pub use risgraph_common as common;
pub use risgraph_core as core;
pub use risgraph_net as net;
pub use risgraph_storage as storage;
pub use risgraph_workloads as workloads;

/// The types most programs need.
pub mod prelude {
    pub use risgraph_algorithms::{Bfs, MaxLabel, Monotonic, Reachability, Sssp, Sswp, Wcc};
    pub use risgraph_common::ids::{Edge, Update, VersionId, VertexId, Weight};
    pub use risgraph_common::{Error, Result};
    pub use risgraph_core::engine::{ChangeSet, DynAlgorithm, Engine, EngineConfig, Safety};
    pub use risgraph_core::server::{Reply, Server, ServerConfig, Session};
    pub use risgraph_storage::{AnyStore, BackendKind, DefaultStore, DynamicGraph, GraphStore};
    pub use risgraph_workloads::{DatasetSpec, StreamConfig};
}
