//! `risgraph` — a command-line shell around the engine.
//!
//! ```sh
//! cargo run --release --bin risgraph -- --algorithm sssp --root 0 --store ia-hash
//! ```
//!
//! `--store` selects the storage backend (the §6.3 matrix): Indexed
//! Adjacency Lists (`ia-hash`, `ia-btree`, `ia-art`), index-only
//! layouts (`io-hash`, `io-btree`, `io-art`), or an out-of-core store —
//! `ooc` (block I/O behind a global mutex, the durability-conservative
//! prototype) or `ooc-mmap` (mmap-backed with per-vertex lock striping,
//! the concurrent variant). `RISGRAPH_STORE` sets the default. Every
//! command below runs identically on each.
//!
//! `--shards N` runs the shell through the full interactive tier
//! instead of the bare engine: a [`Server`] with `N` safe-phase shard
//! executors (§4's epoch loop, sharded), one session submitting your
//! commands, replies carrying result-view version ids. `N = 1` is the
//! serial coordinator; higher values parallelize the commuting safe
//! prefix of each epoch.
//!
//! Reads commands from stdin (one per line), suitable both for
//! interactive exploration and for piping edge streams:
//!
//! ```text
//! load edges.txt          # whitespace-separated "src dst [weight]" lines
//! gen rmat 12 16          # or generate: 2^12 vertices, 16 edges/vertex
//! ins 3 7 2               # insert edge 3→7 weight 2 (analyzed per update)
//! del 3 7 2               # delete it again
//! get 7                   # value + dependency-tree parent of vertex 7
//! path 7                  # walk parent pointers back to the root
//! top 10                  # the 10 best-valued vertices
//! stats                   # engine counters
//! aff                     # §7 affected-area report
//! quit
//! ```

use std::io::{BufRead, Write};

use risgraph::core::affected::analyze;
use risgraph::core::server::{Server, ServerConfig, Session};
use risgraph::prelude::*;
use risgraph::storage::{AnyStore, BackendKind, StoreConfig};
use risgraph::workloads::rmat::RmatConfig;

fn parse_args() -> (String, u64, BackendKind, Option<usize>) {
    let mut algorithm = "bfs".to_string();
    let mut root = 0u64;
    // RISGRAPH_STORE picks the default backend; --store overrides it.
    let mut backend = BackendKind::from_env();
    let mut shards = None;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--algorithm" | "-a" if i + 1 < args.len() => {
                algorithm = args[i + 1].to_lowercase();
                i += 2;
            }
            "--root" | "-r" if i + 1 < args.len() => {
                root = args[i + 1].parse().unwrap_or(0);
                i += 2;
            }
            "--store" | "-s" if i + 1 < args.len() => {
                backend = match BackendKind::parse(&args[i + 1]) {
                    Some(b) => b,
                    None => {
                        eprintln!(
                            "unknown store {}; choose one of {}",
                            args[i + 1],
                            BackendKind::CLI_CHOICES
                        );
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--shards" if i + 1 < args.len() => {
                shards = match args[i + 1].parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--shards takes a positive executor count");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: risgraph [--algorithm bfs|sssp|sswp|wcc|reach] [--root VID] \
                     [--store {}] [--shards N]\n\n\
                     --shards N  serve through the interactive tier (sessions + epoch\n\
                     \u{20}           loop) with N parallel safe-phase shard executors;\n\
                     \u{20}           omit it to drive the engine directly",
                    BackendKind::CLI_CHOICES
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    (algorithm, root, backend, shards)
}

fn make_algorithm(algorithm: &str, root: u64) -> DynAlgorithm {
    use std::sync::Arc;
    match algorithm {
        "bfs" => Arc::new(risgraph::algorithms::Bfs::new(root)),
        "sssp" => Arc::new(risgraph::algorithms::Sssp::new(root)),
        "sswp" => Arc::new(risgraph::algorithms::Sswp::new(root)),
        "wcc" => Arc::new(risgraph::algorithms::Wcc::new()),
        "reach" => Arc::new(risgraph::algorithms::Reachability::new(root)),
        other => {
            eprintln!("unknown algorithm {other}");
            std::process::exit(2);
        }
    }
}

/// What the shell drives: the bare engine, or a full server with one
/// interactive session (`--shards`).
enum Shell {
    Engine(Box<Engine<AnyStore>>),
    Server { server: Server, session: Session },
}

impl Shell {
    fn new(algorithm: &str, root: u64, backend: &BackendKind, shards: Option<usize>) -> Shell {
        let alg = make_algorithm(algorithm, root);
        match shards {
            None => {
                let store = AnyStore::open(backend, 1 << 16, StoreConfig::default())
                    .unwrap_or_else(|e| {
                        eprintln!("cannot open {} store: {e}", backend.label());
                        std::process::exit(2);
                    });
                Shell::Engine(Box::new(Engine::from_store(
                    store,
                    vec![alg],
                    Default::default(),
                )))
            }
            Some(n) => {
                let config = ServerConfig {
                    backend: backend.clone(),
                    shards: n,
                    ..ServerConfig::default()
                };
                let server = Server::start(vec![alg], 1 << 16, config).unwrap_or_else(|e| {
                    eprintln!("cannot start server on {} store: {e}", backend.label());
                    std::process::exit(2);
                });
                let session = server.session();
                Shell::Server { server, session }
            }
        }
    }

    fn engine(&self) -> &Engine<AnyStore> {
        match self {
            Shell::Engine(e) => e,
            Shell::Server { server, .. } => server.engine(),
        }
    }

    fn load(&self, edges: &[(u64, u64, u64)]) {
        match self {
            Shell::Engine(e) => e.load_edges(edges),
            Shell::Server { server, .. } => server.load_edges(edges),
        }
    }

    /// Apply one update, printing the outcome in the mode's idiom:
    /// engine mode lists per-vertex changes, server mode reports the
    /// reply's version id.
    fn apply(&self, u: &Update) {
        let t = std::time::Instant::now();
        match self {
            Shell::Engine(engine) => match engine.apply(u) {
                Ok((safety, changes)) => {
                    let n: usize = changes.per_algo.iter().map(|c| c.len()).sum();
                    println!("{safety:?}, {n} result change(s), {:?}", t.elapsed());
                    for c in changes.per_algo[0].iter().take(8) {
                        println!(
                            "  v{}: {} -> {}",
                            c.vertex,
                            fmt_value(c.old),
                            fmt_value(c.new)
                        );
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            Shell::Server { session, .. } => {
                let reply = session.submit_update(u);
                match reply.outcome {
                    Ok(applied) => println!(
                        "version {} ({:?}, {} result change(s)), {:?}",
                        reply.version,
                        applied.safety,
                        applied.result_changes,
                        t.elapsed()
                    ),
                    Err(e) => println!("error: {e}"),
                }
            }
        }
    }
}

fn fmt_value(v: u64) -> String {
    if v == u64::MAX {
        "inf".into()
    } else {
        v.to_string()
    }
}

fn main() {
    let (algorithm, root, backend, shards) = parse_args();
    let shell = Shell::new(&algorithm, root, &backend, shards);
    let engine = shell.engine();
    match shards {
        Some(n) => println!(
            "risgraph shell — algorithm {} (root {root}), store {}, serving through \
             {n} safe-phase shard(s); type 'help' for commands",
            algorithm.to_uppercase(),
            backend.label()
        ),
        None => println!(
            "risgraph shell — algorithm {} (root {root}), store {}; type 'help' for commands",
            algorithm.to_uppercase(),
            backend.label()
        ),
    }
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("> ");
        let _ = out.flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => {}
            ["quit" | "exit" | "q"] => break,
            ["help"] => println!(
                "commands: load FILE | gen rmat SCALE FACTOR | ins S D [W] | \
                 del S D [W] | get V | path V | top N | stats | aff | quit"
            ),
            ["load", file] => match std::fs::read_to_string(file) {
                Ok(content) => {
                    let mut edges = Vec::new();
                    for l in content.lines() {
                        let f: Vec<&str> = l.split_whitespace().collect();
                        if f.len() >= 2 {
                            if let (Ok(s), Ok(d)) = (f[0].parse(), f[1].parse()) {
                                let w = f.get(2).and_then(|x| x.parse().ok()).unwrap_or(0);
                                edges.push((s, d, w));
                            }
                        }
                    }
                    let t = std::time::Instant::now();
                    shell.load(&edges);
                    println!("loaded {} edges in {:?}", edges.len(), t.elapsed());
                }
                Err(e) => println!("cannot read {file}: {e}"),
            },
            ["gen", "rmat", scale, factor] => match (scale.parse::<u32>(), factor.parse::<f64>()) {
                (Ok(scale), Ok(edge_factor)) if scale <= 24 => {
                    let cfg = RmatConfig {
                        scale,
                        edge_factor,
                        max_weight: if algorithm == "sssp" || algorithm == "sswp" {
                            100
                        } else {
                            0
                        },
                        ..RmatConfig::default()
                    };
                    let edges = cfg.generate();
                    let t = std::time::Instant::now();
                    shell.load(&edges);
                    println!(
                        "generated |V|={} |E|={} and computed in {:?}",
                        cfg.num_vertices(),
                        edges.len(),
                        t.elapsed()
                    );
                }
                _ => println!("usage: gen rmat SCALE(≤24) EDGE_FACTOR"),
            },
            ["ins", s, d, rest @ ..] | ["del", s, d, rest @ ..] => {
                let is_insert = parts[0] == "ins";
                match (s.parse(), d.parse()) {
                    (Ok(s), Ok(d)) => {
                        let w = rest.first().and_then(|x| x.parse().ok()).unwrap_or(0);
                        let e = Edge::new(s, d, w);
                        let u = if is_insert {
                            Update::InsEdge(e)
                        } else {
                            Update::DelEdge(e)
                        };
                        shell.apply(&u);
                    }
                    _ => println!("usage: ins|del SRC DST [WEIGHT]"),
                }
            }
            ["get", v] => match v.parse::<u64>() {
                Ok(v) if (v as usize) < engine.capacity() => {
                    println!(
                        "value({v}) = {}, parent = {}",
                        fmt_value(engine.value(0, v)),
                        engine
                            .parent(0, v)
                            .map(|e| format!("{} --{}--> {v}", e.src, e.data))
                            .unwrap_or_else(|| "none".into())
                    );
                }
                _ => println!("vertex out of range"),
            },
            ["path", v] => match v.parse::<u64>() {
                Ok(mut v) if (v as usize) < engine.capacity() => {
                    let mut hops = vec![v];
                    while let Some(e) = engine.parent(0, v) {
                        v = e.src;
                        hops.push(v);
                        if hops.len() > 64 {
                            break;
                        }
                    }
                    hops.reverse();
                    println!(
                        "{}",
                        hops.iter()
                            .map(|h| h.to_string())
                            .collect::<Vec<_>>()
                            .join(" -> ")
                    );
                }
                _ => println!("vertex out of range"),
            },
            ["top", n] => {
                let n: usize = n.parse().unwrap_or(10);
                let cap = engine.capacity();
                let mut vals: Vec<(u64, u64)> = (0..cap as u64)
                    .map(|v| (engine.value(0, v), v))
                    .filter(|&(val, _)| val != u64::MAX && val != 0)
                    .collect();
                vals.sort_unstable();
                for (val, v) in vals.iter().take(n) {
                    println!("  v{v}: {}", fmt_value(*val));
                }
            }
            ["stats"] => {
                use std::sync::atomic::Ordering;
                let s = engine.stats();
                println!(
                    "vertices={} edges={} safe={} unsafe={} demoted={} edges_relaxed={}",
                    engine.num_vertices(),
                    engine.num_edges(),
                    s.safe_applied.load(Ordering::Relaxed),
                    s.unsafe_applied.load(Ordering::Relaxed),
                    s.demoted.load(Ordering::Relaxed),
                    s.edges_relaxed.load(Ordering::Relaxed),
                );
                if let Shell::Server { server, .. } = &shell {
                    let ss = server.stats();
                    println!(
                        "server: version={} epochs={} safe_exec={} unsafe_exec={} threshold={}",
                        server.current_version(),
                        ss.epochs.load(Ordering::Relaxed),
                        ss.safe_executed.load(Ordering::Relaxed),
                        ss.unsafe_executed.load(Ordering::Relaxed),
                        ss.threshold.load(Ordering::Relaxed),
                    );
                }
            }
            ["aff"] => {
                let r = analyze(engine, 0);
                println!(
                    "tree depth D_T={} |V_T|={} mean degree={:.2}",
                    r.tree_depth, r.tree_vertices, r.mean_degree
                );
                println!(
                    "mean AFFV={:.4} (bound {:.4}); mean AFFE={:.2} (bound {:.2})",
                    r.mean_affv, r.affv_bound, r.mean_affe, r.affe_bound
                );
            }
            _ => println!("unknown command; try 'help'"),
        }
    }
}
