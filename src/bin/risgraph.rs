//! `risgraph` — a command-line shell around the engine, and a TCP
//! server (`serve` mode) around the full interactive tier.
//!
//! ```sh
//! cargo run --release --bin risgraph -- --algorithm sssp --root 0 --store ia-hash
//! cargo run --release --bin risgraph -- serve --listen 127.0.0.1:4817 --shards 4
//! ```
//!
//! `--store` selects the storage backend (the §6.3 matrix): Indexed
//! Adjacency Lists (`ia-hash`, `ia-btree`, `ia-art`), index-only
//! layouts (`io-hash`, `io-btree`, `io-art`), or an out-of-core store —
//! `ooc` (block I/O behind a global mutex, the durability-conservative
//! prototype) or `ooc-mmap` (mmap-backed with per-vertex lock striping,
//! the concurrent variant). `RISGRAPH_STORE` sets the default. Every
//! command below runs identically on each.
//!
//! `--shards N` runs the shell through the full interactive tier
//! instead of the bare engine: a [`Server`] with `N` safe-phase shard
//! executors (§4's epoch loop, sharded), one session submitting your
//! commands, replies carrying result-view version ids. `N = 1` is the
//! serial coordinator; higher values parallelize the commuting safe
//! prefix of each epoch. `--wal PATH` adds durability (replayed on
//! startup, flushed on quit).
//!
//! **`serve` mode** binds the wire-protocol TCP front end
//! (`crates/net`) instead of the stdin shell: every connection gets its
//! own session with pipelined request handling, and Ctrl-C (SIGINT) or
//! SIGTERM triggers a graceful drain — stop accepting, finish in-flight
//! updates, flush WAL and store, then exit with a stats summary
//! including the client-observed P50/P99/P999 completion latency.
//!
//! Shell mode reads commands from stdin (one per line), suitable both
//! for interactive exploration and for piping edge streams:
//!
//! ```text
//! load edges.txt          # whitespace-separated "src dst [weight]" lines
//! gen rmat 12 16          # or generate: 2^12 vertices, 16 edges/vertex
//! ins 3 7 2               # insert edge 3→7 weight 2 (analyzed per update)
//! del 3 7 2               # delete it again
//! get 7                   # value + dependency-tree parent of vertex 7
//! path 7                  # walk parent pointers back to the root
//! top 10                  # the 10 best-valued vertices
//! stats                   # engine + server counters (latency percentiles)
//! aff                     # §7 affected-area report
//! quit
//! ```

use std::io::{BufRead, Write};
use std::path::PathBuf;

use risgraph::common::metrics::{HistogramSummary, MetricValue, Phase, Registry};
use risgraph::common::stats::fmt_ns;
use risgraph::core::affected::analyze;
use risgraph::core::server::{Server, ServerConfig, Session};
use risgraph::net::{NetConfig, NetServer};
use risgraph::prelude::*;
use risgraph::storage::{AnyStore, BackendKind, StoreConfig};
use risgraph::workloads::rmat::RmatConfig;

struct Args {
    algorithm: String,
    root: u64,
    backend: BackendKind,
    shards: Option<usize>,
    wal: Option<PathBuf>,
    /// `risgraph serve …`: run the TCP front end instead of the shell.
    serve: bool,
    listen: String,
    /// `serve --follow ADDR`: run as a read replica of the leader at
    /// ADDR instead of serving writes.
    follow: Option<String>,
    /// Leader-side replication follower slots (serve mode; default 4).
    max_followers: Option<usize>,
    /// Reactor worker threads for the serving tier (serve mode;
    /// default RISGRAPH_NET_WORKERS or the core count, capped at 4).
    net_workers: Option<usize>,
    /// Global admission budget: total in-flight updates across all
    /// connections before v2 requests are shed with Busy (serve mode;
    /// default RISGRAPH_NET_INFLIGHT_BUDGET or 0 = unlimited).
    inflight_budget: Option<usize>,
    /// Per-session in-flight quota before a v2 session's requests are
    /// shed with Busy (serve mode; default RISGRAPH_NET_SESSION_QUOTA
    /// or 0 = unlimited).
    session_quota: Option<usize>,
    /// New connections/sessions are refused while a worker's inbox +
    /// ready backlog exceeds this depth (serve mode; default
    /// RISGRAPH_NET_ACCEPT_HIGH_WATER or 4096, 0 disables the gate).
    accept_high_water: Option<usize>,
    /// WAL segment rotation threshold in bytes (0 disables rotation).
    max_wal_size: Option<u64>,
    /// Periodic checkpoint cadence in milliseconds.
    checkpoint_interval: Option<u64>,
    /// Serve Prometheus-style text exposition of the metrics registry
    /// on this address (serve and follow modes).
    metrics_listen: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        algorithm: "bfs".to_string(),
        root: 0,
        // RISGRAPH_STORE picks the default backend; --store overrides.
        backend: BackendKind::from_env(),
        shards: None,
        wal: None,
        serve: false,
        listen: "127.0.0.1:0".to_string(),
        follow: None,
        max_followers: None,
        net_workers: None,
        inflight_budget: None,
        session_quota: None,
        accept_high_water: None,
        max_wal_size: None,
        checkpoint_interval: None,
        metrics_listen: None,
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    if args.get(1).map(String::as_str) == Some("serve") {
        parsed.serve = true;
        i = 2;
    }
    while i < args.len() {
        match args[i].as_str() {
            "--algorithm" | "-a" if i + 1 < args.len() => {
                parsed.algorithm = args[i + 1].to_lowercase();
                i += 2;
            }
            "--root" | "-r" if i + 1 < args.len() => {
                parsed.root = args[i + 1].parse().unwrap_or(0);
                i += 2;
            }
            "--store" | "-s" if i + 1 < args.len() => {
                parsed.backend = match BackendKind::parse(&args[i + 1]) {
                    Some(b) => b,
                    None => {
                        eprintln!(
                            "unknown store {}; choose one of {}",
                            args[i + 1],
                            BackendKind::CLI_CHOICES
                        );
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--shards" if i + 1 < args.len() => {
                parsed.shards = match args[i + 1].parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--shards takes a positive executor count");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--wal" if i + 1 < args.len() => {
                parsed.wal = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--listen" if i + 1 < args.len() => {
                parsed.listen = args[i + 1].clone();
                i += 2;
            }
            "--follow" if i + 1 < args.len() => {
                parsed.follow = Some(args[i + 1].clone());
                i += 2;
            }
            "--max-followers" if i + 1 < args.len() => {
                parsed.max_followers = match args[i + 1].parse::<usize>() {
                    Ok(n) => Some(n),
                    Err(_) => {
                        eprintln!("--max-followers takes a follower count (0 disables)");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--net-workers" if i + 1 < args.len() => {
                parsed.net_workers = match args[i + 1].parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--net-workers takes a positive reactor thread count");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--inflight-budget" if i + 1 < args.len() => {
                parsed.inflight_budget = match args[i + 1].parse::<usize>() {
                    Ok(n) => Some(n),
                    Err(_) => {
                        eprintln!("--inflight-budget takes an update count (0 = unlimited)");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--session-quota" if i + 1 < args.len() => {
                parsed.session_quota = match args[i + 1].parse::<usize>() {
                    Ok(n) => Some(n),
                    Err(_) => {
                        eprintln!("--session-quota takes an update count (0 = unlimited)");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--accept-high-water" if i + 1 < args.len() => {
                parsed.accept_high_water = match args[i + 1].parse::<usize>() {
                    Ok(n) => Some(n),
                    Err(_) => {
                        eprintln!("--accept-high-water takes a backlog depth (0 disables)");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--max-wal-size" if i + 1 < args.len() => {
                parsed.max_wal_size = match args[i + 1].parse::<u64>() {
                    Ok(n) => Some(n),
                    Err(_) => {
                        eprintln!("--max-wal-size takes a segment size in bytes (0 disables)");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--metrics-listen" if i + 1 < args.len() => {
                parsed.metrics_listen = Some(args[i + 1].clone());
                i += 2;
            }
            "--checkpoint-interval" if i + 1 < args.len() => {
                parsed.checkpoint_interval = match args[i + 1].parse::<u64>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => {
                        eprintln!("--checkpoint-interval takes a positive cadence in ms");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: risgraph [serve] [--algorithm bfs|sssp|sswp|wcc|reach] [--root VID] \
                     [--store {}] [--shards N] [--wal PATH] [--max-wal-size BYTES] \
                     [--checkpoint-interval MS] [--listen ADDR] [--follow ADDR] \
                     [--max-followers N] [--metrics-listen ADDR] [--inflight-budget N] \
                     [--session-quota N] [--accept-high-water N]\n\n\
                     serve       run the TCP wire-protocol server (crates/net) instead of\n\
                     \u{20}           the stdin shell; Ctrl-C drains gracefully\n\
                     --listen    address to bind in serve mode (default 127.0.0.1:0)\n\
                     --follow    serve as a read replica of the leader at ADDR: stream its\n\
                     \u{20}           epoch WAL records, apply them locally, and answer the\n\
                     \u{20}           read-only Table 1 surface on --listen at the applied\n\
                     \u{20}           watermark (lag reported in STATS)\n\
                     --max-followers N  leader-side replication slots (serve mode;\n\
                     \u{20}           default 4, 0 disables the feed)\n\
                     --net-workers N  reactor worker threads for the serving tier\n\
                     \u{20}           (serve mode; default RISGRAPH_NET_WORKERS or the\n\
                     \u{20}           core count, capped at 4)\n\
                     --inflight-budget N  admission control: total in-flight updates\n\
                     \u{20}           across all connections before protocol-v2 requests\n\
                     \u{20}           are shed with a Busy reply (serve mode; default\n\
                     \u{20}           RISGRAPH_NET_INFLIGHT_BUDGET or 0 = unlimited)\n\
                     --session-quota N  per-session in-flight cap before a v2 session's\n\
                     \u{20}           requests are shed with Busy (serve mode; default\n\
                     \u{20}           RISGRAPH_NET_SESSION_QUOTA or 0 = unlimited)\n\
                     --accept-high-water N  refuse new connections/sessions while a\n\
                     \u{20}           worker's inbox + ready backlog exceeds N (serve\n\
                     \u{20}           mode; default RISGRAPH_NET_ACCEPT_HIGH_WATER or\n\
                     \u{20}           4096, 0 disables the gate)\n\
                     --metrics-listen ADDR  serve Prometheus-style text exposition of\n\
                     \u{20}           the metrics registry over HTTP on ADDR (serve and\n\
                     \u{20}           follow modes; every counter/gauge/histogram,\n\
                     \u{20}           including per-phase epoch-pipeline spans)\n\
                     --shards N  serve through the interactive tier (sessions + epoch\n\
                     \u{20}           loop) with N parallel safe-phase shard executors;\n\
                     \u{20}           in shell mode, omit it to drive the engine directly\n\
                     --wal PATH  write-ahead log (replayed on startup, flushed on exit)\n\
                     --max-wal-size BYTES  rotate the WAL onto a new segment at this size\n\
                     \u{20}           and checkpoint under segment pressure (0 disables;\n\
                     \u{20}           default RISGRAPH_MAX_WAL_SEGMENT or 0)\n\
                     --checkpoint-interval MS  periodic snapshot checkpoint cadence:\n\
                     \u{20}           persists structure + results, truncates old segments\n\
                     \u{20}           and bounds feed retention (default\n\
                     \u{20}           RISGRAPH_CHECKPOINT_INTERVAL_MS or off)",
                    BackendKind::CLI_CHOICES
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    parsed
}

/// Raised by the SIGINT/SIGTERM handler in serve mode.
static STOP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// `risgraph serve --follow ADDR`: run as a read replica — stream the
/// leader's epoch WAL records, apply them locally, serve the read-only
/// Table 1 surface on `--listen`, and report lag on exit.
fn run_follow(args: Args, leader: String) -> ! {
    use risgraph::net::{FollowerConfig, ReplicaServer};
    let alg = make_algorithm(&args.algorithm, args.root);
    let config = ServerConfig {
        backend: args.backend.clone(),
        ..ServerConfig::default()
    };
    let replica = ReplicaServer::start(
        vec![alg],
        1 << 16,
        config,
        FollowerConfig {
            listen: Some(args.listen.clone()),
            ..FollowerConfig::to_leader(leader.clone())
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot follow {leader}: {e}");
        std::process::exit(2);
    });
    install_signal_handlers();
    if let Some(listen) = &args.metrics_listen {
        serve_metrics_http(listen, replica.metrics().clone());
    }
    println!(
        "risgraph replica following {leader} — algorithm {} (root {}), store {}, \
         read-only queries on {}; Ctrl-C to exit",
        args.algorithm.to_uppercase(),
        args.root,
        args.backend.label(),
        replica
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|| "<none>".into()),
    );
    while !STOP.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    use std::sync::atomic::Ordering;
    let s = replica.stats();
    println!(
        "\nreplica: version={} lag={} records={} heartbeats={} reconnects={} stream_errors={}",
        replica.replica().current_version(),
        replica.lag(),
        s.records_applied.load(Ordering::Relaxed),
        s.heartbeats.load(Ordering::Relaxed),
        s.reconnects.load(Ordering::Relaxed),
        s.stream_errors.load(Ordering::Relaxed),
    );
    replica.shutdown();
    std::process::exit(0);
}

/// `risgraph serve`: the TCP front end, draining gracefully on SIGINT.
fn run_serve(args: Args) -> ! {
    if let Some(leader) = args.follow.clone() {
        run_follow(args, leader);
    }
    let alg = make_algorithm(&args.algorithm, args.root);
    let mut config = ServerConfig {
        backend: args.backend.clone(),
        wal_path: args.wal.clone(),
        // Serve mode publishes the replication feed by default (4
        // follower slots); --max-followers 0 disables it.
        max_followers: args.max_followers.unwrap_or(4),
        ..ServerConfig::default()
    };
    if let Some(n) = args.shards {
        config.shards = n;
    }
    if let Some(n) = args.max_wal_size {
        config.max_wal_segment_bytes = n;
    }
    if let Some(ms) = args.checkpoint_interval {
        config.checkpoint_interval = Some(std::time::Duration::from_millis(ms));
    }
    let shards = config.shards;
    let unsafe_workers = config.unsafe_workers;
    let mut net_config = NetConfig {
        listen: args.listen.clone(),
        ..NetConfig::default()
    };
    if let Some(n) = args.net_workers {
        net_config.net_workers = n;
    }
    if let Some(n) = args.inflight_budget {
        net_config.inflight_budget = n;
    }
    if let Some(n) = args.session_quota {
        net_config.session_quota = n;
    }
    if let Some(n) = args.accept_high_water {
        net_config.accept_high_water = n;
    }
    let net_workers = net_config.net_workers;
    let net = NetServer::start(vec![alg], 1 << 16, config, net_config).unwrap_or_else(|e| {
        eprintln!("cannot serve on {}: {e}", args.listen);
        std::process::exit(2);
    });
    install_signal_handlers();
    if let Some(listen) = &args.metrics_listen {
        serve_metrics_http(listen, net.server().metrics().clone());
    }
    println!(
        "risgraph serving on {} — algorithm {} (root {}), store {}, {} shard(s), \
         {} unsafe worker(s), {} net worker(s), {} follower slot(s){}; Ctrl-C to drain and exit",
        net.local_addr(),
        args.algorithm.to_uppercase(),
        args.root,
        args.backend.label(),
        shards,
        unsafe_workers,
        net_workers,
        args.max_followers.unwrap_or(4),
        args.wal
            .as_deref()
            .map(|p| format!(", wal {}", p.display()))
            .unwrap_or_default(),
    );
    while !STOP.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("\ndraining connections and flushing…");
    {
        let s = net.server().stats();
        let (p50, p99, p999) = s.latency_percentiles_ns();
        use std::sync::atomic::Ordering;
        println!(
            "served: version={} epochs={} safe={} unsafe={} latency p50={} p99={} p999={}",
            net.server().current_version(),
            s.epochs.load(Ordering::Relaxed),
            s.safe_executed.load(Ordering::Relaxed),
            s.unsafe_executed.load(Ordering::Relaxed),
            fmt_ns(p50),
            fmt_ns(p99),
            fmt_ns(p999),
        );
        let (up50, up99, up999) = s.unsafe_phase_percentiles_ns();
        println!(
            "unsafe phase: epochs={} p50={} p99={} p999={} parallel_groups={} serial_fallbacks={}",
            s.unsafe_phase.count(),
            fmt_ns(up50),
            fmt_ns(up99),
            fmt_ns(up999),
            s.unsafe_parallel_groups.load(Ordering::Relaxed),
            s.unsafe_serial_fallbacks.load(Ordering::Relaxed),
        );
        let registry = net.server().metrics();
        let traced = registry.counter("epoch.traced").load(Ordering::Relaxed);
        let flagged = registry.counter("epoch.flagged").load(Ordering::Relaxed);
        if traced > 0 {
            println!("epoch pipeline: traced={traced} slow(flagged)={flagged}");
            for phase in Phase::ALL {
                let h = HistogramSummary::of(
                    &registry
                        .histogram(&format!("epoch.phase.{}_ns", phase.name()))
                        .snapshot(),
                );
                if h.count == 0 {
                    continue;
                }
                println!(
                    "  {:<16} epochs={} p50={} p99={} max={}",
                    phase.name(),
                    h.count,
                    fmt_ns(h.p50_ns),
                    fmt_ns(h.p99_ns),
                    fmt_ns(h.max_ns),
                );
            }
        }
    }
    // Graceful drain: finish in-flight updates, flush WAL and store.
    net.shutdown();
    std::process::exit(0);
}

/// Minimal HTTP/1.0 exporter: every connection gets one Prometheus-style
/// text rendering of the registry and is closed. Stateless by design —
/// scrapers reconnect per poll, so there is nothing to drain on exit.
fn serve_metrics_http(listen: &str, registry: std::sync::Arc<Registry>) {
    let listener = std::net::TcpListener::bind(listen).unwrap_or_else(|e| {
        eprintln!("cannot bind metrics listener on {listen}: {e}");
        std::process::exit(2);
    });
    let addr = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| listen.to_string());
    println!("metrics exposition on http://{addr}/metrics");
    std::thread::Builder::new()
        .name("metrics-http".into())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                // Drain whatever request line arrived; the reply is the
                // same regardless of path or method.
                let mut buf = [0u8; 1024];
                use std::io::Read;
                let _ = stream.read(&mut buf);
                let body = registry.render_prometheus();
                let _ = stream.write_all(
                    format!(
                        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                        body.len()
                    )
                    .as_bytes(),
                );
            }
        })
        .expect("spawn metrics exporter thread");
}

fn make_algorithm(algorithm: &str, root: u64) -> DynAlgorithm {
    use std::sync::Arc;
    match algorithm {
        "bfs" => Arc::new(risgraph::algorithms::Bfs::new(root)),
        "sssp" => Arc::new(risgraph::algorithms::Sssp::new(root)),
        "sswp" => Arc::new(risgraph::algorithms::Sswp::new(root)),
        "wcc" => Arc::new(risgraph::algorithms::Wcc::new()),
        "reach" => Arc::new(risgraph::algorithms::Reachability::new(root)),
        other => {
            eprintln!("unknown algorithm {other}");
            std::process::exit(2);
        }
    }
}

/// What the shell drives: the bare engine, or a full server with one
/// interactive session (`--shards`).
enum Shell {
    Engine(Box<Engine<AnyStore>>),
    Server { server: Server, session: Session },
}

impl Shell {
    fn new(args: &Args) -> Shell {
        let alg = make_algorithm(&args.algorithm, args.root);
        let backend = &args.backend;
        match args.shards {
            None if args.wal.is_none() => {
                let store = AnyStore::open(backend, 1 << 16, StoreConfig::default())
                    .unwrap_or_else(|e| {
                        eprintln!("cannot open {} store: {e}", backend.label());
                        std::process::exit(2);
                    });
                Shell::Engine(Box::new(Engine::from_store(
                    store,
                    vec![alg],
                    Default::default(),
                )))
            }
            // A WAL needs the server tier (the engine alone has no
            // durability hook), so `--wal` implies it even without
            // `--shards`.
            shards => {
                let mut config = ServerConfig {
                    backend: backend.clone(),
                    wal_path: args.wal.clone(),
                    ..ServerConfig::default()
                };
                if let Some(n) = shards {
                    config.shards = n;
                }
                if let Some(n) = args.max_wal_size {
                    config.max_wal_segment_bytes = n;
                }
                if let Some(ms) = args.checkpoint_interval {
                    config.checkpoint_interval = Some(std::time::Duration::from_millis(ms));
                }
                let server = Server::start(vec![alg], 1 << 16, config).unwrap_or_else(|e| {
                    eprintln!("cannot start server on {} store: {e}", backend.label());
                    std::process::exit(2);
                });
                let session = server.session();
                Shell::Server { server, session }
            }
        }
    }

    /// The quit path: a server shell must *explicitly* drain and shut
    /// down, or a `--wal` tail buffered since the last group commit
    /// dies with the process exactly as in `Server::crash()`.
    fn finish(self) {
        if let Shell::Server { server, session } = self {
            drop(session);
            server.shutdown();
        }
    }

    fn engine(&self) -> &Engine<AnyStore> {
        match self {
            Shell::Engine(e) => e,
            Shell::Server { server, .. } => server.engine(),
        }
    }

    fn load(&self, edges: &[(u64, u64, u64)]) {
        match self {
            Shell::Engine(e) => e.load_edges(edges),
            Shell::Server { server, .. } => server.load_edges(edges),
        }
    }

    /// Apply one update, printing the outcome in the mode's idiom:
    /// engine mode lists per-vertex changes, server mode reports the
    /// reply's version id.
    fn apply(&self, u: &Update) {
        let t = std::time::Instant::now();
        match self {
            Shell::Engine(engine) => match engine.apply(u) {
                Ok((safety, changes)) => {
                    let n: usize = changes.per_algo.iter().map(|c| c.len()).sum();
                    println!("{safety:?}, {n} result change(s), {:?}", t.elapsed());
                    for c in changes.per_algo[0].iter().take(8) {
                        println!(
                            "  v{}: {} -> {}",
                            c.vertex,
                            fmt_value(c.old),
                            fmt_value(c.new)
                        );
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            Shell::Server { session, .. } => {
                let reply = session.submit_update(u);
                match reply.outcome {
                    Ok(applied) => println!(
                        "version {} ({:?}, {} result change(s)), {:?}",
                        reply.version,
                        applied.safety,
                        applied.result_changes,
                        t.elapsed()
                    ),
                    Err(e) => println!("error: {e}"),
                }
            }
        }
    }
}

fn fmt_value(v: u64) -> String {
    if v == u64::MAX {
        "inf".into()
    } else {
        v.to_string()
    }
}

fn main() {
    let args = parse_args();
    if args.serve {
        run_serve(args);
    }
    let shell = Shell::new(&args);
    let engine = shell.engine();
    let (algorithm, root, backend) = (&args.algorithm, args.root, &args.backend);
    match &shell {
        Shell::Server { .. } => println!(
            "risgraph shell — algorithm {} (root {root}), store {}, serving through \
             the interactive tier; type 'help' for commands",
            algorithm.to_uppercase(),
            backend.label()
        ),
        Shell::Engine(_) => println!(
            "risgraph shell — algorithm {} (root {root}), store {}; type 'help' for commands",
            algorithm.to_uppercase(),
            backend.label()
        ),
    }
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("> ");
        let _ = out.flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => {}
            ["quit" | "exit" | "q"] => break,
            ["help"] => println!(
                "commands: load FILE | gen rmat SCALE FACTOR | ins S D [W] | \
                 del S D [W] | get V | path V | top N | stats | metrics | aff | quit"
            ),
            ["load", file] => match std::fs::read_to_string(file) {
                Ok(content) => {
                    let mut edges = Vec::new();
                    for l in content.lines() {
                        let f: Vec<&str> = l.split_whitespace().collect();
                        if f.len() >= 2 {
                            if let (Ok(s), Ok(d)) = (f[0].parse(), f[1].parse()) {
                                let w = f.get(2).and_then(|x| x.parse().ok()).unwrap_or(0);
                                edges.push((s, d, w));
                            }
                        }
                    }
                    let t = std::time::Instant::now();
                    shell.load(&edges);
                    println!("loaded {} edges in {:?}", edges.len(), t.elapsed());
                }
                Err(e) => println!("cannot read {file}: {e}"),
            },
            ["gen", "rmat", scale, factor] => match (scale.parse::<u32>(), factor.parse::<f64>()) {
                (Ok(scale), Ok(edge_factor)) if scale <= 24 => {
                    let cfg = RmatConfig {
                        scale,
                        edge_factor,
                        max_weight: if algorithm == "sssp" || algorithm == "sswp" {
                            100
                        } else {
                            0
                        },
                        ..RmatConfig::default()
                    };
                    let edges = cfg.generate();
                    let t = std::time::Instant::now();
                    shell.load(&edges);
                    println!(
                        "generated |V|={} |E|={} and computed in {:?}",
                        cfg.num_vertices(),
                        edges.len(),
                        t.elapsed()
                    );
                }
                _ => println!("usage: gen rmat SCALE(≤24) EDGE_FACTOR"),
            },
            ["ins", s, d, rest @ ..] | ["del", s, d, rest @ ..] => {
                let is_insert = parts[0] == "ins";
                match (s.parse(), d.parse()) {
                    (Ok(s), Ok(d)) => {
                        let w = rest.first().and_then(|x| x.parse().ok()).unwrap_or(0);
                        let e = Edge::new(s, d, w);
                        let u = if is_insert {
                            Update::InsEdge(e)
                        } else {
                            Update::DelEdge(e)
                        };
                        shell.apply(&u);
                    }
                    _ => println!("usage: ins|del SRC DST [WEIGHT]"),
                }
            }
            ["get", v] => match v.parse::<u64>() {
                Ok(v) if (v as usize) < engine.capacity() => {
                    println!(
                        "value({v}) = {}, parent = {}",
                        fmt_value(engine.value(0, v)),
                        engine
                            .parent(0, v)
                            .map(|e| format!("{} --{}--> {v}", e.src, e.data))
                            .unwrap_or_else(|| "none".into())
                    );
                }
                _ => println!("vertex out of range"),
            },
            ["path", v] => match v.parse::<u64>() {
                Ok(mut v) if (v as usize) < engine.capacity() => {
                    let mut hops = vec![v];
                    while let Some(e) = engine.parent(0, v) {
                        v = e.src;
                        hops.push(v);
                        if hops.len() > 64 {
                            break;
                        }
                    }
                    hops.reverse();
                    println!(
                        "{}",
                        hops.iter()
                            .map(|h| h.to_string())
                            .collect::<Vec<_>>()
                            .join(" -> ")
                    );
                }
                _ => println!("vertex out of range"),
            },
            ["top", n] => {
                let n: usize = n.parse().unwrap_or(10);
                let cap = engine.capacity();
                let mut vals: Vec<(u64, u64)> = (0..cap as u64)
                    .map(|v| (engine.value(0, v), v))
                    .filter(|&(val, _)| val != u64::MAX && val != 0)
                    .collect();
                vals.sort_unstable();
                for (val, v) in vals.iter().take(n) {
                    println!("  v{v}: {}", fmt_value(*val));
                }
            }
            ["stats"] => {
                use std::sync::atomic::Ordering;
                let s = engine.stats();
                println!(
                    "vertices={} edges={} safe={} unsafe={} demoted={} edges_relaxed={}",
                    engine.num_vertices(),
                    engine.num_edges(),
                    s.safe_applied.load(Ordering::Relaxed),
                    s.unsafe_applied.load(Ordering::Relaxed),
                    s.demoted.load(Ordering::Relaxed),
                    s.edges_relaxed.load(Ordering::Relaxed),
                );
                if let Shell::Server { server, .. } = &shell {
                    let ss = server.stats();
                    println!(
                        "server: version={} epochs={} safe_exec={} unsafe_exec={} threshold={}",
                        server.current_version(),
                        ss.epochs.load(Ordering::Relaxed),
                        ss.safe_executed.load(Ordering::Relaxed),
                        ss.unsafe_executed.load(Ordering::Relaxed),
                        ss.threshold.load(Ordering::Relaxed),
                    );
                    let (p50, p99, p999) = ss.latency_percentiles_ns();
                    println!(
                        "latency: p50={} p99={} p999={} max={} over {} update(s)",
                        fmt_ns(p50),
                        fmt_ns(p99),
                        fmt_ns(p999),
                        fmt_ns(ss.update_latency.max_ns()),
                        ss.update_latency.count(),
                    );
                    let (up50, up99, up999) = ss.unsafe_phase_percentiles_ns();
                    println!(
                        "unsafe phase: epochs={} p50={} p99={} p999={} parallel_groups={} serial_fallbacks={}",
                        ss.unsafe_phase.count(),
                        fmt_ns(up50),
                        fmt_ns(up99),
                        fmt_ns(up999),
                        ss.unsafe_parallel_groups.load(Ordering::Relaxed),
                        ss.unsafe_serial_fallbacks.load(Ordering::Relaxed),
                    );
                }
            }
            ["metrics"] => match &shell {
                Shell::Server { server, .. } => {
                    for (name, value) in server.metrics().snapshot() {
                        match value {
                            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                                println!("  {name} = {v}")
                            }
                            MetricValue::Histogram(h) => println!(
                                "  {name}: count={} p50={} p99={} p999={} max={}",
                                h.count,
                                fmt_ns(h.p50_ns),
                                fmt_ns(h.p99_ns),
                                fmt_ns(h.p999_ns),
                                fmt_ns(h.max_ns),
                            ),
                        }
                    }
                }
                Shell::Engine(_) => {
                    println!("metrics requires the server tier (run with --shards or --wal)")
                }
            },
            ["aff"] => {
                let r = analyze(engine, 0);
                println!(
                    "tree depth D_T={} |V_T|={} mean degree={:.2}",
                    r.tree_depth, r.tree_vertices, r.mean_degree
                );
                println!(
                    "mean AFFV={:.4} (bound {:.4}); mean AFFE={:.2} (bound {:.2})",
                    r.mean_affv, r.affv_bound, r.mean_affe, r.affe_bound
                );
            }
            _ => println!("unknown command; try 'help'"),
        }
    }
    // Reached on `quit` or stdin EOF: drain the server tier and flush
    // WAL/store (the graceful-shutdown satellite — previously a server
    // shell leaked its buffered WAL tail exactly like `crash()`).
    shell.finish();
}
