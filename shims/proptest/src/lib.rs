//! Offline stand-in for the `proptest` crate.
//!
//! Supports the API surface this workspace's property tests use:
//! range/tuple/bool strategies, `collection::vec`, `prop_map`,
//! `prop_oneof!`, the `proptest!` test-runner macro with
//! `#![proptest_config(...)]`, and `prop_assert!`/`prop_assert_eq!`.
//! Cases are generated from a deterministic per-case seed; there is no
//! shrinking — failures report the case index so a run is reproducible.

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a case index.
    pub fn seed(case: u64) -> Self {
        TestRng(case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66_D1CE_4E5B)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A fixed-value strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0: 0);
tuple_strategy!(S0: 0, S1: 1);
tuple_strategy!(S0: 0, S1: 1, S2: 2);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A boxed generator closure, one arm of a [`Union`].
pub type Choice<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Type-erased strategy used by [`prop_oneof!`].
pub struct Union<T> {
    choices: Vec<Choice<T>>,
}

impl<T> Union<T> {
    /// Build from generator closures (used by the macro).
    pub fn from_choices(choices: Vec<Choice<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union { choices }
    }

    /// Box one strategy as a choice (keeps `T` inference tied to the
    /// strategy's value type inside `prop_oneof!`).
    pub fn choice<S: Strategy<Value = T> + 'static>(strat: S) -> Choice<T> {
        Box::new(move |rng: &mut TestRng| strat.generate(rng))
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        (self.choices[i])(rng)
    }
}

/// Choose uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        $crate::Union::from_choices(vec![
            $($crate::Union::choice($strat)),+
        ])
    }};
}

/// Assert inside a proptest body (early-returns an `Err` description).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}`", va, vb
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}`: {}", va, vb, format!($($fmt)+)
            ));
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::seed(case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = __outcome {
                        panic!("proptest case {case} failed: {msg}");
                    }
                }
            }
        )*
    };
}

/// Define property tests: each `arg in strategy` binding is generated
/// per case and the body runs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Glob-import target mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 3..9u64,
            v in crate::collection::vec((0..5u64, crate::bool::ANY), 0..10),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() < 10);
            for (e, _) in &v {
                prop_assert!(*e < 5, "element {} out of range", e);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            y in prop_oneof![
                (0..4u64).prop_map(|v| v * 2),
                (100..104u64).prop_map(|v| v + 1),
            ],
        ) {
            prop_assert!(y < 8 || (101..105).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(_x in 0..2u64) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
