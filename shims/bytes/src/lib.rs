//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the WAL encoder/decoder uses: an owned
//! growable buffer ([`BytesMut`]) with little-endian `put_*` writers,
//! and a cursor-style reader ([`Bytes`]) with `get_*` readers, both
//! reachable through the [`Buf`]/[`BufMut`] traits.

use std::ops::Deref;

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Pop one byte.
    fn get_u8(&mut self) -> u8;
    /// Pop a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Pop a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
}

/// Write-side append operations.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);
}

/// A growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Drop the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable reader.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.0,
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.0.extend_from_slice(s);
    }
}

/// An immutable byte view with a read cursor.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copy a slice into an owned reader.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes {
            data: s.to_vec(),
            pos: 0,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.pos + n <= self.data.len(), "buffer underrun");
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn advance(&mut self, n: usize) {
        assert!(self.pos + n <= self.data.len(), "advance past end");
        self.pos += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_slice(&[1, 2, 3]);
        assert_eq!(w.len(), 1 + 4 + 8 + 3);

        let mut r = Bytes::copy_from_slice(&w);
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        r.advance(1);
        assert_eq!(r.get_u8(), 2);
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "buffer underrun")]
    fn underrun_panics() {
        let mut r = Bytes::copy_from_slice(&[1]);
        let _ = r.get_u32_le();
    }
}
