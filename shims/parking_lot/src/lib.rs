//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors the small API subset the codebase uses, implemented on
//! `std::sync` primitives. Semantics match parking_lot where it
//! matters here: locks never poison (a panic while holding a guard
//! leaves the lock usable) and guards implement `Deref`/`DerefMut`.

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that ignores poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that ignores poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panic");
    }
}
