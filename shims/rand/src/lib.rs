//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! Provides deterministic seeded generation only — exactly what the
//! test suites and workload generators here need. The generator is
//! xoshiro256++ seeded through SplitMix64; statistical quality is far
//! beyond what graph-workload sampling requires. Not cryptographic.

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (only the `u64` convenience form).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from "the whole domain" via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over an interval. The blanket
/// [`SampleRange`] impls below go through this trait so integer-literal
/// inference behaves like upstream rand (one impl per range shape, not
/// one per element type).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_interval<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "empty range in gen_range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + (rng.next_u64() % span as u64) as i128) as $t
                } else {
                    assert!(lo < hi, "empty range in gen_range");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_interval<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing sampling interface (blanket-implemented).
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    /// Draw from a type's full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (SplitMix64-expanded seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: this shim's StdRng is already small.
    pub type SmallRng = StdRng;
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffle/choose extensions on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub use rngs::StdRng as __DocStdRng; // keep rustdoc link targets stable

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1..=5u64);
            assert!((1..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }
}
