//! Offline stand-in for the `crossbeam` crate (channel module only).
//!
//! Implements multi-producer multi-consumer channels with the subset of
//! the `crossbeam-channel` API this workspace uses: `unbounded`,
//! `bounded` (capacity is advisory — senders never block), `try_recv`,
//! `recv_timeout`, `is_empty`, and clonable senders/receivers with
//! disconnect detection.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with nothing queued.
        Timeout,
        /// Empty and all senders dropped.
        Disconnected,
    }

    /// Create a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    /// Create a channel with a capacity hint. The only workspace use is
    /// completion signalling, where senders must not block, so capacity
    /// is not enforced.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        /// Enqueue a message, failing if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.0
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake blocked receivers so they observe the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .0
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        /// Whether nothing is currently queued.
        pub fn is_empty(&self) -> bool {
            self.0
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_detection() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn timeout_fires() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(Duration::from_millis(5));
            tx.send(42u64).unwrap();
            assert_eq!(h.join().unwrap(), 42);
        }
    }
}
