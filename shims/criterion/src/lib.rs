//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the same source-level API the workspace benches use
//! (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`, `iter`, `iter_batched`) but measures with a
//! simple calibrated timing loop and prints one line per benchmark —
//! no statistics engine, no HTML reports.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted for API
/// compatibility; this shim always runs setup per batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine inputs: large batches.
    SmallInput,
    /// Large routine inputs: one-per-batch.
    LargeInput,
    /// Fresh input for every single iteration.
    PerIteration,
}

/// Throughput annotation (printed, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = t0.elapsed();
    }

    /// Time `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
        }
        self.elapsed = total;
    }
}

fn report(name: &str, iters: u64, elapsed: Duration, throughput: Option<Throughput>) {
    let per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / (per_iter * 1e-9))
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  ({:.0} B/s)", n as f64 / (per_iter * 1e-9))
        }
        _ => String::new(),
    };
    println!("{name:<48} {per_iter:>14.1} ns/iter  x{iters}{rate}");
}

fn run_one(
    name: &str,
    iters: u64,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    report(name, b.iters, b.elapsed, throughput);
}

/// Benchmark registry/driver.
pub struct Criterion {
    iters: u64,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` / `--test` runs each bench once as a smoke test.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            iters: if test_mode { 1 } else { 10 },
            test_mode,
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.into(), self.iters, None, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_iters: None,
            throughput: None,
        }
    }

    /// Whether this process runs in `--test` smoke mode.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Accepted for API compatibility (this shim times a fixed
    /// iteration count rather than a wall-clock budget).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility (no warm-up phase in the shim).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(mut self, n: usize) -> Self {
        if !self.test_mode {
            self.iters = (n as u64).clamp(1, 1000);
        }
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_iters: Option<u64>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (mapped onto this shim's iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_iters = Some((n as u64).clamp(1, 1000));
        self
    }

    /// Annotate throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let iters = if self.parent.test_mode {
            1
        } else {
            self.sample_iters.unwrap_or(self.parent.iters)
        };
        run_one(
            &format!("{}/{}", self.name, name),
            iters,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Close the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Declare a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(5).throughput(Throughput::Elements(10));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
