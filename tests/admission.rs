//! Server-side admission control: the serving tier sheds protocol-v2
//! requests with a `Busy` wire error instead of queueing unboundedly —
//! exactly at global-budget / per-session-quota exhaustion and never
//! below it — while v1 connections keep the pre-admission byte
//! behavior (TCP backpressure, never a Busy frame). Shed requests are
//! cheap: no session allocated, the epoch loop untouched. Slow readers
//! ride the existing `send_timeout` clock into a *counted* eviction
//! that carries a best-effort connection-level notice.
//!
//! Determinism protocol: the raw-socket tests write every update frame
//! of a burst in **one** `write(2)` call, so the reactor worker parses
//! the whole burst in a single `process()` batch — budget release only
//! happens in `drain_session`, which cannot interleave with that batch,
//! making the admitted/shed split exact rather than timing-dependent.
//! The admission knobs are pinned through `NetConfig` (not the
//! environment), so the suite is immune to the CI job's
//! `RISGRAPH_NET_*` exports.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use risgraph::algorithms::{Bfs, Wcc};
use risgraph::common::protocol::{
    read_frame, write_frame, BusyCause, Request, Response, MAX_RESPONSE_FRAME,
};
use risgraph::prelude::*;
use risgraph_net::{NetClient, NetConfig};
use risgraph_testkit::{loopback_net_server_with, server_config, store_fingerprint};

fn bfs() -> Vec<DynAlgorithm> {
    vec![Arc::new(Bfs::new(0)) as DynAlgorithm]
}

fn wcc() -> Vec<DynAlgorithm> {
    vec![Arc::new(Wcc::new()) as DynAlgorithm]
}

/// Admission knobs pinned explicitly (overriding any `RISGRAPH_NET_*`
/// environment the CI job exports), one reactor worker so counters and
/// gauges have a single home.
fn net_config(budget: usize, quota: usize) -> NetConfig {
    NetConfig {
        net_workers: 1,
        inflight_budget: budget,
        session_quota: quota,
        accept_high_water: 0,
        ..NetConfig::default()
    }
}

/// Poll `cond` for up to `secs` seconds.
fn eventually(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// A hand-rolled wire client: unlike [`NetClient`] it can put an entire
/// burst of frames into one `write(2)` (one server-side parse batch)
/// and can *stop reading* on purpose.
struct RawClient {
    stream: TcpStream,
}

impl RawClient {
    fn connect(addr: SocketAddr, hello: Option<u32>) -> RawClient {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        if let Some(version) = hello {
            write_frame(&mut stream, &Request::Hello { version }.encode(1)).unwrap();
            let frame = read_frame(&mut (&stream), MAX_RESPONSE_FRAME)
                .unwrap()
                .expect("hello reply");
            let (_, resp) = Response::decode(&frame).unwrap();
            assert!(
                matches!(resp, Response::Hello { version: v } if v == version),
                "handshake: {resp:?}"
            );
        }
        RawClient { stream }
    }

    /// Write all `payloads` as frames through a single `write_all`.
    fn send_batch(&mut self, payloads: &[Vec<u8>]) {
        let mut buf = Vec::new();
        for p in payloads {
            write_frame(&mut buf, p).unwrap();
        }
        self.stream.write_all(&buf).unwrap();
    }

    fn read_response(&mut self) -> (u64, Response) {
        let frame = read_frame(&mut (&self.stream), MAX_RESPONSE_FRAME)
            .unwrap()
            .expect("response frame");
        Response::decode(&frame).unwrap()
    }

    fn read_responses(&mut self, n: usize) -> Vec<(u64, Response)> {
        (0..n).map(|_| self.read_response()).collect()
    }
}

fn update_frame(req_id: u64, sid: u64, src: u64, dst: u64) -> Vec<u8> {
    Request::Update(Update::InsEdge(Edge::new(src, dst, 1))).encode_in_session(req_id, sid)
}

/// Partition responses into (applied req ids, shed req ids), asserting
/// every shed frame carries the expected cause.
fn split_outcomes(responses: &[(u64, Response)], expect_cause: BusyCause) -> (Vec<u64>, Vec<u64>) {
    let mut applied = Vec::new();
    let mut shed = Vec::new();
    for (req_id, resp) in responses {
        match resp {
            Response::Applied { .. } => applied.push(*req_id),
            Response::Busy { cause, message } => {
                assert_eq!(*cause, expect_cause, "wrong shed cause: {message}");
                assert!(!message.is_empty(), "Busy must explain itself");
                shed.push(*req_id);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    (applied, shed)
}

/// Global budget: a one-batch burst of 32 updates against a budget of 4
/// admits exactly the first 4 and sheds exactly the rest —
/// `Busy(inflight-budget)` at exhaustion, never below it. Once the
/// admitted replies land the budget frees and a later update is
/// admitted again.
#[test]
fn v2_burst_sheds_exactly_at_global_budget() {
    const BUDGET: usize = 4;
    const BURST: u64 = 32;
    let srv = loopback_net_server_with(
        bfs(),
        1 << 12,
        server_config(BackendKind::IaHash, 1),
        net_config(BUDGET, 0),
    );
    let mut c = RawClient::connect(srv.local_addr(), Some(2));

    let frames: Vec<Vec<u8>> = (0..BURST)
        .map(|i| update_frame(10 + i, 1, i, i + 1))
        .collect();
    c.send_batch(&frames);
    let responses = c.read_responses(BURST as usize);
    let (applied, shed) = split_outcomes(&responses, BusyCause::InflightBudget);
    assert_eq!(
        applied,
        (10..10 + BUDGET as u64).collect::<Vec<_>>(),
        "exactly the first {BUDGET} frames of the batch hold the budget"
    );
    assert_eq!(
        shed.len(),
        (BURST as usize) - BUDGET,
        "everything else sheds"
    );

    let registry = srv.server().metrics();
    assert_eq!(
        registry
            .counter("net.admission.shed_budget")
            .load(Ordering::Relaxed),
        shed.len() as u64
    );
    // The replies we already read mean the budget has drained: the
    // occupancy gauge returns to zero and a fresh update is admitted —
    // shedding never outlives the overload.
    let occupancy = registry.gauge("net.admission.inflight");
    assert!(
        eventually(5, || occupancy.load(Ordering::Relaxed) == 0),
        "budget occupancy stuck at {}",
        occupancy.load(Ordering::Relaxed)
    );
    c.send_batch(&[update_frame(100, 1, 200, 201)]);
    let (_, resp) = c.read_response();
    assert!(
        matches!(resp, Response::Applied { .. }),
        "an idle server must admit: {resp:?}"
    );
}

/// Per-session quota: with quota 2, a one-batch interleaving of six
/// updates on session 1 and two on session 2 sheds exactly session 1's
/// third-and-later frames — session 2 is untouched (the quota is per
/// session, not global).
#[test]
fn session_quota_sheds_only_the_over_quota_session() {
    let srv = loopback_net_server_with(
        bfs(),
        1 << 12,
        server_config(BackendKind::IaHash, 1),
        net_config(0, 2),
    );
    let mut c = RawClient::connect(srv.local_addr(), Some(2));

    let mut frames = Vec::new();
    for i in 0..6u64 {
        frames.push(update_frame(10 + i, 1, i, i + 1));
    }
    frames.push(update_frame(20, 2, 100, 101));
    frames.push(update_frame(21, 2, 101, 102));
    c.send_batch(&frames);

    let responses = c.read_responses(frames.len());
    let (mut applied, shed) = split_outcomes(&responses, BusyCause::SessionQuota);
    applied.sort_unstable();
    assert_eq!(
        applied,
        vec![10, 11, 20, 21],
        "session 1 admits its quota of 2, session 2 is unaffected"
    );
    assert_eq!(shed, vec![12, 13, 14, 15]);
    assert_eq!(
        srv.server()
            .metrics()
            .counter("net.admission.shed_quota")
            .load(Ordering::Relaxed),
        4
    );
}

/// A shed request costs nothing but the reject frame: seven updates on
/// seven *distinct, never-before-seen* sessions shed over an exhausted
/// global budget must leave the worker's session gauge at exactly the
/// one admitted session — no `Session` allocation, no epoch-loop touch
/// (the epoch counter only advances for the admitted update).
#[test]
fn shed_requests_allocate_no_session() {
    let srv = loopback_net_server_with(
        bfs(),
        1 << 12,
        server_config(BackendKind::IaHash, 1),
        net_config(1, 0),
    );
    let registry = Arc::clone(srv.server().metrics());
    let mut c = RawClient::connect(srv.local_addr(), Some(2));

    let mut frames = vec![update_frame(10, 1, 0, 1)];
    for i in 0..7u64 {
        // Each shed frame names a fresh session id; admission must
        // refuse it *before* any per-session state exists.
        frames.push(update_frame(20 + i, 2 + i, 50 + i, 51 + i));
    }
    c.send_batch(&frames);
    let responses = c.read_responses(frames.len());
    let (applied, shed) = split_outcomes(&responses, BusyCause::InflightBudget);
    assert_eq!(applied, vec![10]);
    assert_eq!(shed.len(), 7);

    assert_eq!(
        registry
            .counter("net.admission.admitted")
            .load(Ordering::Relaxed),
        1
    );
    let sessions = registry.gauge("net.worker.0.sessions");
    assert!(
        eventually(5, || sessions.load(Ordering::Relaxed) == 1),
        "shed requests must not allocate sessions (gauge {})",
        sessions.load(Ordering::Relaxed)
    );
}

/// A protocol-v1 connection never receives a Busy frame no matter how
/// hard admission is squeezed: over an exhausted budget its updates
/// *park* under TCP backpressure (the pre-admission wire behavior,
/// byte for byte) and every one of them is eventually applied.
#[test]
fn v1_connections_park_and_never_see_busy() {
    const BURST: u64 = 32;
    let srv = loopback_net_server_with(
        bfs(),
        1 << 12,
        server_config(BackendKind::IaHash, 1),
        net_config(1, 0),
    );
    // No Hello: the connection stays v1 and unwrapped.
    let mut c = RawClient::connect(srv.local_addr(), None);
    let frames: Vec<Vec<u8>> = (0..BURST)
        .map(|i| Request::Update(Update::InsEdge(Edge::new(i, i + 1, 1))).encode(10 + i))
        .collect();
    c.send_batch(&frames);
    let responses = c.read_responses(BURST as usize);
    for (req_id, resp) in &responses {
        assert!(
            matches!(resp, Response::Applied { .. }),
            "v1 request {req_id} must be applied, never shed: {resp:?}"
        );
    }
    assert_eq!(
        srv.server()
            .metrics()
            .counter("net.admission.shed_budget")
            .load(Ordering::Relaxed),
        0,
        "a v1-only workload must shed nothing"
    );
}

/// The [`NetClient`] surface turns a shed into [`Error::Busy`] (the
/// only retryable error), and the admitted subset — whatever the
/// squeeze let through — is differentially equal to an in-process
/// server fed exactly that subset: same version sequence, same final
/// store fingerprint.
#[test]
fn admitted_subset_is_differentially_equal_to_in_process() {
    const N: u64 = 512;
    let capacity = 1 << 12;
    let srv = loopback_net_server_with(
        wcc(),
        capacity,
        server_config(BackendKind::IaHash, 1),
        net_config(1, 0),
    );
    let client = NetClient::connect(srv.local_addr()).unwrap();
    let session = client.open_session().unwrap();

    let updates: Vec<Update> = (0..N)
        .map(|i| Update::InsEdge(Edge::new(i % 64, 64 + (i * 7) % 512, 1 + i % 4)))
        .collect();
    let ids: Vec<u64> = updates
        .iter()
        .map(|u| session.submit_update_pipelined(u).unwrap())
        .collect();

    let mut admitted = Vec::new();
    let mut net_versions = Vec::new();
    let mut shed = 0u64;
    for (id, update) in ids.iter().zip(&updates) {
        let reply = session.wait_reply(*id).unwrap();
        match reply.outcome {
            Ok(_) => {
                admitted.push(*update);
                net_versions.push(reply.version);
            }
            Err(e) => {
                assert!(e.is_busy(), "a shed must surface as Busy, got: {e}");
                shed += 1;
            }
        }
    }
    assert!(
        shed > 0,
        "pipelining {N} updates through a budget of 1 must shed some"
    );
    assert_eq!(admitted.len() as u64 + shed, N);

    // Replay exactly the admitted subset in-process: version-for-version
    // identical (shed requests never reached the epoch loop, so they
    // burned nothing), and the stores fingerprint-match.
    let in_proc = Server::start(wcc(), capacity, server_config(BackendKind::IaHash, 1)).unwrap();
    let s = in_proc.session();
    let in_versions: Vec<u64> = admitted
        .iter()
        .map(|u| {
            let r = s.submit_update(u);
            r.outcome.as_ref().unwrap();
            r.version
        })
        .collect();
    drop(s);
    assert_eq!(net_versions, in_versions, "admitted subset version drift");
    assert_eq!(
        store_fingerprint(srv.server().engine(), capacity as u64),
        store_fingerprint(in_proc.engine(), capacity as u64),
        "admitted subset store drift"
    );
    in_proc.shutdown();
}

/// A peer that stops reading its replies is evicted on the
/// `send_timeout` clock — torn down *and counted* — and the teardown
/// carries the same best-effort req-id-0 connection-level error the
/// malformed-frame path uses, so a reader that comes back learns *why*
/// instead of seeing a bare reset.
#[test]
fn stalled_reader_is_evicted_with_a_counted_connection_level_notice() {
    const CHAIN: u64 = 20_000;
    let mut net = net_config(0, 0);
    net.send_timeout = Duration::from_millis(300);
    let srv = loopback_net_server_with(bfs(), 1 << 16, server_config(BackendKind::IaHash, 1), net);
    let registry = Arc::clone(srv.server().metrics());
    let mut c = RawClient::connect(srv.local_addr(), Some(2));

    // One large transaction so a single version's modification set is
    // ~CHAIN vertices (~160 KB per GetModified reply).
    let txn: Vec<Update> = (0..CHAIN)
        .map(|i| Update::InsEdge(Edge::new(i, i + 1, 1)))
        .collect();
    c.send_batch(&[Request::Txn(txn).encode_in_session(5, 1)]);
    let (_, resp) = c.read_response();
    let version = match resp {
        Response::Applied { version, .. } => version,
        other => panic!("txn failed: {other:?}"),
    };

    // Queue ~10 MB of replies and stop reading: far beyond what the
    // loopback socket buffers can absorb, so the server's write buffer
    // stays non-empty and the send clock runs out.
    let queries: Vec<Vec<u8>> = (0..64u64)
        .map(|i| Request::GetModified { algo: 0, version }.encode_in_session(10 + i, 1))
        .collect();
    c.send_batch(&queries);
    let evicted = registry.counter("net.admission.evicted");
    assert!(
        eventually(30, || evicted.load(Ordering::Relaxed) >= 1),
        "a stalled reader must be evicted on the send_timeout clock"
    );

    // Resume reading: the backlog flushes first (appending the notice
    // never clears the write buffer — the write position may sit
    // mid-frame), then the req-id-0 notice, then EOF.
    let mut notice = None;
    // A read error means teardown mid-frame: the stream is over.
    while let Ok(Some(frame)) = read_frame(&mut (&c.stream), MAX_RESPONSE_FRAME) {
        let (req_id, resp) = Response::decode(&frame).unwrap();
        if req_id == 0 {
            notice = Some(resp);
        }
    }
    match notice {
        Some(Response::Failed { error, .. }) => {
            let e = error.to_error();
            assert!(e.is_busy(), "the notice must be Busy-coded, got: {e}");
            assert!(
                e.to_string().contains("evicted"),
                "the notice must name the eviction: {e}"
            );
        }
        other => panic!("expected a req-id-0 eviction notice, got {other:?}"),
    }
    assert!(
        eventually(5, || srv.live_connections() == 0),
        "the evicted connection must leave the registry"
    );
}

/// The [`NetClient`] end of the same eviction: all in-flight waiters on
/// the torn-down connection die with a reason that names the eviction
/// (the req-id-0 notice becomes the connection's death reason) rather
/// than a bare `connection reset`.
#[test]
fn evicted_connection_names_the_eviction_in_waiter_errors() {
    const CHAIN: u64 = 20_000;
    let mut net = net_config(0, 0);
    net.send_timeout = Duration::from_millis(300);
    let srv = loopback_net_server_with(bfs(), 1 << 16, server_config(BackendKind::IaHash, 1), net);
    let mut c = RawClient::connect(srv.local_addr(), Some(2));
    let txn: Vec<Update> = (0..CHAIN)
        .map(|i| Update::InsEdge(Edge::new(i, i + 1, 1)))
        .collect();
    c.send_batch(&[Request::Txn(txn).encode_in_session(5, 1)]);
    let (_, resp) = c.read_response();
    let version = match resp {
        Response::Applied { version, .. } => version,
        other => panic!("txn failed: {other:?}"),
    };
    let queries: Vec<Vec<u8>> = (0..64u64)
        .map(|i| Request::GetModified { algo: 0, version }.encode_in_session(10 + i, 1))
        .collect();
    c.send_batch(&queries);
    // Never read; wait for the hard teardown (eviction + grace), then
    // confirm the server freed the slot.
    let evicted = srv
        .server()
        .metrics()
        .counter("net.admission.evicted")
        .load(Ordering::Relaxed);
    assert!(
        eventually(30, || srv
            .server()
            .metrics()
            .counter("net.admission.evicted")
            .load(Ordering::Relaxed)
            > evicted
            || srv.live_connections() == 0),
        "stalled connection never evicted"
    );
    assert!(
        eventually(30, || srv.live_connections() == 0),
        "evicted connection still registered"
    );
    // The server stays fully serviceable for well-behaved clients.
    let healthy = NetClient::connect(srv.local_addr()).unwrap();
    healthy
        .ins_edge(Edge::new(1, 2, 1))
        .unwrap()
        .outcome
        .unwrap();
}

/// The high-water gate stays out of the way of a healthy server: under
/// a generous mark, connects and Hellos all land (the overload shed is
/// reserved for genuine backlog, which the step-load bench exercises),
/// and the gate being *disabled* (0) never misreads as "always over".
#[test]
fn high_water_gate_admits_everything_on_an_idle_server() {
    for high_water in [0usize, 4096] {
        let srv = loopback_net_server_with(
            bfs(),
            1 << 12,
            server_config(BackendKind::IaHash, 1),
            NetConfig {
                net_workers: 1,
                inflight_budget: 0,
                session_quota: 0,
                accept_high_water: high_water,
                ..NetConfig::default()
            },
        );
        for _ in 0..4 {
            let c = NetClient::connect(srv.local_addr()).unwrap();
            assert_eq!(c.protocol_version(), 2);
            c.ins_edge(Edge::new(0, 1, 1)).unwrap().outcome.unwrap();
        }
        assert_eq!(
            srv.server()
                .metrics()
                .counter("net.admission.shed_overload")
                .load(Ordering::Relaxed),
            0,
            "an idle server (high water {high_water}) must never shed a Hello"
        );
        srv.shutdown();
    }
}
