//! WAL lifecycle under segmentation: rotation + checkpoint truncation
//! bound the log's disk footprint, follower watermarks + checkpoint
//! cuts bound the replication feed's memory, and a fresh follower that
//! subscribes below the feed's retention floor bootstraps from the
//! checkpoint snapshot instead of the (evicted) record prefix.
//!
//! The fast tests here pin tiny segment sizes through `ServerConfig`
//! directly so they are deterministic regardless of the
//! `RISGRAPH_MAX_WAL_SEGMENT` environment (the CI `test-wal-lifecycle`
//! job also exports it to catch env-plumbing regressions). The 60 s
//! soak is `#[ignore]`d and runs in the slow-tests leg.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use risgraph::algorithms::Wcc;
use risgraph::core::wal::{read_manifest, read_snapshot, replay};
use risgraph::prelude::*;
use risgraph_net::{FollowerConfig, NetConfig, NetServer, ReplicaServer};
use risgraph_testkit::{
    disjoint_session_streams, drive_net_sessions, drive_sessions, remove_wal, server_config,
    store_fingerprint, temp_path, RegionStreamConfig,
};

fn wcc_algorithms() -> Vec<DynAlgorithm> {
    vec![Arc::new(Wcc::new()) as DynAlgorithm]
}

/// Total on-disk bytes of a WAL: manifest + snapshot + every segment.
fn wal_disk_bytes(base: &std::path::Path) -> u64 {
    let mut total = std::fs::metadata(base).map_or(0, |m| m.len());
    let (Some(dir), Some(name)) = (base.parent(), base.file_name().and_then(|n| n.to_str())) else {
        return total;
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return total;
    };
    for entry in entries.flatten() {
        let file = entry.file_name();
        let Some(file) = file.to_str() else { continue };
        let Some(suffix) = file.strip_prefix(name) else {
            continue;
        };
        if suffix.starts_with(".seg-") || suffix == ".snapshot" {
            total += entry.metadata().map_or(0, |m| m.len());
        }
    }
    total
}

/// Pressure checkpoints (segment lag, no timer) rotate, snapshot and
/// truncate: after heavy churn only a bounded window of segments
/// remains, and a restart replays only the post-checkpoint records.
#[test]
fn pressure_checkpoints_truncate_segments_and_bound_restart_replay() {
    let cfg = RegionStreamConfig {
        sessions: 4,
        region: 12,
        steps: 600,
        seed: 41,
        ..RegionStreamConfig::default()
    };
    let path = temp_path("wal-pressure.wal");
    let mut config = server_config(BackendKind::IaHash, 4);
    config.wal_path = Some(path.clone());
    config.max_wal_segment_bytes = 2048;

    let server = Arc::new(Server::start(wcc_algorithms(), cfg.capacity(), config.clone()).unwrap());
    drive_sessions(&server, &disjoint_session_streams(&cfg));
    let checkpoints = server.stats().wal_checkpoints.load(Ordering::Relaxed);
    assert!(
        checkpoints > 0,
        "2 KiB segments under {} updates must trip the pressure trigger",
        cfg.sessions * cfg.steps
    );
    Arc::try_unwrap(server).ok().unwrap().shutdown();

    let manifest = read_manifest(&path).unwrap().expect("manifest");
    assert!(
        manifest.first_seg > 0,
        "checkpoints must truncate pre-checkpoint segments"
    );
    assert!(
        manifest.active_seg - manifest.first_seg <= 16,
        "retained segment window unbounded: {} .. {}",
        manifest.first_seg,
        manifest.active_seg
    );
    assert!(
        wal_disk_bytes(&path) <= 256 * 1024,
        "WAL disk footprint unbounded: {} bytes",
        wal_disk_bytes(&path)
    );
    let snapshot = read_snapshot(&path).unwrap().expect("snapshot");
    assert_eq!(snapshot.start_seg, manifest.first_seg);

    // Restart: replay covers only the post-checkpoint segments.
    let batches = replay(&path).unwrap();
    let tail_records = batches.len() as u64 - u64::from(!snapshot.updates.is_empty());
    let recovered = Server::start(wcc_algorithms(), cfg.capacity(), config).unwrap();
    assert_eq!(
        recovered
            .stats()
            .wal_replayed_records
            .load(Ordering::Relaxed),
        tail_records,
        "restart must replay exactly the retained post-checkpoint records"
    );
    assert!(
        tail_records < (cfg.sessions * cfg.steps) as u64 / 2,
        "replayed {} of {} records — truncation did nothing",
        tail_records,
        cfg.sessions * cfg.steps
    );
    recovered.shutdown();
    remove_wal(&path);
}

/// Feed retention: once every registered follower's watermark and the
/// checkpoint cut pass a record, it is evicted — `resident()` tracks
/// only the live window and early indices stop resolving.
#[test]
fn feed_records_evict_once_watermarks_and_checkpoint_pass() {
    let cfg = RegionStreamConfig {
        sessions: 2,
        region: 12,
        steps: 400,
        seed: 43,
        ..RegionStreamConfig::default()
    };
    let path = temp_path("wal-feed.wal");
    let mut config = server_config(BackendKind::IaHash, 1);
    config.wal_path = Some(path.clone());
    config.max_wal_segment_bytes = 1024;
    config.max_followers = 1;

    let server = Arc::new(Server::start(wcc_algorithms(), cfg.capacity(), config).unwrap());
    let feed = Arc::clone(server.feed().expect("feed"));
    let slot = feed.try_register(0).expect("register");

    // No eviction while the sole follower is parked at 0, checkpoints
    // or not: the watermark pins the base.
    drive_sessions(&server, &disjoint_session_streams(&cfg));
    assert!(
        server.stats().wal_checkpoints.load(Ordering::Relaxed) > 0,
        "churn must trip pressure checkpoints"
    );
    assert_eq!(feed.base(), 0, "a parked follower must pin retention");
    let len = feed.len();
    assert_eq!(feed.resident(), len);

    // Stream the whole feed (as the net layer does), advancing the
    // watermark per record; one more checkpointed epoch then evicts
    // everything up to the cut.
    for idx in 0..len {
        assert!(
            feed.get(idx).is_some(),
            "record {idx} resolves before eviction"
        );
        feed.set_watermark(slot, idx + 1);
    }
    let s = server.session();
    for i in 0..200u64 {
        assert!(s.ins_edge(Edge::new(i % 8, i % 8 + 1, 1)).outcome.is_ok());
    }
    drop(s);
    feed.set_watermark(slot, len);

    let (cut, _) = feed.checkpoint_cut().expect("checkpoint cut");
    assert!(cut > 0);
    assert!(
        feed.base() >= cut.min(len),
        "eviction floor {} must reach the watermark/cut minimum {}",
        feed.base(),
        cut.min(len)
    );
    assert!(feed.base() > 0, "nothing evicted");
    assert_eq!(feed.resident(), feed.len() - feed.base());
    assert!(feed.get(0).is_none(), "evicted records must not resolve");
    assert!(feed.get(feed.len() - 1).is_some(), "live tail must resolve");

    feed.unregister(slot);
    Arc::try_unwrap(server).ok().unwrap().shutdown();
    remove_wal(&path);
}

/// A fresh follower that subscribes after checkpoint eviction has
/// dropped the feed prefix bootstraps from the snapshot
/// (`SnapshotChunk*` + `SnapshotDone`) and still converges to the
/// leader's exact store.
#[test]
fn fresh_follower_bootstraps_from_snapshot_after_feed_eviction() {
    let cfg = RegionStreamConfig {
        sessions: 4,
        region: 12,
        steps: 400,
        seed: 47,
        ..RegionStreamConfig::default()
    };
    let path = temp_path("wal-bootstrap.wal");
    let mut config = server_config(BackendKind::IaHash, 1);
    config.wal_path = Some(path.clone());
    config.max_wal_segment_bytes = 1024;
    config.max_followers = 2;

    let net = NetServer::start(
        wcc_algorithms(),
        cfg.capacity(),
        config,
        NetConfig {
            heartbeat_interval: Duration::from_millis(20),
            ..NetConfig::default()
        },
    )
    .expect("leader");
    drive_net_sessions(net.local_addr(), &disjoint_session_streams(&cfg));

    // With no follower attached, the checkpoint cut alone is the
    // eviction floor; churn until the prefix is actually gone.
    let feed = Arc::clone(net.server().feed().expect("feed"));
    let deadline = Instant::now() + Duration::from_secs(60);
    while feed.base() == 0 {
        assert!(Instant::now() < deadline, "feed prefix never evicted");
        let s = net.server().session();
        for i in 0..64u64 {
            assert!(s.ins_edge(Edge::new(i % 8, i % 8 + 1, 1)).outcome.is_ok());
        }
    }

    let follower = ReplicaServer::start(
        wcc_algorithms(),
        cfg.capacity(),
        server_config(BackendKind::IaHash, 1),
        FollowerConfig::to_leader(net.local_addr().to_string()),
    )
    .expect("follower");
    let leader_version = net.server().current_version();
    let deadline = Instant::now() + Duration::from_secs(120);
    while follower.replica().current_version() < leader_version || follower.lag() > 0 {
        assert!(
            Instant::now() < deadline,
            "follower stuck at version {} (lag {}), leader at {leader_version}",
            follower.replica().current_version(),
            follower.lag(),
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    assert!(
        follower.stats().snapshot_bootstraps.load(Ordering::Relaxed) >= 1,
        "a fresh follower below the retention floor must bootstrap from the snapshot"
    );
    assert_eq!(
        follower.stats().rejections.load(Ordering::Relaxed),
        0,
        "snapshot bootstrap must not surface as a rejection"
    );
    assert_eq!(
        store_fingerprint(follower.replica().engine(), cfg.capacity() as u64),
        store_fingerprint(net.server().engine(), cfg.capacity() as u64),
        "snapshot-bootstrapped follower store"
    );
    assert_eq!(
        follower.replica().current_version(),
        net.server().current_version()
    );

    follower.shutdown();
    net.shutdown();
    remove_wal(&path);
}

/// The lagging-follower wedge regression: a *non-fresh* follower that
/// comes back after the feed's retention floor passed its watermark
/// used to receive a terminal rejection and retry the same doomed
/// offset forever (reconverging only via operator restart). Now the
/// leader names the condition (`FeedTruncated`) and the follower
/// resets itself to fresh, re-subscribes at 0, and takes the snapshot
/// bootstrap path — reconverging with no manual intervention.
///
/// The outage is simulated with a pausable byte proxy between follower
/// and leader: pausing kills the live stream and refuses reconnects
/// (so the leader frees the follower's watermark slot and checkpoint
/// eviction can advance past it), unpausing lets the follower back in.
#[test]
fn evicted_follower_resets_to_fresh_and_reconverges() {
    let path = temp_path("wal-feed-reset.wal");
    let mut config = server_config(BackendKind::IaHash, 1);
    config.wal_path = Some(path.clone());
    config.max_wal_segment_bytes = 1024;
    config.max_followers = 2;
    let net = NetServer::start(
        wcc_algorithms(),
        1 << 12,
        config,
        NetConfig {
            heartbeat_interval: Duration::from_millis(20),
            ..NetConfig::default()
        },
    )
    .expect("leader");

    // Pausable proxy: forwards bytes both ways; while paused, live
    // links are severed and new connects are accepted-then-dropped.
    let leader_addr = net.local_addr();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let proxy_addr = listener.local_addr().unwrap();
    let paused = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let links: Arc<std::sync::Mutex<Vec<std::net::TcpStream>>> = Arc::default();
    {
        let (paused, links) = (Arc::clone(&paused), Arc::clone(&links));
        std::thread::spawn(move || {
            for inbound in listener.incoming() {
                let Ok(inbound) = inbound else { break };
                if paused.load(Ordering::Relaxed) {
                    continue; // dropped: the follower sees EOF and retries
                }
                let Ok(outbound) = std::net::TcpStream::connect(leader_addr) else {
                    continue;
                };
                let mut ends = links.lock().unwrap();
                for (mut rd, mut wr) in [
                    (inbound.try_clone().unwrap(), outbound.try_clone().unwrap()),
                    (outbound.try_clone().unwrap(), inbound.try_clone().unwrap()),
                ] {
                    std::thread::spawn(move || {
                        let _ = std::io::copy(&mut rd, &mut wr);
                        let _ = wr.shutdown(std::net::Shutdown::Both);
                    });
                }
                ends.push(inbound);
                ends.push(outbound);
            }
        });
    }
    let sever = |pause: bool| {
        paused.store(pause, Ordering::Relaxed);
        if pause {
            for end in links.lock().unwrap().drain(..) {
                let _ = end.shutdown(std::net::Shutdown::Both);
            }
        }
    };

    // Attach the follower first (its watermark pins retention while
    // connected) and let it ride the live stream — no bootstrap.
    let follower = ReplicaServer::start(
        wcc_algorithms(),
        1 << 12,
        server_config(BackendKind::IaHash, 1),
        FollowerConfig {
            reconnect_backoff: Duration::from_millis(10),
            ..FollowerConfig::to_leader(proxy_addr.to_string())
        },
    )
    .expect("follower");
    let s = net.server().session();
    for i in 0..200u64 {
        assert!(s.ins_edge(Edge::new(i % 16, i % 16 + 1, 1)).outcome.is_ok());
    }
    let synced_version = net.server().current_version();
    let deadline = Instant::now() + Duration::from_secs(60);
    while follower.replica().current_version() < synced_version {
        assert!(Instant::now() < deadline, "follower never synced");
        std::thread::sleep(Duration::from_millis(2));
    }
    let watermark = follower.replica().applied_records();
    assert!(
        watermark > 0,
        "follower must be non-fresh before the outage"
    );
    assert_eq!(
        follower.stats().snapshot_bootstraps.load(Ordering::Relaxed),
        0,
        "a live follower rides the stream"
    );

    // Outage: sever the stream, then churn the leader until checkpoint
    // eviction drops the feed prefix past the follower's watermark.
    sever(true);
    let feed = Arc::clone(net.server().feed().expect("feed"));
    let deadline = Instant::now() + Duration::from_secs(60);
    while feed.base() <= watermark {
        assert!(
            Instant::now() < deadline,
            "feed base {} never passed the watermark {watermark}",
            feed.base()
        );
        for i in 0..64u64 {
            assert!(s.ins_edge(Edge::new(i % 8, i % 8 + 1, 1)).outcome.is_ok());
        }
    }
    drop(s);

    // Recovery: the follower's resubscribe at its stale watermark is
    // refused as FeedTruncated; it must reset to fresh, bootstrap from
    // the snapshot, and reconverge — all on its own.
    sever(false);
    let leader_version = net.server().current_version();
    let deadline = Instant::now() + Duration::from_secs(120);
    while follower.replica().current_version() < leader_version || follower.lag() > 0 {
        assert!(
            Instant::now() < deadline,
            "follower wedged at version {} (lag {}, resets {}), leader at {leader_version}",
            follower.replica().current_version(),
            follower.lag(),
            follower.stats().feed_resets.load(Ordering::Relaxed),
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        follower.stats().feed_resets.load(Ordering::Relaxed) >= 1,
        "recovery must go through the feed-truncation reset"
    );
    assert_eq!(
        follower.stats().snapshot_bootstraps.load(Ordering::Relaxed),
        1,
        "the reset follower must bootstrap from the snapshot exactly once"
    );
    assert_eq!(
        store_fingerprint(follower.replica().engine(), 1 << 12),
        store_fingerprint(net.server().engine(), 1 << 12),
        "reconverged follower store"
    );
    assert_eq!(
        follower.replica().current_version(),
        net.server().current_version()
    );

    follower.shutdown();
    net.shutdown();
    remove_wal(&path);
}

/// 60-second soak: tiny segments, a timer checkpoint cadence and a live
/// follower; under continuous churn both the WAL's disk footprint and
/// the feed's resident window must stay bounded, and a restart must
/// replay only post-checkpoint segments.
#[test]
#[ignore]
fn soak_bounded_wal_disk_and_feed_memory_under_churn() {
    let n = 64usize;
    let path = temp_path("wal-soak.wal");
    let mut config = server_config(BackendKind::IaHash, 4);
    config.wal_path = Some(path.clone());
    config.max_wal_segment_bytes = 4096;
    config.checkpoint_interval = Some(Duration::from_millis(200));
    config.max_followers = 2;

    let net = NetServer::start(wcc_algorithms(), n, config.clone(), NetConfig::default())
        .expect("leader");
    let follower = ReplicaServer::start(
        wcc_algorithms(),
        n,
        server_config(BackendKind::IaHash, 1),
        FollowerConfig::to_leader(net.local_addr().to_string()),
    )
    .expect("follower");

    let feed = Arc::clone(net.server().feed().expect("feed"));
    let s = net.server().session();
    let deadline = Instant::now() + Duration::from_secs(60);
    let (mut submitted, mut max_disk, mut max_resident) = (0u64, 0u64, 0u64);
    let mut next_sample = Instant::now();
    while Instant::now() < deadline {
        for i in 0..32u64 {
            // Strict ins/del pairs per edge slot, so the live multiset
            // (and with it the checkpoint snapshot) stays small while
            // the WAL sees a new record per update.
            let step = submitted + i;
            let slot = (step / 2) % 32;
            let e = Edge::new(slot, slot + 1, 1);
            let r = if step % 2 == 0 {
                s.ins_edge(e)
            } else {
                s.del_edge(e)
            };
            assert!(matches!(r.outcome, Ok(_) | Err(Error::EdgeNotFound(_))));
        }
        submitted += 32;
        if Instant::now() >= next_sample {
            max_disk = max_disk.max(wal_disk_bytes(&path));
            max_resident = max_resident.max(feed.resident());
            next_sample = Instant::now() + Duration::from_millis(250);
        }
    }
    drop(s);

    // Bounds, not exact sizes: ~16 retained 4 KiB segments plus the
    // snapshot for disk; a few checkpoint intervals' worth of records
    // for the feed. Unbounded growth blows straight past both.
    assert!(submitted > 10_000, "soak too slow: {submitted} updates");
    assert!(
        max_disk <= 1 << 20,
        "WAL disk footprint unbounded under churn: peak {max_disk} bytes"
    );
    assert!(
        max_resident <= 50_000,
        "feed memory unbounded under churn: peak {max_resident} records"
    );
    assert!(
        follower.stats().snapshot_bootstraps.load(Ordering::Relaxed) == 0
            && follower.stats().stream_errors.load(Ordering::Relaxed) == 0,
        "live follower must ride the stream, not re-bootstrap"
    );

    follower.shutdown();
    net.shutdown();

    // Restart replays only the post-checkpoint tail.
    let manifest = read_manifest(&path).unwrap().expect("manifest");
    assert!(manifest.first_seg > 0, "soak never truncated");
    let recovered = Server::start(wcc_algorithms(), n, config).unwrap();
    let replayed = recovered
        .stats()
        .wal_replayed_records
        .load(Ordering::Relaxed);
    assert!(
        replayed < submitted / 10,
        "restart replayed {replayed} of {submitted} records — checkpoints did not bound replay"
    );
    recovered.shutdown();
    remove_wal(&path);
}
