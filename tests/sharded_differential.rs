//! The cross-shard differential suite: the sharded safe phase
//! (`ServerConfig::shards = N`) must be observably identical to the
//! serial coordinator (`shards = 1`) on the same update streams — same
//! reply outcomes and safety classes, same point-in-time query answers
//! at every returned version, same per-version modification sets, same
//! final values and store contents. This is the §4 commutativity claim
//! ("safe updates change no results, so they may execute in any
//! interleaving") as an executable property, checked on three storage
//! backends (IA_Hash, the legacy out-of-core prototype, and the
//! concurrent mmap-backed OOC store — whose cross-backend triangle
//! `ooc-mmap ≡ ooc ≡ IA_Hash` is asserted at shards 1 and 4).
//!
//! Determinism protocol: each emulated session owns a disjoint vertex
//! region ([`risgraph_testkit::disjoint_session_streams`]), so its
//! classifications and effects cannot depend on how the server
//! interleaves sessions; servers run one engine worker thread so
//! intra-update propagation picks deterministic dependency-tree
//! parents. See `crates/testkit/src/differential.rs` for what exactly
//! is compared.
//!
//! The `*_big` cases are `#[ignore]`d and run in the dedicated slow CI
//! job (`cargo test --release -- --ignored`).

use std::sync::Arc;

use proptest::prelude::*;
use risgraph::algorithms::Wcc;
use risgraph::prelude::*;
use risgraph::storage::BackendKind;
use risgraph_testkit::{
    assert_servers_equivalent, disjoint_session_streams, drive_sessions, drive_sessions_pipelined,
    random_stream, server_config, unsafe_chain_streams_with_build, RegionStreamConfig,
    UnsafeChainConfig,
};

fn start(backend: BackendKind, shards: usize, capacity: usize) -> Arc<Server> {
    // Inherits `unsafe_workers` from the environment (the
    // RISGRAPH_UNSAFE_WORKERS CI legs re-run the whole suite with a
    // parallel unsafe phase); `start_workers` pins it explicitly.
    Arc::new(
        Server::start(
            vec![Arc::new(Wcc::new()) as DynAlgorithm],
            capacity,
            server_config(backend, shards),
        )
        .unwrap(),
    )
}

fn start_workers(
    backend: BackendKind,
    shards: usize,
    capacity: usize,
    unsafe_workers: usize,
) -> Arc<Server> {
    let mut config = server_config(backend, shards);
    config.unsafe_workers = unsafe_workers;
    Arc::new(Server::start(vec![Arc::new(Wcc::new()) as DynAlgorithm], capacity, config).unwrap())
}

/// Run the same per-session streams through `shards = 1` and
/// `shards = shards_b` servers on `backend` and assert equivalence.
fn differential(
    label: &str,
    backend_a: BackendKind,
    backend_b: BackendKind,
    shards_b: usize,
    streams: &[Vec<Update>],
    capacity: usize,
) {
    differential_pair(
        label,
        (backend_a, 1),
        (backend_b, shards_b),
        streams,
        capacity,
    )
}

/// Fully general pair: any backend and shard count on either side.
fn differential_pair(
    label: &str,
    (backend_a, shards_a): (BackendKind, usize),
    (backend_b, shards_b): (BackendKind, usize),
    streams: &[Vec<Update>],
    capacity: usize,
) {
    let serial = start(backend_a, shards_a, capacity);
    let sharded = start(backend_b, shards_b, capacity);
    let traces_serial = drive_sessions(&serial, streams);
    let traces_sharded = drive_sessions(&sharded, streams);
    assert_servers_equivalent(
        label,
        &serial,
        &traces_serial,
        &sharded,
        &traces_sharded,
        streams,
        Wcc::new(),
        capacity,
    );
    Arc::try_unwrap(serial).ok().unwrap().shutdown();
    Arc::try_unwrap(sharded).ok().unwrap().shutdown();
}

#[test]
fn sharded_equals_serial_on_ia_hash() {
    for seed in [1u64, 2, 3] {
        let cfg = RegionStreamConfig {
            sessions: 4,
            region: 20,
            steps: 120,
            seed,
            ..RegionStreamConfig::default()
        };
        differential(
            &format!("IA_Hash seed {seed}"),
            BackendKind::IaHash,
            BackendKind::IaHash,
            4,
            &disjoint_session_streams(&cfg),
            cfg.capacity(),
        );
    }
}

#[test]
fn sharded_equals_serial_on_ooc() {
    let cfg = RegionStreamConfig {
        sessions: 4,
        region: 16,
        steps: 80,
        seed: 9,
        ..RegionStreamConfig::default()
    };
    // Tiny caches force block evictions mid-stream on both servers.
    let (ooc_a, path_a) = risgraph_testkit::ooc_backend("shard-diff-serial", 4);
    let (ooc_b, path_b) = risgraph_testkit::ooc_backend("shard-diff-sharded", 4);
    differential(
        "OOC",
        ooc_a,
        ooc_b,
        4,
        &disjoint_session_streams(&cfg),
        cfg.capacity(),
    );
    let _ = std::fs::remove_file(path_a);
    let _ = std::fs::remove_file(path_b);
}

/// The acceptance triangle for the mmap OOC store: `ooc-mmap` must be
/// observably identical to IA_Hash and to the legacy global-mutex
/// `ooc` store, at `shards = 1` and `shards = 4` — same outcomes and
/// safety classes, same point-in-time values against the oracle, same
/// modification sets, same final values and count-annotated store
/// contents. With `sharded_equals_serial_on_ooc` above this chains
/// `ooc-mmap ≡ ooc ≡ IA_Hash` at both shard counts.
#[test]
fn ooc_mmap_equals_legacy_ooc_and_ia_hash() {
    let cfg = RegionStreamConfig {
        sessions: 4,
        region: 16,
        steps: 80,
        seed: 31,
        ..RegionStreamConfig::default()
    };
    let streams = disjoint_session_streams(&cfg);
    let mut scratch = Vec::new();

    // IA_Hash serial vs ooc-mmap serial.
    let (mmap_s1, p) = risgraph_testkit::ooc_mmap_backend("mmap-diff-serial");
    scratch.push(p);
    differential_pair(
        "IA_Hash s1 vs OOC_MMAP s1",
        (BackendKind::IaHash, 1),
        (mmap_s1, 1),
        &streams,
        cfg.capacity(),
    );

    // IA_Hash serial vs ooc-mmap sharded: the striped locks must admit
    // real concurrency without changing anything observable.
    let (mmap_s4, p) = risgraph_testkit::ooc_mmap_backend("mmap-diff-sharded");
    scratch.push(p);
    differential_pair(
        "IA_Hash s1 vs OOC_MMAP s4",
        (BackendKind::IaHash, 1),
        (mmap_s4, 4),
        &streams,
        cfg.capacity(),
    );

    // Legacy ooc sharded vs ooc-mmap sharded: same epochs, same
    // backend family, one serialized by a global mutex and one by
    // per-vertex stripes.
    let (ooc_s4, p) = risgraph_testkit::ooc_backend("mmap-diff-legacy", 4);
    scratch.push(p);
    let (mmap_s4b, p) = risgraph_testkit::ooc_mmap_backend("mmap-diff-sharded-b");
    scratch.push(p);
    differential_pair(
        "OOC s4 vs OOC_MMAP s4",
        (ooc_s4, 4),
        (mmap_s4b, 4),
        &streams,
        cfg.capacity(),
    );

    for p in scratch {
        risgraph_testkit::remove_ooc_files(&p);
    }
}

/// The parallel unsafe phase differential (§7): `unsafe_workers = 4`
/// must be observably identical to `unsafe_workers = 1` on an
/// all-unsafe workload — per-session chain churn under WCC, where
/// every update splits or merges its session's component. Sessions
/// pipeline their streams ([`drive_sessions_pipelined`]) so the unsafe
/// queue genuinely fills with concurrently pending updates, and the
/// `unsafe_parallel_groups` counter proves the parallel path (not its
/// serial fallback) did the work being compared. Checked at shards 1
/// and 4 on IA_Hash and on the mmap OOC store.
#[test]
fn parallel_unsafe_equals_serial() {
    let cfg = UnsafeChainConfig {
        sessions: 4,
        chain: 12,
        base: 1,
        pairs: 40,
    };
    let streams = unsafe_chain_streams_with_build(&cfg);
    let n = cfg.capacity();

    let unsafe_differential = |label: &str, serial: Arc<Server>, parallel: Arc<Server>| {
        let traces_serial = drive_sessions_pipelined(&serial, &streams);
        let traces_parallel = drive_sessions_pipelined(&parallel, &streams);
        assert_servers_equivalent(
            label,
            &serial,
            &traces_serial,
            &parallel,
            &traces_parallel,
            &streams,
            Wcc::new(),
            n,
        );
        let groups = parallel
            .stats()
            .unsafe_parallel_groups
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(groups > 0, "{label}: parallel unsafe phase never engaged");
        assert_eq!(
            serial
                .stats()
                .unsafe_parallel_groups
                .load(std::sync::atomic::Ordering::Relaxed),
            0,
            "{label}: unsafe_workers = 1 must never group"
        );
        Arc::try_unwrap(serial).ok().unwrap().shutdown();
        Arc::try_unwrap(parallel).ok().unwrap().shutdown();
    };

    for shards in [1usize, 4] {
        unsafe_differential(
            &format!("IA_Hash s{shards} w1 vs w4"),
            start_workers(BackendKind::IaHash, shards, n, 1),
            start_workers(BackendKind::IaHash, shards, n, 4),
        );

        let (mmap_a, pa) =
            risgraph_testkit::ooc_mmap_backend(&format!("unsafe-diff-s{shards}-serial"));
        let (mmap_b, pb) =
            risgraph_testkit::ooc_mmap_backend(&format!("unsafe-diff-s{shards}-parallel"));
        unsafe_differential(
            &format!("OOC_MMAP s{shards} w1 vs w4"),
            start_workers(mmap_a, shards, n, 1),
            start_workers(mmap_b, shards, n, 4),
        );
        risgraph_testkit::remove_ooc_files(&pa);
        risgraph_testkit::remove_ooc_files(&pb);
    }
}

/// A single synchronous session serializes everything, so the two
/// servers must agree *exactly* — version numbers included.
#[test]
fn single_session_versions_are_identical() {
    let n = 24usize;
    let stream = vec![random_stream(n as u64, 200, 5, 4)];
    let serial = start(BackendKind::IaHash, 1, n);
    let sharded = start(BackendKind::IaHash, 4, n);
    let ta = drive_sessions(&serial, &stream);
    let tb = drive_sessions(&sharded, &stream);
    assert_eq!(ta[0].steps, tb[0].steps, "version-exact trace equality");
    assert_servers_equivalent(
        "single session",
        &serial,
        &ta,
        &sharded,
        &tb,
        &stream,
        Wcc::new(),
        n,
    );
    Arc::try_unwrap(serial).ok().unwrap().shutdown();
    Arc::try_unwrap(sharded).ok().unwrap().shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized differential: arbitrary seeds, session counts and
    /// stream lengths, shards=1 vs shards=4 on IA_Hash.
    #[test]
    fn sharded_differential_prop(
        seed in 0u64..1000,
        sessions in 2usize..5,
        steps in 30usize..90,
    ) {
        let cfg = RegionStreamConfig {
            sessions,
            region: 16,
            steps,
            seed,
            ..RegionStreamConfig::default()
        };
        differential(
            &format!("prop seed {seed} sessions {sessions} steps {steps}"),
            BackendKind::IaHash,
            BackendKind::IaHash,
            4,
            &disjoint_session_streams(&cfg),
            cfg.capacity(),
        );
    }
}

#[test]
#[ignore = "slow: big differential, run via `cargo test --release -- --ignored`"]
fn sharded_equals_serial_big() {
    for (label, shards) in [("2 shards", 2), ("4 shards", 4), ("8 shards", 8)] {
        let cfg = RegionStreamConfig {
            sessions: 8,
            region: 32,
            steps: 500,
            seed: 42,
            ..RegionStreamConfig::default()
        };
        differential(
            &format!("big IA_Hash {label}"),
            BackendKind::IaHash,
            BackendKind::IaHash,
            shards,
            &disjoint_session_streams(&cfg),
            cfg.capacity(),
        );
    }
    let cfg = RegionStreamConfig {
        sessions: 6,
        region: 24,
        steps: 300,
        seed: 43,
        ..RegionStreamConfig::default()
    };
    let (ooc_a, path_a) = risgraph_testkit::ooc_backend("shard-diff-big-serial", 8);
    let (ooc_b, path_b) = risgraph_testkit::ooc_backend("shard-diff-big-sharded", 8);
    differential(
        "big OOC",
        ooc_a,
        ooc_b,
        4,
        &disjoint_session_streams(&cfg),
        cfg.capacity(),
    );
    let _ = std::fs::remove_file(path_a);
    let _ = std::fs::remove_file(path_b);
    let (mmap_a, path_a) = risgraph_testkit::ooc_mmap_backend("shard-diff-big-mmap-serial");
    let (mmap_b, path_b) = risgraph_testkit::ooc_mmap_backend("shard-diff-big-mmap-sharded");
    let cfg = RegionStreamConfig {
        sessions: 8,
        region: 32,
        steps: 500,
        seed: 44,
        ..RegionStreamConfig::default()
    };
    differential_pair(
        "big OOC_MMAP",
        (mmap_a, 1),
        (mmap_b, 8),
        &disjoint_session_streams(&cfg),
        cfg.capacity(),
    );
    risgraph_testkit::remove_ooc_files(&path_a);
    risgraph_testkit::remove_ooc_files(&path_b);
}
