//! End-to-end observability: the metrics registry, the epoch-pipeline
//! tracer, and the `METRICS` wire opcode observed from a real client
//! against a real TCP server under load.
//!
//! The acceptance triangle for the observability layer:
//!  1. a loaded server reports per-phase epoch histograms (safe
//!     execute, barrier wait, WAL append, feed publish, …) over
//!     `METRICS`;
//!  2. with the slow-epoch threshold at zero every traced epoch is
//!     flagged, and a flagged trace carries its full phase breakdown;
//!  3. a protocol-v1 client that only speaks `STATS` still receives
//!     the fixed-field `StatsReport`, byte-for-byte — the registry is
//!     additive, never a migration.

use std::sync::Arc;
use std::time::{Duration, Instant};

use risgraph::algorithms::Wcc;
use risgraph::common::metrics::{MetricValue, Phase};
use risgraph::common::protocol::{read_frame, write_frame, Request, Response, MAX_RESPONSE_FRAME};
use risgraph::prelude::*;
use risgraph_net::{FollowerConfig, NetClient, NetConfig, NetServer, ReplicaServer};
use risgraph_testkit::{
    disjoint_session_streams, drive_net_sessions, server_config, RegionStreamConfig,
};

fn wcc_algorithms() -> Vec<DynAlgorithm> {
    vec![Arc::new(Wcc::new()) as DynAlgorithm]
}

/// A loaded leader with every epoch traced (threshold zero).
fn loaded_server() -> (NetServer, usize) {
    let cfg = RegionStreamConfig {
        sessions: 4,
        region: 16,
        steps: 60,
        seed: 7_082_021,
        ..RegionStreamConfig::default()
    };
    let streams = disjoint_session_streams(&cfg);
    let mut server_cfg = server_config(BackendKind::IaHash, 2);
    server_cfg.trace_slow_epoch = Duration::ZERO;
    server_cfg.max_followers = 2;
    let net = NetServer::start(
        wcc_algorithms(),
        cfg.capacity(),
        server_cfg,
        NetConfig::default(),
    )
    .expect("leader");
    drive_net_sessions(net.local_addr(), &streams);
    (net, cfg.capacity())
}

/// Find a histogram by name in a snapshot.
fn histogram_count(snapshot: &[(String, MetricValue)], name: &str) -> Option<u64> {
    snapshot.iter().find_map(|(n, v)| match v {
        MetricValue::Histogram(h) if n == name => Some(h.count),
        _ => None,
    })
}

fn counter(snapshot: &[(String, MetricValue)], name: &str) -> Option<u64> {
    snapshot.iter().find_map(|(n, v)| match v {
        MetricValue::Counter(c) if n == name => Some(*c),
        _ => None,
    })
}

#[test]
fn metrics_opcode_reports_per_phase_epoch_histograms() {
    let (net, _) = loaded_server();
    let client = NetClient::connect(net.local_addr()).expect("connect");
    let snap = client.metrics().expect("METRICS");

    // The epoch pipeline's mandatory phases ran and were histogrammed.
    // (Rotation/checkpoint/unsafe phases are workload-dependent, so
    // only their registration — not a nonzero count — is guaranteed.)
    for phase in [Phase::SafeExecute, Phase::Finalize] {
        let name = format!("epoch.phase.{}_ns", phase.name());
        assert!(
            histogram_count(&snap, &name).expect(&name) > 0,
            "{name} should have samples after a load"
        );
    }
    let traced = counter(&snap, "epoch.traced").expect("epoch.traced");
    assert!(traced > 0, "no epochs traced");
    assert_eq!(
        counter(&snap, "epoch.flagged"),
        Some(traced),
        "threshold zero must flag every traced epoch"
    );
    assert!(
        histogram_count(&snap, "epoch.total_ns").expect("epoch.total_ns") >= traced,
        "every traced epoch records its total span"
    );

    // Core counters moved, and the reactor's per-worker gauges are
    // registered (the drive's connections are closed by now, so only
    // presence — not a level — is stable).
    assert!(counter(&snap, "core.epochs").expect("core.epochs") > 0);
    assert!(counter(&snap, "core.safe_executed").expect("core.safe_executed") > 0);
    assert!(
        snap.iter()
            .any(|(n, v)| n == "net.worker.0.connections" && matches!(v, MetricValue::Gauge(_))),
        "reactor worker gauges missing from the registry"
    );

    net.shutdown();
}

#[test]
fn zero_threshold_flags_epochs_with_full_breakdown() {
    let (net, _) = loaded_server();
    let flagged = net.server().tracer().flagged(64);
    assert!(
        !flagged.is_empty(),
        "threshold zero under load must flag at least one epoch"
    );
    for trace in &flagged {
        assert!(trace.flagged);
        assert_eq!(
            trace.total_ns,
            trace.phase_ns.iter().sum::<u64>(),
            "epoch {}: breakdown must reassemble into the total",
            trace.epoch
        );
        assert!(
            trace.phase_ns[Phase::SafeExecute as usize] > 0
                || trace.phase_ns[Phase::UnsafeExecute as usize] > 0,
            "epoch {}: a traced epoch executed work in some phase",
            trace.epoch
        );
    }
    // Flagged epochs are a subset of the recent ring's view of history.
    let recent = net.server().tracer().recent(64);
    assert!(!recent.is_empty());
    net.shutdown();
}

/// A v1 client (no Hello, fixed-field STATS) against the instrumented
/// server: the reply must still be the exact `StatsReport` encoding —
/// decode cleanly AND re-encode to the identical bytes, proving no new
/// fields leaked into the legacy view.
#[test]
fn v1_stats_report_is_byte_compatible() {
    let (net, _) = loaded_server();

    let mut sock = std::net::TcpStream::connect(net.local_addr()).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut frame = Vec::new();
    write_frame(&mut frame, &Request::Stats.encode(42)).unwrap();
    use std::io::Write as _;
    sock.write_all(&frame).unwrap();

    let mut reader = std::io::BufReader::new(sock);
    let deadline = Instant::now() + Duration::from_secs(10);
    let payload = loop {
        match read_frame(&mut reader, MAX_RESPONSE_FRAME) {
            Ok(Some(p)) => break p,
            Ok(None) => {
                assert!(Instant::now() < deadline, "no STATS reply before deadline");
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("frame error: {e}"),
        }
    };
    let (req_id, resp) = Response::decode(&payload).expect("decode STATS reply");
    assert_eq!(req_id, 42);
    let report = match &resp {
        Response::Stats(r) => *r,
        other => panic!("expected Stats, got {other:?}"),
    };
    assert!(report.epochs > 0, "report should reflect the load");
    assert_eq!(
        resp.encode(42),
        payload,
        "StatsReport encoding must be byte-identical to the v1 shape"
    );

    // The same numbers are visible through the registry: the report is
    // a compatibility view, not a second set of books.
    let client = NetClient::connect(net.local_addr()).expect("connect");
    let snap = client.metrics().expect("METRICS");
    assert_eq!(counter(&snap, "core.epochs"), Some(report.epochs));
    assert_eq!(
        counter(&snap, "core.safe_executed"),
        Some(report.safe_executed)
    );
    net.shutdown();
}

#[test]
fn replica_serves_follower_stats_over_metrics() {
    let (net, capacity) = loaded_server();
    let follower = ReplicaServer::start(
        wcc_algorithms(),
        capacity,
        server_config(BackendKind::IaHash, 1),
        FollowerConfig {
            listen: Some("127.0.0.1:0".into()),
            ..FollowerConfig::to_leader(net.local_addr().to_string())
        },
    )
    .expect("follower");

    let leader_version = net.server().current_version();
    let deadline = Instant::now() + Duration::from_secs(60);
    while follower.replica().current_version() < leader_version || follower.lag() > 0 {
        assert!(Instant::now() < deadline, "replica never converged");
        std::thread::sleep(Duration::from_millis(2));
    }

    let client = NetClient::connect(follower.local_addr().expect("replica addr")).expect("connect");
    let snap = client.metrics().expect("replica METRICS");
    assert!(
        counter(&snap, "replica.records_applied").expect("replica.records_applied") > 0,
        "the follower applied records"
    );
    assert!(counter(&snap, "replica.connects").expect("replica.connects") >= 1);
    let lag = snap.iter().find_map(|(n, v)| match v {
        MetricValue::Gauge(g) if n == "replica.lag" => Some(*g),
        _ => None,
    });
    assert_eq!(lag, Some(0), "converged replica must report zero lag");

    follower.shutdown();
    net.shutdown();
}
