//! The network ≡ in-process differential suite: the TCP serving tier
//! (`crates/net`) must be observably identical to in-process
//! [`Session`]s on the same update streams — same reply outcomes,
//! safety classes and result-change counts, same point-in-time query
//! answers at every returned version, same per-version modification
//! sets, same final values and count-annotated store fingerprints —
//! checked on IA_Hash and the concurrent mmap-backed OOC store, at
//! `shards = 1` and `shards = 4`.
//!
//! Determinism protocol is the same as the cross-shard suite: each
//! connection/session owns a disjoint vertex region
//! ([`risgraph_testkit::disjoint_session_streams`]) and servers run one
//! engine worker thread. On top of the trace comparison, the network
//! *query* path (`get_value` / `get_parent` / `get_modified_vertices` /
//! `get_current_version` over the wire) is differentially checked
//! against an in-process session of the same server.
//!
//! The `net_soak` case is `#[ignore]`d (30 s of pipelined churn) and
//! runs in the slow CI job.

use std::sync::Arc;
use std::time::{Duration, Instant};

use risgraph::algorithms::Wcc;
use risgraph::prelude::*;
use risgraph_net::NetClient;
use risgraph_testkit::{
    assert_servers_equivalent, disjoint_session_streams, drive_net_sessions, drive_sessions,
    loopback_net_server, server_config, RegionStreamConfig,
};

fn wcc_algorithms() -> Vec<DynAlgorithm> {
    vec![Arc::new(Wcc::new()) as DynAlgorithm]
}

/// Drive `streams` over TCP against one server and in-process against
/// another (same backend/shards), and assert full observable
/// equivalence plus wire-query agreement.
fn net_differential(
    label: &str,
    (backend_a, shards_a): (BackendKind, usize),
    (backend_b, shards_b): (BackendKind, usize),
    streams: &[Vec<Update>],
    capacity: usize,
) {
    let net = loopback_net_server(
        wcc_algorithms(),
        capacity,
        server_config(backend_a, shards_a),
    );
    let in_proc = Arc::new(
        Server::start(
            wcc_algorithms(),
            capacity,
            server_config(backend_b, shards_b),
        )
        .unwrap(),
    );

    let traces_net = drive_net_sessions(net.local_addr(), streams);
    let traces_in = drive_sessions(&in_proc, streams);

    assert_servers_equivalent(
        label,
        net.server(),
        &traces_net,
        &in_proc,
        &traces_in,
        streams,
        Wcc::new(),
        capacity,
    );

    // The wire query path must agree with an in-process session of the
    // *same* server at every version a connection observed.
    let client = NetClient::connect(net.local_addr()).unwrap();
    let direct = net.server().session();
    assert_eq!(
        client.current_version().unwrap(),
        direct.get_current_version(),
        "{label}: wire current_version"
    );
    for (i, trace) in traces_net.iter().enumerate() {
        for (t, step) in trace.steps.iter().enumerate().filter(|(_, s)| s.ok) {
            let ctx = format!("{label}: session {i} step {t} version {}", step.version);
            let mut wire_mods = client.get_modified_vertices(0, step.version).unwrap();
            let mut direct_mods = direct.get_modified_vertices(0, step.version).unwrap();
            wire_mods.sort_unstable();
            direct_mods.sort_unstable();
            assert_eq!(wire_mods, direct_mods, "{ctx}: modified sets");
            for &v in &wire_mods {
                assert_eq!(
                    client.get_value(0, step.version, v).unwrap(),
                    direct.get_value(0, step.version, v).unwrap(),
                    "{ctx}: value of {v}"
                );
                assert_eq!(
                    client.get_parent(0, step.version, v).unwrap(),
                    direct.get_parent(0, step.version, v).unwrap(),
                    "{ctx}: parent of {v}"
                );
            }
        }
    }
    drop(direct);
    drop(client);

    net.shutdown();
    Arc::try_unwrap(in_proc).ok().unwrap().shutdown();
}

#[test]
fn network_equals_in_process_on_ia_hash() {
    for (shards, seed) in [(1usize, 11u64), (4, 12)] {
        let cfg = RegionStreamConfig {
            sessions: 4,
            region: 20,
            steps: 100,
            seed,
            ..RegionStreamConfig::default()
        };
        net_differential(
            &format!("net IA_Hash shards {shards}"),
            (BackendKind::IaHash, shards),
            (BackendKind::IaHash, shards),
            &disjoint_session_streams(&cfg),
            cfg.capacity(),
        );
    }
}

#[test]
fn network_equals_in_process_on_ooc_mmap() {
    for (shards, seed) in [(1usize, 21u64), (4, 22)] {
        let cfg = RegionStreamConfig {
            sessions: 4,
            region: 16,
            steps: 80,
            seed,
            ..RegionStreamConfig::default()
        };
        let (mmap_net, path_net) =
            risgraph_testkit::ooc_mmap_backend(&format!("net-diff-{shards}-net"));
        let (mmap_in, path_in) =
            risgraph_testkit::ooc_mmap_backend(&format!("net-diff-{shards}-in"));
        net_differential(
            &format!("net OOC_MMAP shards {shards}"),
            (mmap_net, shards),
            (mmap_in, shards),
            &disjoint_session_streams(&cfg),
            cfg.capacity(),
        );
        risgraph_testkit::remove_ooc_files(&path_net);
        risgraph_testkit::remove_ooc_files(&path_in);
    }
}

/// The cross-shape case: a sharded server behind TCP against a serial
/// server in-process — network framing and the shard barrier compose
/// without changing anything observable.
#[test]
fn sharded_network_equals_serial_in_process() {
    let cfg = RegionStreamConfig {
        sessions: 4,
        region: 16,
        steps: 80,
        seed: 33,
        ..RegionStreamConfig::default()
    };
    net_differential(
        "net IA_Hash s4 vs in-proc IA_Hash s1",
        (BackendKind::IaHash, 4),
        (BackendKind::IaHash, 1),
        &disjoint_session_streams(&cfg),
        cfg.capacity(),
    );
}

/// 30 seconds of pipelined churn from multiple connections **with a
/// replication follower attached**: zero protocol errors on both the
/// client connections and the replication stream, per-connection
/// version monotonicity, a monotone follower watermark whose lag never
/// wedges (it converges to zero once the churn stops), and a live
/// server afterwards. Slow-job material.
#[test]
#[ignore = "slow: 30 s soak, run via `cargo test --release -- --ignored`"]
fn net_soak() {
    use risgraph_net::{FollowerConfig, ReplicaServer};
    let capacity = 1 << 10;
    let preload = [(0, 1, 0), (1, 2, 0), (2, 3, 0)];
    let net = loopback_net_server(
        wcc_algorithms(),
        capacity,
        ServerConfig {
            backend: BackendKind::IaHash,
            max_followers: 1,
            ..ServerConfig::default()
        },
    );
    net.server().load_edges(&preload);
    let addr = net.local_addr();
    // Attach the follower before any update traffic; bulk loads are
    // not replicated, so it preloads the same base edges.
    let follower = Arc::new(
        ReplicaServer::start(
            wcc_algorithms(),
            capacity,
            ServerConfig {
                backend: BackendKind::IaHash,
                max_followers: 0,
                ..ServerConfig::default()
            },
            FollowerConfig::to_leader(addr.to_string()),
        )
        .expect("follower"),
    );
    follower.replica().load_edges(&preload);
    let deadline = Instant::now() + Duration::from_secs(30);
    let window = 64usize;

    // Sample the follower throughout the soak: its applied watermark
    // must be monotone (replication progresses, never regresses) and
    // the stream must stay clean.
    let stop_sampling = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let stop = Arc::clone(&stop_sampling);
        let follower = Arc::clone(&follower);
        std::thread::spawn(move || {
            let mut last_watermark = 0u64;
            let mut worst_lag = 0u64;
            let mut samples = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let watermark = follower.replica().current_version();
                assert!(
                    watermark >= last_watermark,
                    "follower watermark regressed: {last_watermark} -> {watermark}"
                );
                last_watermark = watermark;
                worst_lag = worst_lag.max(follower.lag());
                samples += 1;
                std::thread::sleep(Duration::from_millis(25));
            }
            (samples, worst_lag)
        })
    };

    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let client = NetClient::connect(addr).expect("connect");
                let base = 10 + t * 200;
                let mut inflight: std::collections::VecDeque<u64> = Default::default();
                let mut last_version = 0u64;
                let mut i = 0u64;
                let mut ops = 0u64;
                while Instant::now() < deadline {
                    // Alternate insert/delete churn inside this
                    // connection's region; keep `window` in flight.
                    let e = Edge::new(base + (i % 100), base + ((i * 7 + 1) % 100), 0);
                    let u = if i.is_multiple_of(2) {
                        Update::InsEdge(e)
                    } else {
                        Update::DelEdge(Edge::new(
                            base + ((i - 1) % 100),
                            base + (((i - 1) * 7 + 1) % 100),
                            0,
                        ))
                    };
                    inflight.push_back(client.submit_update_pipelined(&u).expect("submit"));
                    i += 1;
                    while inflight.len() >= window {
                        let id = inflight.pop_front().unwrap();
                        let reply = client.wait_reply(id).expect("no protocol errors");
                        if reply.outcome.is_ok() {
                            assert!(reply.version > last_version, "versions monotone");
                            last_version = reply.version;
                        }
                        ops += 1;
                    }
                }
                for id in inflight {
                    let reply = client.wait_reply(id).expect("drain");
                    if reply.outcome.is_ok() {
                        assert!(reply.version > last_version);
                        last_version = reply.version;
                    }
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0);
    // Server still healthy after the soak.
    let c = NetClient::connect(addr).unwrap();
    assert!(c.ins_edge(Edge::new(3, 4, 0)).unwrap().outcome.is_ok());
    let stats = c.stats().unwrap();
    assert!(stats.latency_count > 0);
    assert_eq!(stats.followers, 1, "the follower stayed subscribed");

    // The follower drains the feed tail: its watermark converges to
    // the leader's final version with a clean stream — zero protocol
    // errors, zero rejections, no duplicate records.
    let leader_version = net.server().current_version();
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    while follower.replica().current_version() < leader_version || follower.lag() > 0 {
        assert!(
            Instant::now() < drain_deadline,
            "follower wedged at {} (leader {leader_version})",
            follower.replica().current_version()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    stop_sampling.store(true, std::sync::atomic::Ordering::Release);
    let (samples, worst_lag) = sampler.join().unwrap();
    use std::sync::atomic::Ordering as AtOrd;
    let fstats = follower.stats();
    assert_eq!(
        fstats.stream_errors.load(AtOrd::Relaxed),
        0,
        "stream errors"
    );
    assert_eq!(fstats.rejections.load(AtOrd::Relaxed), 0, "rejections");
    assert_eq!(fstats.duplicates_skipped.load(AtOrd::Relaxed), 0, "dups");
    assert_eq!(fstats.reconnects.load(AtOrd::Relaxed), 0, "reconnects");
    let applied = fstats.records_applied.load(AtOrd::Relaxed);
    assert!(applied > 0, "follower never applied a record");
    println!(
        "net_soak: {total} ops, p50={}ns p99={}ns p999={}ns; follower applied \
         {applied} records over {samples} samples, worst lag {worst_lag} versions",
        stats.latency_p50_ns, stats.latency_p99_ns, stats.latency_p999_ns
    );
    drop(c);
    Arc::try_unwrap(follower).ok().unwrap().shutdown();
    net.shutdown();
}
