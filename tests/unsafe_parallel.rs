//! The parallel unsafe phase under *conflict* (§7): hub-centered
//! workloads where every update's affected area contains one shared
//! vertex, so conflict grouping can never split the pending queue and
//! the server must take its serial fallback — plus the WAL stamping
//! guarantees of the parallel path.
//!
//! Observational determinism on the hub star: under WCC the hub keeps
//! label 0 no matter which spokes are attached, and each spoke's label
//! depends only on whether its own `hub → spoke` edge is present. Each
//! session's spokes are session-unique, so every session's replies,
//! point-in-time values and modification sets are deterministic even
//! though all sessions share the hub — which is exactly the property
//! [`assert_servers_equivalent`] needs (its usual disjoint-region
//! precondition is the general way to obtain it).
//!
//! WAL stamping: version assignment and WAL records must be byte-exact
//! with respect to the serial server. Epoch *boundaries* are a race in
//! both configurations, so the comparable artifacts are the flattened
//! record stream's per-session-region projections (session order is
//! preserved by the gather phase, so each projection must equal the
//! session's applied stream verbatim) — and, for a single session, the
//! whole flattened log and every version number.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use proptest::prelude::*;
use risgraph::algorithms::Wcc;
use risgraph::core::wal::replay;
use risgraph::prelude::*;
use risgraph::storage::BackendKind;
use risgraph_testkit::{
    assert_servers_equivalent, drive_sessions_pipelined, hub_conflict_streams, random_stream,
    server_config, store_fingerprint, temp_path, unsafe_chain_streams_with_build,
    HubConflictConfig, UnsafeChainConfig,
};

fn start(
    backend: BackendKind,
    shards: usize,
    capacity: usize,
    unsafe_workers: usize,
    wal_path: Option<PathBuf>,
) -> Arc<Server> {
    let mut config = server_config(backend, shards);
    config.unsafe_workers = unsafe_workers;
    config.wal_path = wal_path;
    Arc::new(Server::start(vec![Arc::new(Wcc::new()) as DynAlgorithm], capacity, config).unwrap())
}

fn shutdown(server: Arc<Server>) {
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

/// Drive hub streams through `unsafe_workers = 1` and `= 4` servers,
/// assert observable equivalence, and return the parallel server's
/// `(unsafe_parallel_groups, unsafe_serial_fallbacks)` counters.
fn hub_differential(label: &str, cfg: &HubConflictConfig, shards: usize) -> (u64, u64) {
    let streams = hub_conflict_streams(cfg);
    let n = cfg.capacity();
    let serial = start(BackendKind::IaHash, shards, n, 1, None);
    let parallel = start(BackendKind::IaHash, shards, n, 4, None);
    let traces_serial = drive_sessions_pipelined(&serial, &streams);
    let traces_parallel = drive_sessions_pipelined(&parallel, &streams);
    assert_servers_equivalent(
        label,
        &serial,
        &traces_serial,
        &parallel,
        &traces_parallel,
        &streams,
        Wcc::new(),
        n,
    );
    let stats = parallel.stats();
    let out = (
        stats.unsafe_parallel_groups.load(Ordering::Relaxed),
        stats.unsafe_serial_fallbacks.load(Ordering::Relaxed),
    );
    shutdown(serial);
    shutdown(parallel);
    out
}

/// Every hub update succeeds, conflicts with every other pending one,
/// and the server falls back to serial execution — observably
/// identical to `unsafe_workers = 1`.
#[test]
fn hub_conflicts_force_serial_fallback() {
    let cfg = HubConflictConfig {
        sessions: 4,
        region: 8,
        base: 1,
        pairs: 50,
        hub: 0,
    };
    let (groups, fallbacks) = hub_differential("hub conflict", &cfg, 1);
    assert_eq!(
        groups, 0,
        "all affected areas share the hub; grouping must never split them"
    );
    assert!(fallbacks > 0, "conflicting epochs must count as fallbacks");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Randomized conflict-heavy differential: any session count, load
    /// and shard count — the fallback path engages and `parallel ≡
    /// serial` holds throughout.
    #[test]
    fn hub_conflict_prop(
        sessions in 3usize..6,
        pairs in 20usize..50,
        region in 4u64..12,
        sharded in proptest::bool::ANY,
    ) {
        let shards = if sharded { 4 } else { 1 };
        let cfg = HubConflictConfig { sessions, region, base: 1, pairs, hub: 0 };
        let label = format!("hub prop s{sessions} p{pairs} r{region} sh{shards}");
        let (groups, fallbacks) = hub_differential(&label, &cfg, shards);
        prop_assert_eq!(groups, 0, "hub workload must never group");
        prop_assert!(fallbacks > 0, "fallback never engaged");
    }
}

/// The vertices an update names, for region projection.
fn update_vertices(u: &Update) -> Vec<u64> {
    match u {
        Update::InsEdge(e) | Update::DelEdge(e) => vec![e.src, e.dst],
        Update::InsVertex(v) | Update::DelVertex(v) => vec![*v],
    }
}

/// WAL stamping is byte-exact: on an all-unsafe multi-session chain
/// workload, the flattened WAL of an `unsafe_workers = 4` server —
/// with the parallel path demonstrably engaged — projects onto each
/// session's region as exactly that session's applied stream, i.e. the
/// same projections the serial server writes. (Record *boundaries*
/// race in both configurations; flattened order per region is the
/// deterministic artifact.)
#[test]
fn parallel_unsafe_wal_projections_are_exact() {
    let cfg = UnsafeChainConfig {
        sessions: 4,
        chain: 10,
        base: 1,
        pairs: 30,
    };
    let streams = unsafe_chain_streams_with_build(&cfg);
    let n = cfg.capacity();

    let mut flats = Vec::new();
    let mut paths = Vec::new();
    for (tag, workers) in [("w1", 1usize), ("w4", 4)] {
        let path = temp_path(&format!("unsafe-wal-{tag}.wal"));
        let server = start(BackendKind::IaHash, 1, n, workers, Some(path.clone()));
        let traces = drive_sessions_pipelined(&server, &streams);
        for (i, t) in traces.iter().enumerate() {
            assert!(
                t.steps.iter().all(|s| s.ok),
                "{tag}: session {i} had a failed update"
            );
        }
        if workers > 1 {
            assert!(
                server
                    .stats()
                    .unsafe_parallel_groups
                    .load(Ordering::Relaxed)
                    > 0,
                "{tag}: the WAL under test must come from the parallel path"
            );
        }
        let fingerprint = store_fingerprint(server.engine(), n as u64);
        shutdown(server);
        let flat: Vec<Update> = replay(&path).unwrap().into_iter().flatten().collect();
        flats.push((flat, fingerprint));
        paths.push(path);
    }

    let (flat_serial, fp_serial) = &flats[0];
    let (flat_parallel, fp_parallel) = &flats[1];
    assert_eq!(
        fp_serial, fp_parallel,
        "final store contents must agree before trusting the logs"
    );
    assert_eq!(flat_serial.len(), flat_parallel.len(), "total WAL records");

    for (i, stream) in streams.iter().enumerate() {
        let (lo, hi) = (cfg.lo(i), cfg.lo(i) + cfg.chain);
        let in_region = |u: &&Update| update_vertices(u).iter().all(|&v| v >= lo && v < hi);
        let proj_serial: Vec<&Update> = flat_serial.iter().filter(in_region).collect();
        let proj_parallel: Vec<&Update> = flat_parallel.iter().filter(in_region).collect();
        let want: Vec<&Update> = stream.iter().collect();
        assert_eq!(
            proj_serial, want,
            "session {i}: serial WAL projection ≠ applied stream"
        );
        assert_eq!(
            proj_parallel, want,
            "session {i}: parallel WAL projection ≠ applied stream"
        );
    }
    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}

/// One synchronous session serializes everything, so `unsafe_workers`
/// must change *nothing at all*: every version number and the entire
/// flattened WAL are identical.
#[test]
fn single_session_is_version_and_wal_exact() {
    let n = 24usize;
    let stream = vec![random_stream(n as u64, 150, 11, 4)];
    let path_a = temp_path("unsafe-single-w1.wal");
    let path_b = temp_path("unsafe-single-w4.wal");
    let a = start(BackendKind::IaHash, 1, n, 1, Some(path_a.clone()));
    let b = start(BackendKind::IaHash, 1, n, 4, Some(path_b.clone()));
    let ta = drive_sessions_pipelined(&a, &stream);
    let tb = drive_sessions_pipelined(&b, &stream);
    assert_eq!(ta[0].steps, tb[0].steps, "version-exact trace equality");
    assert_servers_equivalent(
        "single session unsafe_workers",
        &a,
        &ta,
        &b,
        &tb,
        &stream,
        Wcc::new(),
        n,
    );
    shutdown(a);
    shutdown(b);
    let flat_a: Vec<Update> = replay(&path_a).unwrap().into_iter().flatten().collect();
    let flat_b: Vec<Update> = replay(&path_b).unwrap().into_iter().flatten().collect();
    assert_eq!(flat_a, flat_b, "byte-identical flattened WAL");
    let _ = std::fs::remove_file(path_a);
    let _ = std::fs::remove_file(path_b);
}
