//! Scheduler latency contract under adversarial load (§5).
//!
//! The scheduler's job is to abort the safe-packing phase before the
//! oldest queued unsafe update blows the latency limit. Its contract,
//! made precise: an unsafe update may wait at most the configured limit
//! *plus one epoch* (the epoch that was already executing when the
//! limit-driven flush tripped). The server records both sides of the
//! inequality — `ServerStats::max_unsafe_wait_ns` and
//! `ServerStats::max_epoch_ns` — so the bound is asserted directly
//! rather than inferred from client-side latencies.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use risgraph::algorithms::Bfs;
use risgraph::core::scheduler::SchedulerConfig;
use risgraph::core::server::{Server, ServerConfig};
use risgraph::prelude::*;

fn start(config: ServerConfig, capacity: usize) -> Arc<Server> {
    Arc::new(
        Server::start(
            vec![Arc::new(Bfs::new(0)) as DynAlgorithm],
            capacity,
            config,
        )
        .unwrap(),
    )
}

/// Spawn `n` sessions flooding always-safe updates (back-edge churn
/// toward the root) until `stop` is raised.
fn spawn_safe_flood(
    server: &Arc<Server>,
    n: u64,
    stop: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..n)
        .map(|t| {
            let server = Arc::clone(server);
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let session = server.session();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let e = Edge::new(100 + (i + t * 1000) % 400, 0, 0);
                    let _ = session.ins_edge(e);
                    let _ = session.del_edge(e);
                    i += 1;
                }
            })
        })
        .collect()
}

/// Under a safe flood with an unsafe-heavy victim session, the oldest
/// unsafe update never waits past the latency limit by more than one
/// epoch (plus scheduling slack for a loaded CI box).
#[test]
fn unsafe_wait_bounded_by_limit_plus_one_epoch() {
    let limit = Duration::from_millis(50);
    let mut config = ServerConfig::default();
    config.engine.threads = 2;
    config.scheduler = SchedulerConfig {
        latency_limit: limit,
        // A huge queue threshold disables heuristic 2, so only the
        // waiting-time heuristic can flush — the property under test.
        initial_threshold: 1 << 20,
        max_threshold: 1 << 20,
        ..SchedulerConfig::default()
    };
    let server = start(config, 1 << 12);
    // A chain so extensions at the end are unsafe (result-changing).
    let chain: Vec<(u64, u64, u64)> = (0..32).map(|i| (i, i + 1, 0)).collect();
    server.load_edges(&chain);

    let stop = Arc::new(AtomicBool::new(false));
    let flooders = spawn_safe_flood(&server, 3, &stop);

    let session = server.session();
    for i in 0..60u64 {
        let r = session.ins_edge(Edge::new(32 + i, 33 + i, 0));
        assert!(r.outcome.is_ok());
    }
    stop.store(true, Ordering::Relaxed);
    for f in flooders {
        f.join().unwrap();
    }

    let stats = server.stats();
    let max_wait = Duration::from_nanos(stats.max_unsafe_wait_ns());
    let max_epoch = Duration::from_nanos(stats.max_epoch_ns.load(Ordering::Relaxed));
    assert!(stats.unsafe_executed.load(Ordering::Relaxed) >= 60);
    // The contract, with 50 ms slack for preemption on a shared runner.
    let bound = limit + max_epoch + Duration::from_millis(50);
    assert!(
        max_wait <= bound,
        "oldest unsafe update waited {max_wait:?}, over the limit ({limit:?}) \
         + one epoch ({max_epoch:?}) + slack"
    );
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

/// With an unachievable latency limit the qualified fraction misses the
/// goal, so the self-adjusting threshold must fall below its starting
/// point (the −10% rule, §5) — observable through the server's
/// `min_threshold` gauge.
#[test]
fn threshold_adapts_downward_under_pressure() {
    let mut config = ServerConfig::default();
    config.engine.threads = 2;
    config.scheduler = SchedulerConfig {
        // A zero limit no update can meet: every epoch records misses,
        // so the adversarial unsafe-heavy stream *must* drive the
        // threshold down — deterministically, not by racing the clock.
        latency_limit: Duration::ZERO,
        initial_threshold: 64,
        ..SchedulerConfig::default()
    };
    let server = start(config, 1 << 12);
    let chain: Vec<(u64, u64, u64)> = (0..8).map(|i| (i, i + 1, 0)).collect();
    server.load_edges(&chain);

    // Unsafe-heavy: every chain extension changes a result.
    let session = server.session();
    for i in 0..100u64 {
        let r = session.ins_edge(Edge::new(8 + i, 9 + i, 0));
        assert!(r.outcome.is_ok());
    }

    let min_threshold = server.stats().min_threshold.load(Ordering::Relaxed);
    assert!(
        min_threshold < 64,
        "threshold never adjusted below its initial value (min {min_threshold})"
    );
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}
