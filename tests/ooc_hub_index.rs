//! Hub-vertex point-lookup microbench: the mmap store's per-vertex
//! chain index (`(neighbour, weight) → (block, slot)`) versus the
//! legacy OOC store's O(chain) block walk. Ignored by default
//! (wall-clock measurement); the slow CI job runs it with
//! `cargo test --release -- --ignored`.

use std::time::Instant;

use risgraph::prelude::*;
use risgraph::storage::{MmapOocStore, OocStore};
use risgraph_testkit::temp_path;

/// One hub vertex with a 20k-record chain (~100 blocks per direction).
/// The legacy store scans ~50 blocks per miss-free lookup; the indexed
/// store touches exactly one. Both stores hold every block resident
/// (the legacy cache is oversized), so the gap is purely algorithmic.
#[test]
#[ignore = "wall-clock measurement; run via `cargo test --release -- --ignored`"]
fn indexed_find_beats_chain_walk_on_hubs() {
    const HUB_EDGES: u64 = 20_000;
    const LOOKUPS: u64 = 200_000;

    let legacy_path = temp_path("hub-legacy.blocks");
    let mmap_path = temp_path("hub-mmap.blocks");
    let legacy = OocStore::create(&legacy_path, 128, 16_384).unwrap();
    let mmap = MmapOocStore::create(&mmap_path, 128).unwrap();
    for i in 0..HUB_EDGES {
        let e = Edge::new(0, i % 64, i);
        legacy.insert_edge(e).unwrap();
        mmap.insert_edge(e).unwrap();
    }

    // Deterministic pseudo-random existing-edge lookups (LCG), same
    // sequence for both stores.
    let run = |count: &dyn Fn(Edge) -> u32| {
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut hits = 0u64;
        let t = Instant::now();
        for _ in 0..LOOKUPS {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (x >> 16) % HUB_EDGES;
            hits += count(Edge::new(0, i % 64, i)) as u64;
        }
        (t.elapsed(), hits)
    };
    let (legacy_t, legacy_hits) = run(&|e| legacy.edge_count(e).unwrap());
    let (mmap_t, mmap_hits) = run(&|e| mmap.edge_count(e));
    assert_eq!(legacy_hits, LOOKUPS, "every lookup targets a live edge");
    assert_eq!(mmap_hits, LOOKUPS);

    eprintln!(
        "hub edge_count x{LOOKUPS}: legacy chain walk {legacy_t:?}, \
         indexed {mmap_t:?} ({:.1}x)",
        legacy_t.as_secs_f64() / mmap_t.as_secs_f64().max(1e-9)
    );
    assert!(
        mmap_t * 2 < legacy_t,
        "indexed find ({mmap_t:?}) should beat the O(chain) walk \
         ({legacy_t:?}) by well over 2x on a 20k-record hub"
    );

    drop((legacy, mmap));
    let _ = std::fs::remove_file(&legacy_path);
    risgraph_testkit::remove_ooc_files(&mmap_path);
}
