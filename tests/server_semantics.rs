//! Interactive-tier semantics across crates: versioned snapshots match
//! an offline reconstruction of every version; concurrent sessions
//! preserve per-update analysis semantics; WAL recovery restores state.

use std::sync::Arc;
use std::time::Duration;

use risgraph::algorithms::{Bfs, Sssp};
use risgraph::core::server::{Server, ServerConfig};
use risgraph::prelude::*;
use risgraph::workloads::datasets::by_abbr;
use risgraph::workloads::StreamConfig;
use risgraph_testkit::oracle;

/// Every version the server hands out must answer `get_value` exactly
/// like an oracle recomputation of the graph as of that version.
#[test]
fn every_version_matches_offline_reconstruction() {
    let spec = by_abbr("PH").unwrap();
    let data = spec.generate(7, 0); // 128 vertices
    let stream = StreamConfig {
        timestamped: spec.temporal,
        ..StreamConfig::default()
    }
    .build(&data.edges);

    let mut config = ServerConfig::default();
    config.engine.threads = 4;
    let server: Server = Server::start(
        vec![Arc::new(Bfs::new(data.root)) as DynAlgorithm],
        data.num_vertices,
        config,
    )
    .unwrap();
    server.load_edges(&stream.preload);
    let session = server.session();

    // Apply updates one by one, remembering (version, graph-state).
    let mut live = stream.preload.clone();
    let mut checkpoints: Vec<(u64, Vec<u64>)> = Vec::new();
    let take = stream.updates.len().min(250);
    for u in &stream.updates[..take] {
        let reply = match *u {
            Update::InsEdge(e) => session.ins_edge(e),
            Update::DelEdge(e) => session.del_edge(e),
            _ => unreachable!(),
        };
        assert!(reply.outcome.is_ok(), "update {u:?} failed");
        oracle::apply_update(&mut live, u);
        let want = oracle::oracle_values(&Bfs::new(data.root), data.num_vertices, &live);
        checkpoints.push((reply.version, want));
    }

    // All historical versions still answer correctly afterwards.
    for (version, want) in &checkpoints {
        for v in 0..data.num_vertices as u64 {
            assert_eq!(
                session.get_value(0, *version, v).unwrap(),
                want[v as usize],
                "version {version}, vertex {v}"
            );
        }
    }
    server.shutdown();
}

/// Sequential consistency per session: a session that inserts then
/// deletes then re-inserts the same edge must observe its own program
/// order in the returned versions.
#[test]
fn session_program_order() {
    let server: Server = Server::start(
        vec![Arc::new(Bfs::new(0)) as DynAlgorithm],
        64,
        ServerConfig::default(),
    )
    .unwrap();
    server.load_edges(&[(0, 1, 0)]);
    let s = server.session();
    let e = Edge::new(1, 2, 0);
    let mut versions = Vec::new();
    for _ in 0..10 {
        versions.push(s.ins_edge(e).version);
        versions.push(s.del_edge(e).version);
    }
    assert!(versions.windows(2).all(|w| w[0] < w[1]), "{versions:?}");
    assert_eq!(server.engine().value(0, 2), u64::MAX);
    server.shutdown();
}

/// Per-update semantics under concurrency: each result-changing update
/// gets its own version; no version merges two updates' effects.
#[test]
fn per_update_versions_under_concurrency() {
    let server: Arc<Server> = Arc::new(
        Server::start(
            vec![Arc::new(Sssp::new(0)) as DynAlgorithm],
            1 << 10,
            ServerConfig::default(),
        )
        .unwrap(),
    );
    // A path so extensions are unsafe (result-changing).
    server.load_edges(&[(0, 1, 1)]);
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            let session = server.session();
            let mut out = Vec::new();
            // Each thread grows its own chain off vertex 1.
            let base = 10 + t * 100;
            let mut prev = 1u64;
            for i in 0..50 {
                let v = base + i;
                let reply = session.ins_edge(Edge::new(prev, v, 1));
                let applied = reply.outcome.unwrap();
                out.push((reply.version, applied.result_changes));
                prev = v;
            }
            out
        }));
    }
    let mut seen = std::collections::HashSet::new();
    for h in handles {
        for (version, changes) in h.join().unwrap() {
            assert!(seen.insert(version), "duplicate version {version}");
            assert_eq!(changes, 1, "each chain extension changes exactly 1 vertex");
        }
    }
    let server = Arc::try_unwrap(server).ok().unwrap();
    server.shutdown();
}

/// Crash recovery: a server restarted from its WAL serves the same
/// values as the original.
#[test]
fn wal_recovery_is_value_equivalent() {
    let dir = std::env::temp_dir().join("risgraph-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("e2e-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let spec = by_abbr("PH").unwrap();
    let data = spec.generate(7, 0);
    let stream = StreamConfig::default().build(&data.edges);
    let take = stream.updates.len().min(300);

    let mut config = ServerConfig::default();
    config.engine.threads = 2;
    config.wal_path = Some(path.clone());

    let reference_values;
    {
        let server: Server = Server::start(
            vec![Arc::new(Bfs::new(data.root)) as DynAlgorithm],
            data.num_vertices,
            config.clone(),
        )
        .unwrap();
        // Preload goes through sessions so it lands in the WAL.
        let s = server.session();
        for &(a, b, w) in &stream.preload {
            assert!(s.ins_edge(Edge::new(a, b, w)).outcome.is_ok());
        }
        for u in &stream.updates[..take] {
            let _ = match *u {
                Update::InsEdge(e) => s.ins_edge(e),
                Update::DelEdge(e) => s.del_edge(e),
                _ => unreachable!(),
            };
        }
        reference_values = server.engine().values_snapshot(0, data.num_vertices);
        server.shutdown(); // graceful: final group commit flushed
    }

    let recovered: Server = Server::start(
        vec![Arc::new(Bfs::new(data.root)) as DynAlgorithm],
        data.num_vertices,
        config,
    )
    .unwrap();
    assert_eq!(
        recovered.engine().values_snapshot(0, data.num_vertices),
        reference_values
    );
    recovered.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// Starvation avoidance (§4/§5): a session flooding safe updates must
/// not starve another session's unsafe updates — the scheduler's
/// waiting-time heuristic bounds how long an unsafe update waits.
#[test]
fn unsafe_updates_are_not_starved_by_safe_floods() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let server: Arc<Server> = Arc::new(
        Server::start(
            vec![Arc::new(Bfs::new(0)) as DynAlgorithm],
            1 << 12,
            ServerConfig::default(),
        )
        .unwrap(),
    );
    // A chain so that extensions at the end are unsafe.
    let chain: Vec<(u64, u64, u64)> = (0..32).map(|i| (i, i + 1, 0)).collect();
    server.load_edges(&chain);

    let stop = Arc::new(AtomicBool::new(false));
    let mut flooders = Vec::new();
    for t in 0..3u64 {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        flooders.push(std::thread::spawn(move || {
            let session = server.session();
            // Back-edges to the root are always safe.
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let e = Edge::new(40 + (i + t * 1000) % 500, 0, 0);
                let _ = session.ins_edge(e);
                let _ = session.del_edge(e);
                i += 1;
            }
        }));
    }
    // Meanwhile: unsafe chain extensions must all complete promptly.
    let session = server.session();
    let mut worst = std::time::Duration::ZERO;
    for i in 0..50u64 {
        let t = std::time::Instant::now();
        let r = session.ins_edge(Edge::new(32 + i, 33 + i, 0));
        assert!(r.outcome.is_ok());
        worst = worst.max(t.elapsed());
    }
    stop.store(true, Ordering::Relaxed);
    for f in flooders {
        f.join().unwrap();
    }
    assert!(
        worst < std::time::Duration::from_secs(2),
        "unsafe update starved: worst latency {worst:?}"
    );
    assert_eq!(server.engine().value(0, 82), 82, "chain fully extended");
    let server = Arc::try_unwrap(server).ok().unwrap();
    server.shutdown();
}

/// History GC must never reclaim versions a session still holds.
#[test]
fn gc_respects_unreleased_sessions() {
    let mut config = ServerConfig::default();
    config.engine.threads = 2;
    config.gc_interval = Duration::from_millis(1);
    let srv: Server =
        Server::start(vec![Arc::new(Bfs::new(0)) as DynAlgorithm], 64, config).unwrap();
    srv.load_edges(&[(0, 1, 0)]);
    let holder = srv.session(); // never releases: watermark stays 0
    let worker = srv.session();
    let r1 = worker.ins_edge(Edge::new(1, 2, 0));
    worker.release_history(u64::MAX); // worker needs nothing
    for _ in 0..50 {
        let _ = worker.ins_edge(Edge::new(2, 0, 0));
        let _ = worker.del_edge(Edge::new(2, 0, 0));
        std::thread::sleep(Duration::from_millis(1));
    }
    // The holder session still pins version r1.
    assert_eq!(holder.get_value(0, r1.version, 2).unwrap(), 2);
    srv.shutdown();
}

/// Unsafe-transaction atomicity: a failing operation mid-transaction on
/// the *unsafe* path must undo already-applied result changes.
#[test]
fn unsafe_txn_rollback_restores_results() {
    let srv: Server = Server::start(
        vec![Arc::new(Bfs::new(0)) as DynAlgorithm],
        64,
        ServerConfig::default(),
    )
    .unwrap();
    srv.load_edges(&[(0, 1, 0)]);
    let s = srv.session();
    let before: Vec<u64> = (0..8).map(|v| srv.engine().value(0, v)).collect();
    // First op is unsafe (extends the BFS tree); second op fails.
    let r = s.txn_updates(vec![
        Update::InsEdge(Edge::new(1, 2, 0)),
        Update::DelEdge(Edge::new(7, 7, 7)),
    ]);
    assert!(r.outcome.is_err());
    let after: Vec<u64> = (0..8).map(|v| srv.engine().value(0, v)).collect();
    assert_eq!(before, after, "results must be restored after rollback");
    assert_eq!(srv.engine().num_edges(), 1, "structure restored too");
    srv.shutdown();
}
