//! Cross-crate end-to-end tests: generated workloads stream through the
//! full engine and all baseline engines, and every engine must agree
//! with the reference oracle at every checkpoint.

use risgraph::algorithms::{Bfs, Sssp, Sswp, Wcc};
use risgraph::baselines::{Differential, KickStarter};
use risgraph::prelude::*;
use risgraph::workloads::datasets::by_abbr;
use risgraph::workloads::StreamConfig;
use risgraph_algorithms::Monotonic;
use risgraph_testkit::oracle;

fn run_dataset_stream<A: Monotonic<Value = u64> + Copy>(alg: A, abbr: &str, weighted: bool) {
    let spec = by_abbr(abbr).unwrap();
    let data = spec.generate(8, if weighted { 50 } else { 0 }); // 256 vertices
    let stream = StreamConfig {
        timestamped: spec.temporal,
        ..StreamConfig::default()
    }
    .build(&data.edges);

    let engine: Engine = Engine::with_algorithm(alg, data.num_vertices);
    engine.load_edges(&stream.preload);
    let mut ks = KickStarter::new(alg, data.num_vertices);
    ks.load(&stream.preload);
    let mut dd = Differential::new(alg, data.num_vertices);
    dd.load(&stream.preload);

    let mut live = stream.preload.clone();
    let take = stream.updates.len().min(600);
    for (i, u) in stream.updates[..take].iter().enumerate() {
        engine.apply(u).unwrap();
        ks.apply_batch(std::slice::from_ref(u));
        dd.apply_batch(std::slice::from_ref(u));
        oracle::apply_update(&mut live, u);
        if i % 150 == 149 || i + 1 == take {
            let want = oracle::oracle_values(&alg, data.num_vertices, &live);
            oracle::assert_values_match(&engine, 0, &want, &format!("{abbr} at update {i}"));
            assert_eq!(ks.values(), &want[..], "kickstarter diverged on {abbr}@{i}");
            assert_eq!(
                dd.values(),
                &want[..],
                "differential diverged on {abbr}@{i}"
            );
        }
    }
}

#[test]
fn bfs_on_temporal_dataset() {
    run_dataset_stream(Bfs::new(1), "PH", false);
}

#[test]
fn sssp_on_social_dataset() {
    run_dataset_stream(Sssp::new(0), "WK", true);
}

#[test]
fn sswp_on_web_dataset() {
    run_dataset_stream(Sswp::new(0), "UK", true);
}

#[test]
fn wcc_on_twitter_dataset() {
    run_dataset_stream(Wcc::new(), "TT", false);
}

#[test]
fn bfs_on_road_network() {
    run_dataset_stream(Bfs::new(0), "RD", false);
}

#[test]
fn sssp_on_road_network() {
    run_dataset_stream(Sssp::new(0), "RD", true);
}

/// The recompute baseline agrees with the engine on a static snapshot.
#[test]
fn recompute_agrees_with_engine() {
    let spec = by_abbr("FC").unwrap();
    let data = spec.generate(9, 0);
    let engine: Engine = Engine::with_algorithm(Bfs::new(data.root), data.num_vertices);
    engine.load_edges(&data.edges);
    let csr =
        risgraph::storage::csr::Csr::from_edges(data.num_vertices, data.edges.iter().copied());
    let dense = risgraph::baselines::recompute::recompute(&Bfs::new(data.root), &csr);
    for v in 0..data.num_vertices as u64 {
        assert_eq!(engine.value(0, v), dense[v as usize], "vertex {v}");
    }
}

/// Dependency-tree invariant after a long run: every non-root value is
/// certified by its parent edge, which must exist in the graph.
#[test]
fn dependency_tree_certifies_results() {
    let spec = by_abbr("WK").unwrap();
    let data = spec.generate(8, 20);
    let stream = StreamConfig::default().build(&data.edges);
    let alg = Sssp::new(0);
    let engine: Engine = Engine::with_algorithm(alg, data.num_vertices);
    engine.load_edges(&stream.preload);
    for u in stream.updates.iter().take(500) {
        engine.apply(u).unwrap();
    }
    for v in 0..data.num_vertices as u64 {
        if let Some(pe) = engine.parent(0, v) {
            engine.with_store(|s| {
                assert!(s.contains_edge(pe), "parent edge {pe:?} missing from graph");
            });
            assert_eq!(
                engine.value(0, v),
                alg.gen_next(pe, engine.value(0, pe.src)),
                "vertex {v} not certified by its parent"
            );
        }
    }
}

/// Maintaining several algorithms in one engine must produce exactly
/// the same values as maintaining each alone (conjunctive classification
/// may change *how* updates execute, never *what* they compute).
#[test]
fn multi_algorithm_equals_single_algorithm() {
    use std::sync::Arc as StdArc;
    let spec = by_abbr("WK").unwrap();
    let data = spec.generate(8, 50);
    let stream = StreamConfig::default().build(&data.edges);

    let multi: Engine = risgraph::core::engine::Engine::new(
        vec![
            StdArc::new(Bfs::new(data.root)) as risgraph::core::DynAlgorithm,
            StdArc::new(Sssp::new(data.root)),
            StdArc::new(Wcc::new()),
        ],
        data.num_vertices,
        Default::default(),
    );
    let single_bfs: Engine = Engine::with_algorithm(Bfs::new(data.root), data.num_vertices);
    let single_sssp: Engine = Engine::with_algorithm(Sssp::new(data.root), data.num_vertices);
    let single_wcc: Engine = Engine::with_algorithm(Wcc::new(), data.num_vertices);

    for e in [&multi, &single_bfs, &single_sssp, &single_wcc] {
        e.load_edges(&stream.preload);
    }
    for u in stream.updates.iter().take(500) {
        multi.apply(u).unwrap();
        single_bfs.apply(u).unwrap();
        single_sssp.apply(u).unwrap();
        single_wcc.apply(u).unwrap();
    }
    for v in 0..data.num_vertices as u64 {
        assert_eq!(multi.value(0, v), single_bfs.value(0, v), "BFS vertex {v}");
        assert_eq!(
            multi.value(1, v),
            single_sssp.value(0, v),
            "SSSP vertex {v}"
        );
        assert_eq!(multi.value(2, v), single_wcc.value(0, v), "WCC vertex {v}");
    }
}

/// Streams with interleaved vertex lifecycle operations run cleanly
/// through the engine (vertex ids recycle, edge results unaffected).
#[test]
fn vertex_op_streams_are_harmless() {
    let spec = by_abbr("PH").unwrap();
    let data = spec.generate(8, 0);
    let stream = StreamConfig::default().build(&data.edges);
    let mixed = risgraph::workloads::stream::with_vertex_ops(&stream, 5, 1 << 15);

    let plain: Engine = Engine::with_algorithm(Bfs::new(data.root), data.num_vertices);
    plain.load_edges(&stream.preload);
    let with_ops: Engine = Engine::with_algorithm(Bfs::new(data.root), data.num_vertices);
    with_ops.load_edges(&stream.preload);

    for u in stream.updates.iter().take(400) {
        plain.apply(u).unwrap();
    }
    let mut applied = 0;
    for u in &mixed {
        with_ops.apply(u).unwrap();
        if matches!(u, Update::InsEdge(_) | Update::DelEdge(_)) {
            applied += 1;
            if applied == 400 {
                break;
            }
        }
    }
    for v in 0..data.num_vertices as u64 {
        assert_eq!(plain.value(0, v), with_ops.value(0, v), "vertex {v}");
    }
}
