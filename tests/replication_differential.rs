//! The leader ≡ follower differential suite.
//!
//! A [`ReplicaServer`] subscribed to a leader's replication feed must
//! converge to *exactly* the leader's observable state: the same store
//! fingerprint (count-annotated adjacency, byte-for-byte semantics),
//! the same total version count, and the same `get_value` /
//! `get_parent` / `get_modified_vertices` answer at **every version any
//! session observed** — the paper's Table 1 read surface, served from a
//! replica at its applied watermark. Checked on IA_Hash and the
//! mmap-backed OOC store, at `shards = 1` and `shards = 4`, with the
//! follower both attached from the start (live tail) and attached late
//! (pure catch-up), and — the archetype's point — through a
//! fault-injecting proxy that drops, delays, duplicates, corrupts and
//! truncates frames and kills the connection mid-stream
//! ([`risgraph_testkit::faults`]): the follower must reconnect,
//! resubscribe at its watermark, skip duplicates, and still converge
//! to the identical state.
//!
//! Determinism protocol as in the other differential suites: disjoint
//! per-session vertex regions and one engine worker thread on both
//! sides, so dependency-tree parents are comparable.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use risgraph::algorithms::Wcc;
use risgraph::core::replication::Replica;
use risgraph::prelude::*;
use risgraph_net::{FollowerConfig, NetConfig, NetServer, ReplicaServer};
use risgraph_testkit::{
    disjoint_session_streams, drive_net_sessions, oracle_values, server_config, store_fingerprint,
    FaultPlan, FaultyProxy, RegionStreamConfig, SessionTrace,
};

fn wcc_algorithms() -> Vec<DynAlgorithm> {
    vec![Arc::new(Wcc::new()) as DynAlgorithm]
}

fn streams_for(seed: u64) -> (Vec<Vec<Update>>, usize) {
    let cfg = RegionStreamConfig {
        sessions: 4,
        region: 16,
        steps: 80,
        seed,
        ..RegionStreamConfig::default()
    };
    (disjoint_session_streams(&cfg), cfg.capacity())
}

/// The vertices a stream mentions, sorted.
fn touched_vertices(stream: &[Update]) -> Vec<u64> {
    let mut vs: Vec<u64> = stream
        .iter()
        .flat_map(|u| match u {
            Update::InsEdge(e) | Update::DelEdge(e) => vec![e.src, e.dst],
            Update::InsVertex(v) | Update::DelVertex(v) => vec![*v],
        })
        .collect();
    vs.sort_unstable();
    vs.dedup();
    vs
}

/// Wait until the replica's applied version reaches `version` with
/// zero lag.
fn await_convergence(label: &str, replica: &ReplicaServer, version: u64, secs: u64) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while replica.replica().current_version() < version || replica.lag() > 0 {
        assert!(
            Instant::now() < deadline,
            "{label}: replica stuck at version {} (lag {}, {} records, {} reconnects, \
             {} stream errors), leader at {version}",
            replica.replica().current_version(),
            replica.lag(),
            replica.stats().records_applied.load(Ordering::Relaxed),
            replica.stats().reconnects.load(Ordering::Relaxed),
            replica.stats().stream_errors.load(Ordering::Relaxed),
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Every observable the replica serves must match the leader: final
/// fingerprints and snapshots, and the full versioned query surface at
/// every version any session observed — checked against the leader
/// *and* the session-local oracle.
fn assert_replica_matches(
    label: &str,
    leader: &Server,
    replica: &Replica,
    traces: &[SessionTrace],
    streams: &[Vec<Update>],
    n: usize,
) {
    assert_eq!(
        replica.current_version(),
        leader.current_version(),
        "{label}: total versions"
    );
    assert_eq!(
        store_fingerprint(replica.engine(), n as u64),
        store_fingerprint(leader.engine(), n as u64),
        "{label}: store fingerprints"
    );
    assert_eq!(
        replica.engine().values_snapshot(0, n),
        leader.engine().values_snapshot(0, n),
        "{label}: final value snapshots"
    );

    let query = leader.session();
    for (i, stream) in streams.iter().enumerate() {
        let touched = touched_vertices(stream);
        let mut live = Vec::new();
        for (t, (step, u)) in traces[i].steps.iter().zip(stream).enumerate() {
            if !step.ok {
                continue;
            }
            risgraph_testkit::apply_update(&mut live, u);
            let ctx = format!("{label}: session {i} step {t} version {}", step.version);
            let want = oracle_values(&Wcc::new(), n, &live);
            for &v in &touched {
                let lv = query.get_value(0, step.version, v).unwrap();
                let rv = replica.get_value(0, step.version, v).unwrap();
                assert_eq!(rv, lv, "{ctx}: value of {v}");
                assert_eq!(rv, want[v as usize], "{ctx}: oracle value of {v}");
                assert_eq!(
                    replica.get_parent(0, step.version, v).unwrap(),
                    query.get_parent(0, step.version, v).unwrap(),
                    "{ctx}: parent of {v}"
                );
            }
            let mut lm = query.get_modified_vertices(0, step.version).unwrap();
            let mut rm = replica.get_modified_vertices(0, step.version).unwrap();
            lm.sort_unstable();
            rm.sort_unstable();
            assert_eq!(rm, lm, "{ctx}: modified sets");
        }
    }
}

/// Run one leader (behind TCP) and one follower (optionally through a
/// fault proxy, optionally attached only after the whole load), drive
/// the streams, and assert full observable equivalence.
fn replication_differential(
    label: &str,
    (leader_backend, shards): (BackendKind, usize),
    follower_backend: BackendKind,
    seed: u64,
    plan: Option<FaultPlan>,
    late_attach: bool,
) {
    let (streams, capacity) = streams_for(seed);
    let mut leader_cfg = server_config(leader_backend, shards);
    leader_cfg.max_followers = 2;
    let net = NetServer::start(
        wcc_algorithms(),
        capacity,
        leader_cfg,
        NetConfig {
            heartbeat_interval: Duration::from_millis(20),
            ..NetConfig::default()
        },
    )
    .expect("leader");

    let proxy = plan.map(|p| FaultyProxy::start(net.local_addr(), p));
    let follow_addr = proxy
        .as_ref()
        .map(|p| p.addr())
        .unwrap_or_else(|| net.local_addr());
    let start_follower = || {
        ReplicaServer::start(
            wcc_algorithms(),
            capacity,
            server_config(follower_backend.clone(), 1),
            FollowerConfig::to_leader(follow_addr.to_string()),
        )
        .expect("follower")
    };
    let follower = (!late_attach).then(start_follower);

    let traces = drive_net_sessions(net.local_addr(), &streams);
    // Late attach: the whole load is already in the feed; the follower
    // must catch up from record 0.
    let follower = follower.unwrap_or_else(start_follower);

    let leader_version = net.server().current_version();
    await_convergence(label, &follower, leader_version, 120);
    assert_replica_matches(
        label,
        net.server(),
        follower.replica(),
        &traces,
        &streams,
        capacity,
    );

    let stats = follower.stats();
    if let Some(proxy) = &proxy {
        // The plan must actually have fired, and the follower must have
        // survived it by reconnecting and deduplicating.
        let faults = proxy.stats().faults.load(Ordering::Relaxed);
        assert!(faults > 0, "{label}: the fault plan never fired");
        assert!(
            stats.reconnects.load(Ordering::Relaxed) > 0,
            "{label}: faults without a single reconnect"
        );
    } else {
        assert_eq!(
            stats.stream_errors.load(Ordering::Relaxed),
            0,
            "{label}: protocol errors on a clean stream"
        );
        assert_eq!(stats.rejections.load(Ordering::Relaxed), 0, "{label}");
    }

    follower.shutdown();
    if let Some(proxy) = proxy {
        proxy.stop();
    }
    net.shutdown();
}

#[test]
fn follower_matches_leader_on_ia_hash() {
    for (shards, seed) in [(1usize, 0xF1u64), (4, 0xF2)] {
        replication_differential(
            &format!("replication IA_Hash shards {shards}"),
            (BackendKind::IaHash, shards),
            BackendKind::IaHash,
            seed,
            None,
            false,
        );
    }
}

#[test]
fn follower_matches_leader_on_ooc_mmap() {
    for (shards, seed) in [(1usize, 0xF3u64), (4, 0xF4)] {
        let (leader_backend, leader_path) =
            risgraph_testkit::ooc_mmap_backend(&format!("repl-{shards}-leader"));
        let (follower_backend, follower_path) =
            risgraph_testkit::ooc_mmap_backend(&format!("repl-{shards}-follower"));
        replication_differential(
            &format!("replication OOC_MMAP shards {shards}"),
            (leader_backend, shards),
            follower_backend,
            seed,
            None,
            false,
        );
        risgraph_testkit::remove_ooc_files(&leader_path);
        risgraph_testkit::remove_ooc_files(&follower_path);
    }
}

/// A replica need not share the leader's backend: an mmap-backed OOC
/// follower of an in-memory leader converges to the same fingerprint.
#[test]
fn cross_backend_follower_matches_leader() {
    let (follower_backend, follower_path) = risgraph_testkit::ooc_mmap_backend("repl-cross");
    replication_differential(
        "replication IA_Hash s4 leader, OOC_MMAP follower",
        (BackendKind::IaHash, 4),
        follower_backend,
        0xF5,
        None,
        false,
    );
    risgraph_testkit::remove_ooc_files(&follower_path);
}

/// Pure catch-up: the follower attaches only after the entire load has
/// been applied and must replay the feed from record 0.
#[test]
fn late_follower_catches_up_from_record_zero() {
    replication_differential(
        "replication late attach",
        (BackendKind::IaHash, 4),
        BackendKind::IaHash,
        0xF6,
        None,
        true,
    );
}

#[test]
fn follower_converges_under_frame_faults_ia_hash() {
    for (shards, seed) in [(1usize, 0xFA11u64), (4, 0xFA12)] {
        replication_differential(
            &format!("faulted replication IA_Hash shards {shards}"),
            (BackendKind::IaHash, shards),
            BackendKind::IaHash,
            seed,
            Some(FaultPlan::hostile(60)),
            false,
        );
    }
}

#[test]
fn follower_converges_under_frame_faults_ooc_mmap() {
    for (shards, seed) in [(1usize, 0xFA13u64), (4, 0xFA14)] {
        let (leader_backend, leader_path) =
            risgraph_testkit::ooc_mmap_backend(&format!("repl-fault-{shards}-leader"));
        let (follower_backend, follower_path) =
            risgraph_testkit::ooc_mmap_backend(&format!("repl-fault-{shards}-follower"));
        replication_differential(
            &format!("faulted replication OOC_MMAP shards {shards}"),
            (leader_backend, shards),
            follower_backend,
            seed,
            Some(FaultPlan::hostile(60)),
            false,
        );
        risgraph_testkit::remove_ooc_files(&leader_path);
        risgraph_testkit::remove_ooc_files(&follower_path);
    }
}

/// Kill-and-reconnect mid-epoch, isolated: only the kill fault, firing
/// frequently, so every few records the follower loses the connection
/// and must resubscribe at its watermark.
#[test]
fn follower_survives_repeated_connection_kills() {
    replication_differential(
        "kill-and-reconnect replication",
        (BackendKind::IaHash, 4),
        BackendKind::IaHash,
        0xFA15,
        Some(FaultPlan {
            kill_after_frames: 7,
            max_faults: 50,
            ..FaultPlan::default()
        }),
        false,
    );
}
