//! Cold restart of the mmap-backed OOC store: after a graceful server
//! shutdown (which flushes the block file *and* the chain-directory
//! sidecar), `MmapOocStore::open` must rebuild the identical adjacency
//! state from `<path>` + `<path>.dir` alone — **no WAL replay** — and
//! keep serving. This is the ROADMAP "chain-directory recovery"
//! follow-on, closed.

use std::sync::Arc;

use risgraph::algorithms::Wcc;
use risgraph::prelude::*;
use risgraph::storage::{DynamicGraph, MmapOocStore};
use risgraph_testkit::{
    ooc_mmap_backend, random_stream, raw_store_fingerprint, remove_ooc_files, server_config,
    store_fingerprint,
};

#[test]
fn reopened_store_fingerprint_matches_the_shutdown_state() {
    let (backend, path) = ooc_mmap_backend("cold-restart-server");
    let n = 48u64;
    let (want, want_vertices) = {
        let server = Arc::new(
            Server::start(
                vec![Arc::new(Wcc::new()) as DynAlgorithm],
                n as usize,
                server_config(backend, 2),
            )
            .unwrap(),
        );
        let session = server.session();
        for u in random_stream(n, 400, 0xC01D, 3) {
            let reply = session.submit_update(&u);
            assert!(reply.outcome.is_ok(), "{u:?}: {:?}", reply.outcome);
        }
        let want = store_fingerprint(server.engine(), n);
        let vertices = server.engine().num_vertices();
        drop(session);
        // Graceful shutdown flushes the mapping and writes the sidecar.
        Arc::try_unwrap(server).ok().unwrap().shutdown();
        (want, vertices)
    };
    assert!(want.0 > 0, "stream left no live edges to recover");

    // Reopen from the two files alone and compare everything the store
    // persists: adjacency (counts included), edge totals, vertex
    // liveness, degrees.
    let reopened = MmapOocStore::open(&path).unwrap();
    assert_eq!(
        raw_store_fingerprint(&reopened, n),
        want,
        "reopened adjacency state differs from the pre-shutdown store"
    );
    assert_eq!(reopened.num_vertices(), want_vertices);
    for v in 0..n {
        let mut expected_out = 0usize;
        reopened.scan_out(v, &mut |_, _, _| expected_out += 1);
        assert_eq!(reopened.out_degree(v), expected_out, "degree of {v}");
    }
    // The reopened store is writable: new edges land in fresh blocks
    // without clobbering recovered chains.
    reopened.insert_edge(Edge::new(0, 1, 77)).unwrap();
    assert_eq!(DynamicGraph::edge_count(&reopened, Edge::new(0, 1, 77)), 1);
    drop(reopened);
    remove_ooc_files(&path);
}
