//! Property-based tests over the core invariants:
//!
//! 1. the incremental engine equals the oracle after arbitrary update
//!    sequences (all algorithms);
//! 2. updates classified *safe* never change any result value;
//! 3. duplicate-edge bookkeeping in the store matches a multiset model;
//! 4. insert(e) then delete(e) around arbitrary noise leaves results
//!    where the noise alone would have;
//! 5. the same update stream driven through the engine over different
//!    `DynamicGraph` backends (IA_Hash, IO_Hash, OOC, OOC_MMAP) yields identical
//!    algorithm values *and* identical store contents.

use proptest::prelude::*;
use risgraph::algorithms::{reference, Bfs, Sssp, Sswp, Wcc};
use risgraph::prelude::*;
use risgraph::storage::{AnyStore, BackendKind, StoreConfig};
use risgraph_algorithms::Monotonic;
use risgraph_testkit::{oracle, resolve_step, store_fingerprint, Step};

const N: u64 = 24;

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..N, 0..N, 1..5u64).prop_map(|(s, d, w)| Step::Ins(s, d, w)),
        (0..10_000usize).prop_map(Step::Del),
    ]
}

fn apply_steps<A: Monotonic<Value = u64> + Copy>(
    alg: A,
    initial: &[(u64, u64, u64)],
    steps: &[Step],
) -> (Engine, Vec<(u64, u64, u64)>, u64) {
    let engine: Engine = Engine::with_algorithm(alg, N as usize);
    engine.load_edges(initial);
    let mut live = initial.to_vec();
    let mut safe_changed = 0u64;
    for step in steps {
        let Some(u) = resolve_step(&live, *step) else {
            continue;
        };
        let safety = engine.classify(&u);
        let before = if safety == Safety::Safe {
            Some(engine.values_snapshot(0, N as usize))
        } else {
            None
        };
        let (_, _changes) = engine.apply(&u).unwrap();
        if let Some(before) = before {
            if before != engine.values_snapshot(0, N as usize) {
                safe_changed += 1;
            }
        }
        oracle::apply_update(&mut live, &u);
    }
    (engine, live, safe_changed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_oracle_bfs(
        initial in proptest::collection::vec((0..N, 0..N, 1..5u64), 0..40),
        steps in proptest::collection::vec(step_strategy(), 0..60),
    ) {
        let alg = Bfs::new(0);
        let (engine, live, safe_changed) = apply_steps(alg, &initial, &steps);
        prop_assert_eq!(safe_changed, 0, "safe updates changed results");
        let want = reference::compute(&alg, N as usize, &live);
        for v in 0..N {
            prop_assert_eq!(engine.value(0, v), want[v as usize], "vertex {}", v);
        }
    }

    #[test]
    fn engine_matches_oracle_sssp(
        initial in proptest::collection::vec((0..N, 0..N, 1..5u64), 0..40),
        steps in proptest::collection::vec(step_strategy(), 0..60),
    ) {
        let alg = Sssp::new(1);
        let (engine, live, safe_changed) = apply_steps(alg, &initial, &steps);
        prop_assert_eq!(safe_changed, 0);
        let want = reference::compute(&alg, N as usize, &live);
        for v in 0..N {
            prop_assert_eq!(engine.value(0, v), want[v as usize], "vertex {}", v);
        }
    }

    #[test]
    fn engine_matches_oracle_sswp(
        initial in proptest::collection::vec((0..N, 0..N, 1..5u64), 0..40),
        steps in proptest::collection::vec(step_strategy(), 0..60),
    ) {
        let alg = Sswp::new(0);
        let (engine, live, safe_changed) = apply_steps(alg, &initial, &steps);
        prop_assert_eq!(safe_changed, 0);
        let want = reference::compute(&alg, N as usize, &live);
        for v in 0..N {
            prop_assert_eq!(engine.value(0, v), want[v as usize], "vertex {}", v);
        }
    }

    #[test]
    fn engine_matches_oracle_wcc(
        initial in proptest::collection::vec((0..N, 0..N, 1..5u64), 0..40),
        steps in proptest::collection::vec(step_strategy(), 0..60),
    ) {
        let alg = Wcc::new();
        let (engine, live, safe_changed) = apply_steps(alg, &initial, &steps);
        prop_assert_eq!(safe_changed, 0);
        let want = reference::compute(&alg, N as usize, &live);
        for v in 0..N {
            prop_assert_eq!(engine.value(0, v), want[v as usize], "vertex {}", v);
        }
    }

    #[test]
    fn store_multiset_semantics(
        ops in proptest::collection::vec((0..8u64, 0..8u64, 0..3u64, proptest::bool::ANY), 0..200),
    ) {
        let store: DefaultStore = GraphStore::with_capacity(8);
        let mut model: std::collections::HashMap<(u64, u64, u64), u32> =
            std::collections::HashMap::new();
        for (s, d, w, is_insert) in ops {
            let e = Edge::new(s, d, w);
            if is_insert {
                store.insert_edge(e).unwrap();
                *model.entry((s, d, w)).or_insert(0) += 1;
            } else {
                let had = model.get(&(s, d, w)).copied().unwrap_or(0);
                let result = store.delete_edge(e);
                if had > 0 {
                    prop_assert!(result.is_ok());
                    if had == 1 {
                        model.remove(&(s, d, w));
                    } else {
                        model.insert((s, d, w), had - 1);
                    }
                } else {
                    prop_assert!(result.is_err());
                }
            }
        }
        for (&(s, d, w), &count) in &model {
            prop_assert_eq!(store.edge_count(Edge::new(s, d, w)), count);
        }
        let total: u32 = model.values().sum();
        prop_assert_eq!(store.num_edges(), total as u64);
    }

    /// Invariant 5: backend-independence. One engine API, four storage
    /// layouts, byte-identical results — the multi-backend claim of
    /// §6.3 as a testable property.
    #[test]
    fn cross_backend_differential(
        initial in proptest::collection::vec((0..N, 0..N, 1..5u64), 0..30),
        steps in proptest::collection::vec(step_strategy(), 0..50),
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CASE: AtomicU64 = AtomicU64::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let ooc_path = std::env::temp_dir().join(format!(
            "risgraph-xbackend-{}-{case}.blocks",
            std::process::id()
        ));
        let mmap_path = std::env::temp_dir().join(format!(
            "risgraph-xbackend-mmap-{}-{case}.blocks",
            std::process::id()
        ));

        let kinds = [
            BackendKind::IaHash,
            BackendKind::IoHash,
            BackendKind::Ooc {
                path: Some(ooc_path.clone()),
                cache_blocks: 4, // tiny: force evictions mid-stream
            },
            BackendKind::OocMmap {
                path: Some(mmap_path.clone()),
            },
        ];
        let alg = Sssp::new(0);
        let engines: Vec<Engine<AnyStore>> = kinds
            .iter()
            .map(|kind| {
                let store =
                    AnyStore::open(kind, N as usize, StoreConfig::default()).unwrap();
                Engine::from_store(
                    store,
                    vec![std::sync::Arc::new(alg) as DynAlgorithm],
                    Default::default(),
                )
            })
            .collect();
        for e in &engines {
            e.load_edges(&initial);
        }

        let mut live = initial.clone();
        for step in &steps {
            let Some(u) = resolve_step(&live, *step) else {
                continue;
            };
            for e in &engines {
                e.apply(&u).unwrap();
            }
            oracle::apply_update(&mut live, &u);
        }

        // Identical algorithm results on every backend…
        let reference = engines[0].values_snapshot(0, N as usize);
        for (engine, kind) in engines.iter().zip(&kinds).skip(1) {
            prop_assert_eq!(
                &engine.values_snapshot(0, N as usize),
                &reference,
                "values diverged on {}",
                kind.label()
            );
        }
        // …and identical store contents (count-annotated adjacency).
        let want = store_fingerprint(&engines[0], N);
        for (engine, kind) in engines.iter().zip(&kinds).skip(1) {
            prop_assert_eq!(
                &store_fingerprint(engine, N),
                &want,
                "contents diverged on {}",
                kind.label()
            );
        }
        drop(engines);
        let _ = std::fs::remove_file(&ooc_path);
        risgraph_testkit::remove_ooc_files(&mmap_path);
    }

    #[test]
    fn insert_then_delete_is_identity_on_results(
        initial in proptest::collection::vec((0..N, 0..N, 1..5u64), 5..40),
        extra in (0..N, 0..N, 1..5u64),
    ) {
        let alg = Sssp::new(0);
        let engine: Engine = Engine::with_algorithm(alg, N as usize);
        engine.load_edges(&initial);
        let before = engine.values_snapshot(0, N as usize);
        let e = Edge::new(extra.0, extra.1, extra.2);
        engine.apply(&Update::InsEdge(e)).unwrap();
        engine.apply(&Update::DelEdge(e)).unwrap();
        let after = engine.values_snapshot(0, N as usize);
        prop_assert_eq!(before, after);
    }
}
