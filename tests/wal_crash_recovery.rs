//! Crash recovery through the epoch-merged WAL (§5), multi-shard path
//! included.
//!
//! [`Server::crash`] simulates power loss: the coordinator exits
//! without flushing the buffered log tail, so the on-disk WAL ends in a
//! clean prefix of merged epoch records, possibly followed by a torn
//! one. Recovery must restore exactly the state those replayable
//! records describe. The oracle is computed *independently* of the
//! engine's replay machinery: sessions use disjoint vertex regions, so
//! the live edge multiset reconstructed from the replayed records has
//! an order-independent meaning and a from-scratch recomputation over
//! it is ground truth.

use std::sync::Arc;

use risgraph::algorithms::Wcc;
use risgraph::core::wal::{replay, segment_path};
use risgraph::prelude::*;
use risgraph_testkit::{
    disjoint_session_streams, drive_sessions, oracle, remove_wal, server_config, store_fingerprint,
    temp_path, RegionStreamConfig,
};

/// Run a 4-shard WAL-logged server over disjoint-session streams, crash
/// it mid-buffer, and return `(wal_path, capacity, applied_count)`.
fn run_and_crash(tag: &str, cfg: &RegionStreamConfig) -> (std::path::PathBuf, usize, u64) {
    run_and_crash_on(tag, cfg, risgraph::storage::BackendKind::IaHash)
}

/// [`run_and_crash`] on an explicit storage backend.
fn run_and_crash_on(
    tag: &str,
    cfg: &RegionStreamConfig,
    backend: risgraph::storage::BackendKind,
) -> (std::path::PathBuf, usize, u64) {
    let path = temp_path(&format!("{tag}.wal"));
    let mut config = server_config(backend, 4);
    config.wal_path = Some(path.clone());
    // Group-commit pacing far beyond the test's runtime: everything
    // after the last buffer-sized flush stays in the writer's buffer
    // and dies with the crash.
    config.wal_sync_interval = std::time::Duration::from_secs(3600);
    // These tests assert the *un-checkpointed* prefix semantics (all
    // records in segment 0, replay length vs applied count), so pin
    // rotation and checkpointing off regardless of the
    // RISGRAPH_MAX_WAL_SEGMENT environment the CI matrix exports. The
    // checkpointed counterparts live in `checkpoint_mid_stream_crash_matrix`
    // and tests/wal_lifecycle.rs.
    config.max_wal_segment_bytes = 0;
    config.checkpoint_interval = None;
    let server = Arc::new(
        Server::start(
            vec![Arc::new(Wcc::new()) as DynAlgorithm],
            cfg.capacity(),
            config,
        )
        .unwrap(),
    );
    let streams = disjoint_session_streams(cfg);
    let traces = drive_sessions(&server, &streams);
    let applied: u64 = traces
        .iter()
        .flat_map(|t| &t.steps)
        .filter(|s| s.ok)
        .count() as u64;
    assert_eq!(
        applied,
        (cfg.sessions * cfg.steps) as u64,
        "disjoint-region updates must all succeed"
    );
    Arc::try_unwrap(server).ok().unwrap().crash();
    (path, cfg.capacity(), applied)
}

/// Recover a server from `path` and assert it matches the oracle built
/// from the log's own replayable prefix.
fn assert_recovery_matches_oracle(path: &std::path::Path, capacity: usize, ctx: &str) -> usize {
    assert_recovery_matches_oracle_on(path, capacity, ctx, risgraph::storage::BackendKind::IaHash)
}

/// [`assert_recovery_matches_oracle`] recovering onto an explicit
/// storage backend.
fn assert_recovery_matches_oracle_on(
    path: &std::path::Path,
    capacity: usize,
    ctx: &str,
    backend: risgraph::storage::BackendKind,
) -> usize {
    let batches = replay(path).unwrap();
    let replayed: Vec<Update> = batches.into_iter().flatten().collect();
    let mut live: Vec<oracle::LiveEdge> = Vec::new();
    oracle::apply_all(&mut live, &replayed);

    let mut config = server_config(backend, 4);
    config.wal_path = Some(path.to_path_buf());
    let recovered =
        Server::start(vec![Arc::new(Wcc::new()) as DynAlgorithm], capacity, config).unwrap();

    // Values: recovered incremental state == from-scratch recompute of
    // the replayed multiset.
    oracle::assert_engine_matches(recovered.engine(), 0, &Wcc::new(), capacity, &live, ctx);
    // Structure: count-annotated adjacency matches an engine bulk-built
    // from the same multiset.
    let reloaded: Engine = Engine::with_algorithm(Wcc::new(), capacity);
    reloaded.load_edges(&live);
    assert_eq!(
        store_fingerprint(recovered.engine(), capacity as u64),
        store_fingerprint(&reloaded, capacity as u64),
        "{ctx}: store contents after recovery"
    );
    recovered.shutdown();
    replayed.len()
}

#[test]
fn crash_mid_epoch_recovers_replayable_prefix() {
    let cfg = RegionStreamConfig {
        sessions: 4,
        region: 20,
        steps: 300,
        seed: 17,
        ..RegionStreamConfig::default()
    };
    let (path, capacity, applied) = run_and_crash("crash-recovery", &cfg);
    let replayed = assert_recovery_matches_oracle(&path, capacity, "crash recovery");
    // The log holds at most what was applied; with fsync pacing pushed
    // out, the buffered tail was genuinely lost (~8 KiB of records
    // survive only via incidental buffer-full flushes).
    assert!(replayed as u64 <= applied);
    assert!(
        replayed > 0,
        "enough volume must have overflowed the writer's buffer to test replay"
    );
    remove_wal(&path);
}

/// The same power-loss contract with `--store ooc-mmap` on both sides
/// of the crash: a server whose adjacency lives in an mmap'ed block
/// file must recover from the WAL's replayable prefix exactly like the
/// in-memory backends (the block file itself is rebuilt by replay; its
/// durability is the WAL's, not the mapping's).
#[test]
fn crash_mid_epoch_recovers_on_ooc_mmap() {
    let cfg = RegionStreamConfig {
        sessions: 4,
        region: 20,
        steps: 300,
        seed: 19,
        ..RegionStreamConfig::default()
    };
    let (path, capacity, applied) = run_and_crash_on(
        "crash-recovery-mmap",
        &cfg,
        risgraph::storage::BackendKind::OocMmap { path: None },
    );
    let replayed = assert_recovery_matches_oracle_on(
        &path,
        capacity,
        "crash recovery (ooc-mmap)",
        risgraph::storage::BackendKind::OocMmap { path: None },
    );
    assert!(replayed as u64 <= applied);
    assert!(
        replayed > 0,
        "enough volume must have overflowed the writer's buffer to test replay"
    );
    remove_wal(&path);
}

/// The PR 2 "WAL linearization caveat", now closed: same-edge
/// count-races across sessions within one epoch must replay
/// **byte-exactly**. Four sessions (one per shard) burst-insert then
/// burst-delete the *same* edges, so an epoch's log routinely holds
/// cross-session ins/del sequences of one edge whose per-session
/// concatenation is NOT the execution order — replaying that
/// concatenation can hit count 0 early, skip a delete, and recover a
/// different multiplicity than the live store had. With the global
/// application-order stamp (drawn inside the store's per-edge lock and
/// used to sort the merged record), recovery must reproduce the live
/// count-annotated store exactly.
#[test]
fn same_edge_cross_session_races_replay_byte_exactly() {
    for backend in [
        risgraph::storage::BackendKind::IaHash,
        risgraph::storage::BackendKind::OocMmap { path: None },
    ] {
        let label = format!("{backend:?}");
        let path = temp_path("same-edge.wal");
        remove_wal(&path);
        let mut config = server_config(backend, 4);
        config.wal_path = Some(path.clone());
        let n = 8usize;
        let server = Arc::new(
            Server::start(
                vec![Arc::new(Wcc::new()) as DynAlgorithm],
                n,
                config.clone(),
            )
            .unwrap(),
        );
        // Per-epoch the merged record concatenates session groups in
        // session order, so the damning shape is: a *low* session id
        // deleting an edge while a *high* session id inserts it. When
        // the insert executed first but the log lists the delete first,
        // an unstamped replay hits count 0, skips the delete, and
        // resurrects a copy the live store didn't have. Sessions 0–1
        // are pure deleters of the edges sessions 2–3 keep inserting.
        let edges = [Edge::new(1, 2, 0), Edge::new(2, 3, 0)];
        let streams: Vec<Vec<Update>> = (0..4u64)
            .map(|s| {
                (0..240)
                    .map(|round| {
                        let e = edges[(round % 2) as usize];
                        if s < 2 {
                            Update::DelEdge(e)
                        } else {
                            Update::InsEdge(e)
                        }
                    })
                    .collect()
            })
            .collect();
        // Outcomes are allowed to include errors (a delete can find the
        // edge drained by another session) — errored updates are not
        // logged, so they don't participate in the replay contract.
        drive_sessions(&server, &streams);
        let live_fp = store_fingerprint(server.engine(), n as u64);
        let live_vals = server.engine().values_snapshot(0, n);
        // Graceful shutdown: the full log reaches disk.
        Arc::try_unwrap(server).ok().unwrap().shutdown();

        let recovered =
            Server::start(vec![Arc::new(Wcc::new()) as DynAlgorithm], n, config).unwrap();
        assert_eq!(
            store_fingerprint(recovered.engine(), n as u64),
            live_fp,
            "{label}: same-edge cross-session races must replay byte-exactly"
        );
        assert_eq!(
            recovered.engine().values_snapshot(0, n),
            live_vals,
            "{label}: recovered values"
        );
        recovered.shutdown();
        remove_wal(&path);
    }
}

/// Tearing the log deep inside its valid prefix (a crash during the
/// physical write itself) must truncate to the last clean epoch
/// boundary before the tear — and recovery must match the oracle of
/// that shorter prefix.
#[test]
fn torn_record_after_crash_truncates_to_epoch_boundary() {
    let cfg = RegionStreamConfig {
        sessions: 4,
        region: 16,
        steps: 250,
        seed: 23,
        ..RegionStreamConfig::default()
    };
    let (path, capacity, _) = run_and_crash("crash-torn", &cfg);
    let before = replay(&path).unwrap().len();
    assert!(before > 1, "need at least two epoch records to tear one");
    // Cut the segment mid-prefix: whatever record straddles the cut is
    // torn, and everything after it is gone. (The path itself is the
    // manifest; with rotation off all records live in segment 0.)
    let seg = segment_path(&path, 0);
    let data = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &data[..data.len() * 3 / 5]).unwrap();
    let after = replay(&path).unwrap().len();
    assert!(
        after < before,
        "cutting 40% of the log must drop records ({after} vs {before})"
    );
    assert_recovery_matches_oracle(&path, capacity, "torn tail");
    remove_wal(&path);
}

/// The headline data-loss regression: `replay` used to stop at a torn
/// tail without physically truncating the file while the writer
/// reopened in append mode, so records written *after* a
/// crash-recovery landed behind the garbage and were silently lost on
/// the next restart. Recovery now `set_len()`s the torn segment before
/// reopening, so the sequence crash-with-torn-tail → recover → write →
/// recover again must keep the second write — on every backend.
#[test]
fn appends_after_torn_tail_recovery_survive_second_recovery_on_every_backend() {
    use risgraph::storage::BackendKind;
    let backends = [
        BackendKind::IaHash,
        BackendKind::IaBtree,
        BackendKind::IaArt,
        BackendKind::IoHash,
        BackendKind::IoBtree,
        BackendKind::IoArt,
        BackendKind::Ooc {
            path: None,
            cache_blocks: 256,
        },
        BackendKind::OocMmap { path: None },
    ];
    for backend in backends {
        let label = format!("{backend:?}");
        let path = temp_path("torn-append.wal");
        let n = 64usize;
        let mut config = server_config(backend.clone(), 1);
        config.wal_path = Some(path.clone());

        // Build a log, then tear the final record mid-write.
        {
            let server = Server::start(
                vec![Arc::new(Wcc::new()) as DynAlgorithm],
                n,
                config.clone(),
            )
            .unwrap();
            let s = server.session();
            for i in 0..16u64 {
                assert!(
                    s.ins_edge(Edge::new(i, i + 1, 1)).outcome.is_ok(),
                    "{label}"
                );
            }
            drop(s);
            server.shutdown();
        }
        let seg = segment_path(&path, 0);
        let data = std::fs::read(&seg).unwrap();
        assert!(data.len() > 16, "{label}: log too small to tear");
        std::fs::write(&seg, &data[..data.len() - 5]).unwrap();
        let clean_prefix = replay(&path).unwrap().len();

        // First recovery over the torn log, then fresh appends.
        {
            let server = Server::start(
                vec![Arc::new(Wcc::new()) as DynAlgorithm],
                n,
                config.clone(),
            )
            .unwrap();
            let s = server.session();
            for i in 30..40u64 {
                assert!(
                    s.ins_edge(Edge::new(i, i + 1, 7)).outcome.is_ok(),
                    "{label}"
                );
            }
            drop(s);
            // Graceful: the appended records reach disk.
            server.shutdown();
        }

        // Second recovery: the post-recovery appends must replay. With
        // the old append-behind-garbage bug, replay stopped at the torn
        // record and everything after it was lost.
        let replayed: Vec<Update> = replay(&path).unwrap().into_iter().flatten().collect();
        assert!(
            replayed.len() > clean_prefix,
            "{label}: nothing appended after the torn prefix replays"
        );
        for i in 30..40u64 {
            assert!(
                replayed.contains(&Update::InsEdge(Edge::new(i, i + 1, 7))),
                "{label}: record appended after crash-recovery was lost by the next recovery"
            );
        }
        assert_recovery_matches_oracle_on(&path, n, &label, backend);
        remove_wal(&path);
    }
}

/// Checkpoint-mid-stream crash matrix (tentpole coverage): crash the
/// server before any checkpoint, during checkpointed churn, and right
/// after a checkpoint — on IA_Hash and ooc-mmap, at shards 1 and 4.
/// The recovered server must fingerprint-match the no-crash oracle of
/// the log's replayable content, and once a checkpoint exists replay
/// must read only post-checkpoint segments — witnessed by
/// `ServerStats::wal_replayed_records`.
#[test]
fn checkpoint_mid_stream_crash_matrix() {
    use risgraph::core::wal::{read_manifest, read_snapshot};
    use risgraph::storage::BackendKind;

    #[derive(Clone, Copy, Debug)]
    enum Crash {
        /// Checkpointing armed (rotation on) but never triggered.
        Before,
        /// Pressure checkpoints fire repeatedly mid-churn; the crash
        /// lands between two of them with a buffered tail in flight.
        During,
        /// A time-triggered checkpoint covers the whole log just
        /// before the crash: recovery must replay zero records.
        After,
    }

    for backend in [BackendKind::IaHash, BackendKind::OocMmap { path: None }] {
        for shards in [1usize, 4] {
            for scenario in [Crash::Before, Crash::During, Crash::After] {
                let ctx = format!("{backend:?}/shards={shards}/{scenario:?}");
                let cfg = RegionStreamConfig {
                    sessions: 4,
                    region: 12,
                    steps: if matches!(scenario, Crash::During) {
                        600
                    } else {
                        150
                    },
                    seed: 29,
                    ..RegionStreamConfig::default()
                };
                let path = temp_path("ckpt-matrix.wal");
                let mut config = server_config(backend.clone(), shards);
                config.wal_path = Some(path.clone());
                // Tail-loss realism: group commit paced beyond the
                // test, so only rotation/checkpoint syncs persist.
                config.wal_sync_interval = std::time::Duration::from_secs(3600);
                config.max_wal_segment_bytes = match scenario {
                    Crash::Before => 8 << 20, // armed, never reached
                    _ => 2048,                // rotate constantly
                };
                if matches!(scenario, Crash::After) {
                    config.checkpoint_interval = Some(std::time::Duration::from_millis(50));
                }

                let server = Arc::new(
                    Server::start(
                        vec![Arc::new(Wcc::new()) as DynAlgorithm],
                        cfg.capacity(),
                        config.clone(),
                    )
                    .unwrap(),
                );
                drive_sessions(&server, &disjoint_session_streams(&cfg));
                if matches!(scenario, Crash::After) {
                    // Let the cadence lapse, then submit one more
                    // update: its epoch end takes a checkpoint covering
                    // the entire log, and the crash follows with
                    // nothing appended after it.
                    std::thread::sleep(std::time::Duration::from_millis(120));
                    let s = server.session();
                    assert!(s.ins_edge(Edge::new(0, 1, 1)).outcome.is_ok());
                    drop(s);
                    while server
                        .stats()
                        .wal_checkpoints
                        .load(std::sync::atomic::Ordering::Relaxed)
                        == 0
                    {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                }
                Arc::try_unwrap(server).ok().unwrap().crash();

                // The no-crash oracle: everything the log can replay
                // (snapshot structure + retained records), recomputed
                // from scratch.
                let pre_batches = replay(&path).unwrap();
                let snapshot = read_snapshot(&path).unwrap();
                let snapshot_batches =
                    u64::from(snapshot.as_ref().is_some_and(|s| !s.updates.is_empty()));
                let expected_records = pre_batches.len() as u64 - snapshot_batches;
                match scenario {
                    Crash::Before => {
                        assert!(snapshot.is_none(), "{ctx}: no checkpoint may have fired");
                    }
                    Crash::During | Crash::After => {
                        assert!(snapshot.is_some(), "{ctx}: checkpoints must have fired");
                        let manifest = read_manifest(&path).unwrap().unwrap();
                        assert!(
                            manifest.first_seg > 0,
                            "{ctx}: pre-checkpoint segments must be truncated"
                        );
                    }
                }
                if matches!(scenario, Crash::After) {
                    assert_eq!(
                        expected_records, 0,
                        "{ctx}: the final checkpoint must cover the whole log"
                    );
                }

                let replayed_flat: Vec<Update> = pre_batches.into_iter().flatten().collect();
                let mut live: Vec<oracle::LiveEdge> = Vec::new();
                oracle::apply_all(&mut live, &replayed_flat);
                let recovered = Server::start(
                    vec![Arc::new(Wcc::new()) as DynAlgorithm],
                    cfg.capacity(),
                    config,
                )
                .unwrap();
                assert_eq!(
                    recovered
                        .stats()
                        .wal_replayed_records
                        .load(std::sync::atomic::Ordering::Relaxed),
                    expected_records,
                    "{ctx}: replay must read exactly the post-checkpoint records"
                );
                oracle::assert_engine_matches(
                    recovered.engine(),
                    0,
                    &Wcc::new(),
                    cfg.capacity(),
                    &live,
                    &ctx,
                );
                let reloaded: Engine = Engine::with_algorithm(Wcc::new(), cfg.capacity());
                reloaded.load_edges(&live);
                assert_eq!(
                    store_fingerprint(recovered.engine(), cfg.capacity() as u64),
                    store_fingerprint(&reloaded, cfg.capacity() as u64),
                    "{ctx}: recovered store contents"
                );
                recovered.shutdown();
                remove_wal(&path);
            }
        }
    }
}
