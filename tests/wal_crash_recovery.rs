//! Crash recovery through the epoch-merged WAL (§5), multi-shard path
//! included.
//!
//! [`Server::crash`] simulates power loss: the coordinator exits
//! without flushing the buffered log tail, so the on-disk WAL ends in a
//! clean prefix of merged epoch records, possibly followed by a torn
//! one. Recovery must restore exactly the state those replayable
//! records describe. The oracle is computed *independently* of the
//! engine's replay machinery: sessions use disjoint vertex regions, so
//! the live edge multiset reconstructed from the replayed records has
//! an order-independent meaning and a from-scratch recomputation over
//! it is ground truth.

use std::sync::Arc;

use risgraph::algorithms::Wcc;
use risgraph::core::wal::replay;
use risgraph::prelude::*;
use risgraph_testkit::{
    disjoint_session_streams, drive_sessions, oracle, server_config, store_fingerprint, temp_path,
    RegionStreamConfig,
};

/// Run a 4-shard WAL-logged server over disjoint-session streams, crash
/// it mid-buffer, and return `(wal_path, capacity, applied_count)`.
fn run_and_crash(tag: &str, cfg: &RegionStreamConfig) -> (std::path::PathBuf, usize, u64) {
    run_and_crash_on(tag, cfg, risgraph::storage::BackendKind::IaHash)
}

/// [`run_and_crash`] on an explicit storage backend.
fn run_and_crash_on(
    tag: &str,
    cfg: &RegionStreamConfig,
    backend: risgraph::storage::BackendKind,
) -> (std::path::PathBuf, usize, u64) {
    let path = temp_path(&format!("{tag}.wal"));
    let mut config = server_config(backend, 4);
    config.wal_path = Some(path.clone());
    // Group-commit pacing far beyond the test's runtime: everything
    // after the last buffer-sized flush stays in the writer's buffer
    // and dies with the crash.
    config.wal_sync_interval = std::time::Duration::from_secs(3600);
    let server = Arc::new(
        Server::start(
            vec![Arc::new(Wcc::new()) as DynAlgorithm],
            cfg.capacity(),
            config,
        )
        .unwrap(),
    );
    let streams = disjoint_session_streams(cfg);
    let traces = drive_sessions(&server, &streams);
    let applied: u64 = traces
        .iter()
        .flat_map(|t| &t.steps)
        .filter(|s| s.ok)
        .count() as u64;
    assert_eq!(
        applied,
        (cfg.sessions * cfg.steps) as u64,
        "disjoint-region updates must all succeed"
    );
    Arc::try_unwrap(server).ok().unwrap().crash();
    (path, cfg.capacity(), applied)
}

/// Recover a server from `path` and assert it matches the oracle built
/// from the log's own replayable prefix.
fn assert_recovery_matches_oracle(path: &std::path::Path, capacity: usize, ctx: &str) -> usize {
    assert_recovery_matches_oracle_on(path, capacity, ctx, risgraph::storage::BackendKind::IaHash)
}

/// [`assert_recovery_matches_oracle`] recovering onto an explicit
/// storage backend.
fn assert_recovery_matches_oracle_on(
    path: &std::path::Path,
    capacity: usize,
    ctx: &str,
    backend: risgraph::storage::BackendKind,
) -> usize {
    let batches = replay(path).unwrap();
    let replayed: Vec<Update> = batches.into_iter().flatten().collect();
    let mut live: Vec<oracle::LiveEdge> = Vec::new();
    oracle::apply_all(&mut live, &replayed);

    let mut config = server_config(backend, 4);
    config.wal_path = Some(path.to_path_buf());
    let recovered =
        Server::start(vec![Arc::new(Wcc::new()) as DynAlgorithm], capacity, config).unwrap();

    // Values: recovered incremental state == from-scratch recompute of
    // the replayed multiset.
    oracle::assert_engine_matches(recovered.engine(), 0, &Wcc::new(), capacity, &live, ctx);
    // Structure: count-annotated adjacency matches an engine bulk-built
    // from the same multiset.
    let reloaded: Engine = Engine::with_algorithm(Wcc::new(), capacity);
    reloaded.load_edges(&live);
    assert_eq!(
        store_fingerprint(recovered.engine(), capacity as u64),
        store_fingerprint(&reloaded, capacity as u64),
        "{ctx}: store contents after recovery"
    );
    recovered.shutdown();
    replayed.len()
}

#[test]
fn crash_mid_epoch_recovers_replayable_prefix() {
    let cfg = RegionStreamConfig {
        sessions: 4,
        region: 20,
        steps: 300,
        seed: 17,
        ..RegionStreamConfig::default()
    };
    let (path, capacity, applied) = run_and_crash("crash-recovery", &cfg);
    let replayed = assert_recovery_matches_oracle(&path, capacity, "crash recovery");
    // The log holds at most what was applied; with fsync pacing pushed
    // out, the buffered tail was genuinely lost (~8 KiB of records
    // survive only via incidental buffer-full flushes).
    assert!(replayed as u64 <= applied);
    assert!(
        replayed > 0,
        "enough volume must have overflowed the writer's buffer to test replay"
    );
    std::fs::remove_file(&path).unwrap();
}

/// The same power-loss contract with `--store ooc-mmap` on both sides
/// of the crash: a server whose adjacency lives in an mmap'ed block
/// file must recover from the WAL's replayable prefix exactly like the
/// in-memory backends (the block file itself is rebuilt by replay; its
/// durability is the WAL's, not the mapping's).
#[test]
fn crash_mid_epoch_recovers_on_ooc_mmap() {
    let cfg = RegionStreamConfig {
        sessions: 4,
        region: 20,
        steps: 300,
        seed: 19,
        ..RegionStreamConfig::default()
    };
    let (path, capacity, applied) = run_and_crash_on(
        "crash-recovery-mmap",
        &cfg,
        risgraph::storage::BackendKind::OocMmap { path: None },
    );
    let replayed = assert_recovery_matches_oracle_on(
        &path,
        capacity,
        "crash recovery (ooc-mmap)",
        risgraph::storage::BackendKind::OocMmap { path: None },
    );
    assert!(replayed as u64 <= applied);
    assert!(
        replayed > 0,
        "enough volume must have overflowed the writer's buffer to test replay"
    );
    std::fs::remove_file(&path).unwrap();
}

/// The PR 2 "WAL linearization caveat", now closed: same-edge
/// count-races across sessions within one epoch must replay
/// **byte-exactly**. Four sessions (one per shard) burst-insert then
/// burst-delete the *same* edges, so an epoch's log routinely holds
/// cross-session ins/del sequences of one edge whose per-session
/// concatenation is NOT the execution order — replaying that
/// concatenation can hit count 0 early, skip a delete, and recover a
/// different multiplicity than the live store had. With the global
/// application-order stamp (drawn inside the store's per-edge lock and
/// used to sort the merged record), recovery must reproduce the live
/// count-annotated store exactly.
#[test]
fn same_edge_cross_session_races_replay_byte_exactly() {
    for backend in [
        risgraph::storage::BackendKind::IaHash,
        risgraph::storage::BackendKind::OocMmap { path: None },
    ] {
        let label = format!("{backend:?}");
        let path = temp_path("same-edge.wal");
        let _ = std::fs::remove_file(&path);
        let mut config = server_config(backend, 4);
        config.wal_path = Some(path.clone());
        let n = 8usize;
        let server = Arc::new(
            Server::start(
                vec![Arc::new(Wcc::new()) as DynAlgorithm],
                n,
                config.clone(),
            )
            .unwrap(),
        );
        // Per-epoch the merged record concatenates session groups in
        // session order, so the damning shape is: a *low* session id
        // deleting an edge while a *high* session id inserts it. When
        // the insert executed first but the log lists the delete first,
        // an unstamped replay hits count 0, skips the delete, and
        // resurrects a copy the live store didn't have. Sessions 0–1
        // are pure deleters of the edges sessions 2–3 keep inserting.
        let edges = [Edge::new(1, 2, 0), Edge::new(2, 3, 0)];
        let streams: Vec<Vec<Update>> = (0..4u64)
            .map(|s| {
                (0..240)
                    .map(|round| {
                        let e = edges[(round % 2) as usize];
                        if s < 2 {
                            Update::DelEdge(e)
                        } else {
                            Update::InsEdge(e)
                        }
                    })
                    .collect()
            })
            .collect();
        // Outcomes are allowed to include errors (a delete can find the
        // edge drained by another session) — errored updates are not
        // logged, so they don't participate in the replay contract.
        drive_sessions(&server, &streams);
        let live_fp = store_fingerprint(server.engine(), n as u64);
        let live_vals = server.engine().values_snapshot(0, n);
        // Graceful shutdown: the full log reaches disk.
        Arc::try_unwrap(server).ok().unwrap().shutdown();

        let recovered =
            Server::start(vec![Arc::new(Wcc::new()) as DynAlgorithm], n, config).unwrap();
        assert_eq!(
            store_fingerprint(recovered.engine(), n as u64),
            live_fp,
            "{label}: same-edge cross-session races must replay byte-exactly"
        );
        assert_eq!(
            recovered.engine().values_snapshot(0, n),
            live_vals,
            "{label}: recovered values"
        );
        recovered.shutdown();
        std::fs::remove_file(&path).unwrap();
    }
}

/// Tearing the log deep inside its valid prefix (a crash during the
/// physical write itself) must truncate to the last clean epoch
/// boundary before the tear — and recovery must match the oracle of
/// that shorter prefix.
#[test]
fn torn_record_after_crash_truncates_to_epoch_boundary() {
    let cfg = RegionStreamConfig {
        sessions: 4,
        region: 16,
        steps: 250,
        seed: 23,
        ..RegionStreamConfig::default()
    };
    let (path, capacity, _) = run_and_crash("crash-torn", &cfg);
    let before = replay(&path).unwrap().len();
    assert!(before > 1, "need at least two epoch records to tear one");
    // Cut the file mid-prefix: whatever record straddles the cut is
    // torn, and everything after it is gone.
    let data = std::fs::read(&path).unwrap();
    std::fs::write(&path, &data[..data.len() * 3 / 5]).unwrap();
    let after = replay(&path).unwrap().len();
    assert!(
        after < before,
        "cutting 40% of the log must drop records ({after} vs {before})"
    );
    assert_recovery_matches_oracle(&path, capacity, "torn tail");
    std::fs::remove_file(&path).unwrap();
}
