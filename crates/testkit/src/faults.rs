//! A fault-injecting TCP proxy for the replication stream.
//!
//! [`FaultyProxy`] sits between a follower and its leader: the
//! follower connects to the proxy, the proxy connects onward to the
//! leader. Upstream bytes (the subscribe request) pass through
//! verbatim; **downstream** traffic is handled frame-by-frame so the
//! proxy can inject exactly the faults a real network produces —
//! dropped, delayed, duplicated, corrupted and truncated frames, plus
//! outright connection kills mid-stream. Faults fire on deterministic
//! frame-counter periods ([`FaultPlan`]), with a global cap
//! ([`FaultPlan::max_faults`]) after which the proxy turns transparent
//! — so a fault-hammered follower is *guaranteed* to converge if its
//! reconnect/resubscribe/dedup logic is correct, which is precisely
//! what `tests/replication_differential.rs` asserts.
//!
//! The counters run across connections: a follower that reconnects
//! after a kill resumes mid-plan rather than replaying the same fault
//! forever.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use risgraph_common::crc::crc32;
use risgraph_common::protocol::{read_frame, FRAME_HEADER, MAX_RESPONSE_FRAME};

/// Deterministic downstream fault schedule. Each `*_period` fires on a
/// distinct phase of the global downstream frame counter (`0` disables
/// that fault); `kill_after_frames` tears the connection down every
/// time the counter passes a multiple of it.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Every `n`-th frame (phase 2) is silently dropped — the follower
    /// sees a record gap and must resubscribe.
    pub drop_period: u64,
    /// Every `n`-th frame (phase 1) has a payload byte flipped — the
    /// CRC check fails and the follower must treat the stream as dead.
    pub corrupt_period: u64,
    /// Every `n`-th frame (phase 3) is sent twice — the follower must
    /// skip the duplicate idempotently.
    pub duplicate_period: u64,
    /// Every `n`-th frame (phase 4) is cut in half and the connection
    /// killed — a torn frame mid-transfer.
    pub truncate_period: u64,
    /// Every `n`-th frame (phase 0) is held for `delay` first.
    pub delay_period: u64,
    /// The hold applied on `delay_period` frames.
    pub delay: Duration,
    /// Kill the connection outright after this many forwarded frames
    /// (0 disables) — the kill-and-reconnect-mid-epoch scenario.
    pub kill_after_frames: u64,
    /// Stop injecting after this many faults in total, so the stream
    /// eventually heals and the follower can converge.
    pub max_faults: u64,
}

impl FaultPlan {
    /// A plan exercising every fault class on small periods: suitable
    /// for differential tests that drive a few hundred frames.
    pub fn hostile(max_faults: u64) -> FaultPlan {
        FaultPlan {
            drop_period: 13,
            corrupt_period: 11,
            duplicate_period: 5,
            truncate_period: 23,
            delay_period: 7,
            delay: Duration::from_millis(2),
            kill_after_frames: 37,
            max_faults,
        }
    }
}

/// What the proxy decided to do with one downstream frame.
enum Action {
    Forward,
    Delay,
    Drop,
    Corrupt,
    Duplicate,
    Truncate,
    Kill,
}

/// Counters for assertions ("the plan actually fired").
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Downstream frames seen (faulted or not).
    pub frames: AtomicU64,
    /// Faults injected (all classes, kills included).
    pub faults: AtomicU64,
    /// Connections accepted from the follower side.
    pub connections: AtomicU64,
}

/// The proxy itself; see the module docs. Dropping it (or calling
/// [`FaultyProxy::stop`]) tears down the listener and every live
/// proxied connection.
pub struct FaultyProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ProxyStats>,
    accept_thread: Option<JoinHandle<()>>,
    live: Arc<Mutex<Vec<TcpStream>>>,
}

impl FaultyProxy {
    /// Start a proxy forwarding to `target` under `plan`. Point the
    /// follower at [`FaultyProxy::addr`].
    pub fn start(target: SocketAddr, plan: FaultPlan) -> FaultyProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().expect("proxy addr");
        listener.set_nonblocking(true).expect("nonblocking proxy");
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ProxyStats::default());
        let live: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let frame_no = Arc::new(AtomicU64::new(0));

        let t_stop = Arc::clone(&stop);
        let t_stats = Arc::clone(&stats);
        let t_live = Arc::clone(&live);
        let accept_thread = std::thread::Builder::new()
            .name("risgraph-fault-proxy".into())
            .spawn(move || loop {
                if t_stop.load(Ordering::Acquire) {
                    return;
                }
                let client = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(2));
                        continue;
                    }
                };
                let Ok(upstream) = TcpStream::connect(target) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                t_stats.connections.fetch_add(1, Ordering::Relaxed);
                let _ = client.set_nodelay(true);
                let _ = upstream.set_nodelay(true);
                {
                    let mut live = t_live.lock().unwrap();
                    if let (Ok(c), Ok(u)) = (client.try_clone(), upstream.try_clone()) {
                        live.push(c);
                        live.push(u);
                    }
                }
                let conn_stats = Arc::clone(&t_stats);
                let conn_frames = Arc::clone(&frame_no);
                std::thread::Builder::new()
                    .name("risgraph-fault-proxy-conn".into())
                    .spawn(move || {
                        proxy_connection(client, upstream, plan, conn_stats, conn_frames)
                    })
                    .expect("spawn proxy connection");
            })
            .expect("spawn proxy accept");

        FaultyProxy {
            addr,
            stop,
            stats,
            accept_thread: Some(accept_thread),
            live,
        }
    }

    /// Where the follower should connect.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Injection counters.
    pub fn stats(&self) -> &ProxyStats {
        &self.stats
    }

    /// Stop proxying and close every live connection.
    pub fn stop(mut self) {
        self.do_stop();
    }

    fn do_stop(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        for stream in self.live.lock().unwrap().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultyProxy {
    fn drop(&mut self) {
        self.do_stop();
    }
}

fn decide(plan: &FaultPlan, n: u64, faults_so_far: u64) -> Action {
    if faults_so_far >= plan.max_faults {
        return Action::Forward;
    }
    let fires = |period: u64, phase: u64| period != 0 && n % period == phase % period.max(1);
    if plan.kill_after_frames != 0 && n != 0 && n.is_multiple_of(plan.kill_after_frames) {
        return Action::Kill;
    }
    if fires(plan.truncate_period, 4) {
        return Action::Truncate;
    }
    if fires(plan.corrupt_period, 1) {
        return Action::Corrupt;
    }
    if fires(plan.drop_period, 2) {
        return Action::Drop;
    }
    if fires(plan.duplicate_period, 3) {
        return Action::Duplicate;
    }
    if fires(plan.delay_period, 0) {
        return Action::Delay;
    }
    Action::Forward
}

/// Re-frame `payload` with a *valid* header (the proxy re-checks
/// nothing; corruption is applied after the CRC is computed).
fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One proxied connection: uplink verbatim, downlink frame-aware with
/// injected faults. Returns when either side dies or a kill fires.
fn proxy_connection(
    client: TcpStream,
    upstream: TcpStream,
    plan: FaultPlan,
    stats: Arc<ProxyStats>,
    frame_no: Arc<AtomicU64>,
) {
    // Uplink: follower → leader, byte-for-byte (the subscribe frame).
    let (mut up_read, mut up_write) = match (client.try_clone(), upstream.try_clone()) {
        (Ok(r), Ok(w)) => (r, w),
        _ => return,
    };
    let uplink = std::thread::Builder::new()
        .name("risgraph-fault-proxy-up".into())
        .spawn(move || {
            let mut buf = [0u8; 4096];
            loop {
                match up_read.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if up_write.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
            let _ = up_write.shutdown(Shutdown::Write);
        })
        .expect("spawn proxy uplink");

    // Downlink: leader → follower, frame-aware.
    let mut from_leader = std::io::BufReader::new(upstream.try_clone().expect("clone upstream"));
    let mut to_client = client.try_clone().expect("clone client");
    let kill = |a: &TcpStream, b: &TcpStream| {
        let _ = a.shutdown(Shutdown::Both);
        let _ = b.shutdown(Shutdown::Both);
    };
    while let Ok(Some(payload)) = read_frame(&mut from_leader, MAX_RESPONSE_FRAME) {
        let n = frame_no.fetch_add(1, Ordering::Relaxed);
        stats.frames.fetch_add(1, Ordering::Relaxed);
        let action = decide(&plan, n, stats.faults.load(Ordering::Relaxed));
        let fault = || stats.faults.fetch_add(1, Ordering::Relaxed);
        let ok = match action {
            Action::Forward => to_client.write_all(&frame_bytes(&payload)).is_ok(),
            Action::Delay => {
                fault();
                std::thread::sleep(plan.delay);
                to_client.write_all(&frame_bytes(&payload)).is_ok()
            }
            Action::Drop => {
                fault();
                true
            }
            Action::Corrupt => {
                fault();
                let mut bytes = frame_bytes(&payload);
                let last = bytes.len() - 1;
                bytes[last] ^= 0x5A; // payload byte: CRC now mismatches
                to_client.write_all(&bytes).is_ok()
            }
            Action::Duplicate => {
                fault();
                let bytes = frame_bytes(&payload);
                to_client.write_all(&bytes).is_ok() && to_client.write_all(&bytes).is_ok()
            }
            Action::Truncate => {
                fault();
                let bytes = frame_bytes(&payload);
                let _ = to_client.write_all(&bytes[..bytes.len() / 2]);
                let _ = to_client.flush();
                kill(&client, &upstream);
                false
            }
            Action::Kill => {
                fault();
                kill(&client, &upstream);
                false
            }
        };
        if !ok {
            break;
        }
    }
    kill(&client, &upstream);
    let _ = uplink.join();
}
