//! Deterministic random update-stream generators.
//!
//! Three shapes, each matched to a class of test:
//!
//! * [`Step`]/[`resolve_step`] — the raw ins/del alphabet used by the
//!   property tests (deletions address the live multiset by index so
//!   shrunk cases stay meaningful);
//! * [`random_stream`] — a single pre-resolved stream whose deletions
//!   always target live edges (single-session differentials, WAL
//!   round-trips);
//! * [`disjoint_session_streams`] — one stream per emulated session,
//!   each confined to its own vertex region. Regions never share an
//!   edge or a vertex, so every session's classifications, result
//!   changes and final region state are deterministic *no matter how
//!   the server interleaves sessions* — which is exactly what lets a
//!   differential test compare a `shards = 1` server against a
//!   `shards = N` server update-by-update;
//! * [`safe_churn`] — duplicate-insert/duplicate-delete pairs over an
//!   existing edge set. At a fixpoint a duplicate of a present edge
//!   can't improve any destination and deleting one of two copies keeps
//!   a witness, so the whole stream classifies safe (§4) and measures
//!   the safe phase alone.

use rand::{rngs::StdRng, Rng, SeedableRng};
use risgraph_common::ids::{Edge, Update};

use crate::oracle::LiveEdge;

/// One raw step of a property-test stream.
#[derive(Debug, Clone, Copy)]
pub enum Step {
    /// Insert `(src, dst, weight)`.
    Ins(u64, u64, u64),
    /// Delete the `i % live.len()`-th live edge.
    Del(usize),
}

/// Resolve a [`Step`] against the current live multiset. Returns `None`
/// for a deletion when nothing is live (the step is skipped).
pub fn resolve_step(live: &[LiveEdge], step: Step) -> Option<Update> {
    match step {
        Step::Ins(s, d, w) => Some(Update::InsEdge(Edge::new(s, d, w))),
        Step::Del(i) => {
            if live.is_empty() {
                return None;
            }
            let (s, d, w) = live[i % live.len()];
            Some(Update::DelEdge(Edge::new(s, d, w)))
        }
    }
}

/// A random stream over vertices `0..n` whose deletions always target a
/// currently-live edge, so every update succeeds when replayed in
/// order. Returns the updates; mirror them with
/// [`crate::oracle::apply_update`] to follow along.
pub fn random_stream(n: u64, steps: usize, seed: u64, max_weight: u64) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<LiveEdge> = Vec::new();
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        if !live.is_empty() && rng.gen_bool(0.4) {
            let i = rng.gen_range(0..live.len());
            let (s, d, w) = live.swap_remove(i);
            out.push(Update::DelEdge(Edge::new(s, d, w)));
        } else {
            let e = (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(1..=max_weight.max(1)),
            );
            live.push(e);
            out.push(Update::InsEdge(Edge::new(e.0, e.1, e.2)));
        }
    }
    out
}

/// Configuration for [`disjoint_session_streams`].
#[derive(Debug, Clone, Copy)]
pub struct RegionStreamConfig {
    /// Number of sessions (== number of disjoint regions).
    pub sessions: usize,
    /// Vertices per region; session `i` owns
    /// `[base + i·region, base + (i+1)·region)`.
    pub region: u64,
    /// First vertex of region 0 (keep ≥ 1 to leave the root alone).
    pub base: u64,
    /// Updates per session.
    pub steps: usize,
    /// Stream seed (session `i` uses `seed + i`).
    pub seed: u64,
    /// Maximum edge weight (≥ 1).
    pub max_weight: u64,
}

impl Default for RegionStreamConfig {
    fn default() -> Self {
        RegionStreamConfig {
            sessions: 4,
            region: 24,
            base: 1,
            steps: 120,
            seed: 7,
            max_weight: 4,
        }
    }
}

impl RegionStreamConfig {
    /// Smallest vertex capacity covering every region.
    pub fn capacity(&self) -> usize {
        (self.base + self.sessions as u64 * self.region) as usize
    }
}

/// One deterministic stream per session, each confined to that
/// session's vertex region; deletions always target an edge the session
/// itself inserted earlier (and that is still live), so every update of
/// every session succeeds regardless of cross-session scheduling.
pub fn disjoint_session_streams(cfg: &RegionStreamConfig) -> Vec<Vec<Update>> {
    (0..cfg.sessions)
        .map(|i| {
            let lo = cfg.base + i as u64 * cfg.region;
            let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(i as u64));
            let mut live: Vec<LiveEdge> = Vec::new();
            let mut out = Vec::with_capacity(cfg.steps);
            for _ in 0..cfg.steps {
                if !live.is_empty() && rng.gen_bool(0.4) {
                    let j = rng.gen_range(0..live.len());
                    let (s, d, w) = live.swap_remove(j);
                    out.push(Update::DelEdge(Edge::new(s, d, w)));
                } else {
                    let e = (
                        lo + rng.gen_range(0..cfg.region),
                        lo + rng.gen_range(0..cfg.region),
                        rng.gen_range(1..=cfg.max_weight.max(1)),
                    );
                    live.push(e);
                    out.push(Update::InsEdge(Edge::new(e.0, e.1, e.2)));
                }
            }
            out
        })
        .collect()
}

/// Configuration for [`unsafe_chain_preload`] / [`unsafe_chain_streams`]:
/// per-session disjoint chain regions whose churn is 100% unsafe under
/// WCC — the workload that isolates the unsafe phase (the complement
/// of [`safe_churn`]) and the natural fuel for the parallel unsafe
/// phase, whose conflict groups are exactly the per-session chains.
#[derive(Debug, Clone, Copy)]
pub struct UnsafeChainConfig {
    /// Number of sessions (== number of disjoint chains).
    pub sessions: usize,
    /// Vertices per chain; session `i` owns the path
    /// `base + i·chain → … → base + (i+1)·chain - 1`.
    pub chain: u64,
    /// First vertex of chain 0 (keep ≥ 1 to leave a root alone).
    pub base: u64,
    /// Delete/insert pairs per session.
    pub pairs: usize,
}

impl Default for UnsafeChainConfig {
    fn default() -> Self {
        UnsafeChainConfig {
            sessions: 4,
            chain: 16,
            base: 1,
            pairs: 60,
        }
    }
}

impl UnsafeChainConfig {
    /// Smallest vertex capacity covering every chain.
    pub fn capacity(&self) -> usize {
        (self.base + self.sessions as u64 * self.chain) as usize
    }

    /// First vertex of session `i`'s chain.
    pub fn lo(&self, i: usize) -> u64 {
        self.base + i as u64 * self.chain
    }
}

/// The preload for [`unsafe_chain_streams`]: one simple path per
/// session region.
pub fn unsafe_chain_preload(cfg: &UnsafeChainConfig) -> Vec<LiveEdge> {
    (0..cfg.sessions)
        .flat_map(|i| {
            let lo = cfg.lo(i);
            (0..cfg.chain - 1).map(move |k| (lo + k, lo + k + 1, 0))
        })
        .collect()
}

/// One stream per session: `2·pairs` updates alternating deletion and
/// re-insertion of the session chain's first edge. Under WCC every
/// update is unsafe — the deletion removes the count-1 tree edge that
/// splits the chain's component, and the re-insertion merges it back
/// (improving every downstream label) — and its affected area is
/// exactly the session's own chain, so streams from different sessions
/// always land in disjoint conflict groups.
pub fn unsafe_chain_streams(cfg: &UnsafeChainConfig) -> Vec<Vec<Update>> {
    assert!(cfg.chain >= 2, "a chain needs at least one edge");
    (0..cfg.sessions)
        .map(|i| {
            let lo = cfg.lo(i);
            let mut out = Vec::with_capacity(cfg.pairs * 2);
            for _ in 0..cfg.pairs {
                out.push(Update::DelEdge(Edge::new(lo, lo + 1, 0)));
                out.push(Update::InsEdge(Edge::new(lo, lo + 1, 0)));
            }
            out
        })
        .collect()
}

/// [`unsafe_chain_streams`] with each session's own chain-building
/// inserts prepended to its stream. The preload then travels through
/// the sessions instead of [`unsafe_chain_preload`]/`load_edges`,
/// which keeps the differential harness's from-empty session oracle
/// valid — and the build inserts are themselves all unsafe (each one
/// merges the next vertex into the chain's component).
pub fn unsafe_chain_streams_with_build(cfg: &UnsafeChainConfig) -> Vec<Vec<Update>> {
    let mut streams = unsafe_chain_streams(cfg);
    for (i, stream) in streams.iter_mut().enumerate() {
        let lo = cfg.lo(i);
        let build = (0..cfg.chain - 1).map(|k| Update::InsEdge(Edge::new(lo + k, lo + k + 1, 0)));
        stream.splice(0..0, build);
    }
    streams
}

/// Configuration for [`hub_conflict_streams`].
#[derive(Debug, Clone, Copy)]
pub struct HubConflictConfig {
    /// Number of sessions.
    pub sessions: usize,
    /// Spoke vertices per session; session `i` draws spokes from
    /// `[base + i·region, base + (i+1)·region)`.
    pub region: u64,
    /// First spoke vertex of session 0 (keep > hub).
    pub base: u64,
    /// Insert/delete pairs per session.
    pub pairs: usize,
    /// The shared hub vertex every update touches.
    pub hub: u64,
}

impl Default for HubConflictConfig {
    fn default() -> Self {
        HubConflictConfig {
            sessions: 4,
            region: 8,
            base: 1,
            pairs: 60,
            hub: 0,
        }
    }
}

impl HubConflictConfig {
    /// Smallest vertex capacity covering hub and every spoke region.
    pub fn capacity(&self) -> usize {
        (self.base + self.sessions as u64 * self.region).max(self.hub + 1) as usize
    }
}

/// Conflict-heavy streams: every session alternates inserting and
/// deleting a `hub → spoke` edge with the spoke in its own region.
/// Under WCC both halves are unsafe (the insert merges the spoke into
/// the hub's component; the delete removes the count-1 tree edge back
/// out), every update succeeds regardless of scheduling (the edge is
/// session-unique and each delete follows its own insert's reply —
/// per-session order holds even pipelined), and **every** update's
/// affected area contains the hub — so the parallel unsafe phase can
/// never split an epoch's pending updates into more than one conflict
/// group and must take its serial fallback.
pub fn hub_conflict_streams(cfg: &HubConflictConfig) -> Vec<Vec<Update>> {
    (0..cfg.sessions)
        .map(|i| {
            let lo = cfg.base + i as u64 * cfg.region;
            let mut out = Vec::with_capacity(cfg.pairs * 2);
            for k in 0..cfg.pairs {
                let spoke = lo + (k as u64 % cfg.region);
                out.push(Update::InsEdge(Edge::new(cfg.hub, spoke, 0)));
                out.push(Update::DelEdge(Edge::new(cfg.hub, spoke, 0)));
            }
            out
        })
        .collect()
}

/// A safe-only churn stream over `preload`: `2·pairs` updates
/// alternating duplicate-insert and duplicate-delete of randomly chosen
/// loaded edges. With the preload at a fixpoint every update classifies
/// safe, so server throughput on this stream measures the sharded safe
/// phase with no serial unsafe work mixed in.
///
/// The safety argument needs each pair's ordering: a duplicate insert
/// of a present edge improves nothing, and a delete submitted *after
/// its own insert's reply* always finds ≥ 2 copies (every other
/// session's delete is likewise preceded by its own applied insert).
/// So give **each session its own `safe_churn` stream** (vary `seed`);
/// striping one stream round-robin across sessions would split pairs
/// and let deletes race ahead of their inserts into count-1 unsafe
/// territory.
pub fn safe_churn(preload: &[LiveEdge], pairs: usize, seed: u64) -> Vec<Update> {
    assert!(!preload.is_empty(), "safe churn needs a loaded graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(pairs * 2);
    for _ in 0..pairs {
        let (s, d, w) = preload[rng.gen_range(0..preload.len())];
        out.push(Update::InsEdge(Edge::new(s, d, w)));
        out.push(Update::DelEdge(Edge::new(s, d, w)));
    }
    out
}

/// One duplicate-insert-only stream per session, each over its own
/// disjoint slice of the **deduplicated** preload: `ops` inserts of
/// randomly chosen already-loaded edges. Like [`safe_churn`] every
/// update classifies safe (a duplicate insert improves nothing), but
/// unlike churn each update is also *independently* valid — any subset
/// can be admitted and every admitted op still succeeds. That is the
/// property a deliberate-shedding harness needs: shed a churn pair's
/// insert and its delete legitimately fails with `EdgeNotFound`, so
/// "every admitted op succeeds" would be un-assertable.
pub fn partitioned_safe_inserts(
    preload: &[LiveEdge],
    sessions: usize,
    ops: usize,
    seed: u64,
) -> Vec<Vec<Update>> {
    let mut seen = std::collections::HashSet::new();
    let pool: Vec<LiveEdge> = preload
        .iter()
        .copied()
        .filter(|e| seen.insert(*e))
        .collect();
    let chunk = pool.len() / sessions.max(1);
    assert!(
        chunk > 0,
        "preload has only {} distinct edges for {} sessions",
        pool.len(),
        sessions
    );
    (0..sessions)
        .map(|s| {
            let slice = &pool[s * chunk..(s + 1) * chunk];
            let mut rng = StdRng::seed_from_u64(seed + s as u64);
            (0..ops)
                .map(|_| {
                    let (src, dst, w) = slice[rng.gen_range(0..slice.len())];
                    Update::InsEdge(Edge::new(src, dst, w))
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::apply_update;

    #[test]
    fn random_stream_deletes_only_live_edges() {
        let stream = random_stream(16, 300, 3, 5);
        let mut live: Vec<LiveEdge> = Vec::new();
        for u in &stream {
            if let Update::DelEdge(e) = u {
                assert!(
                    live.iter()
                        .any(|&(s, d, w)| s == e.src && d == e.dst && w == e.data),
                    "deletion of non-live edge {e:?}"
                );
            }
            apply_update(&mut live, u);
        }
    }

    #[test]
    fn regions_are_disjoint() {
        let cfg = RegionStreamConfig {
            sessions: 3,
            region: 10,
            base: 1,
            steps: 80,
            seed: 1,
            max_weight: 3,
        };
        let streams = disjoint_session_streams(&cfg);
        assert_eq!(streams.len(), 3);
        for (i, stream) in streams.iter().enumerate() {
            let lo = cfg.base + i as u64 * cfg.region;
            let hi = lo + cfg.region;
            for u in stream {
                match u {
                    Update::InsEdge(e) | Update::DelEdge(e) => {
                        assert!(e.src >= lo && e.src < hi && e.dst >= lo && e.dst < hi);
                    }
                    _ => panic!("unexpected vertex op"),
                }
            }
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let cfg = RegionStreamConfig::default();
        assert_eq!(
            format!("{:?}", disjoint_session_streams(&cfg)),
            format!("{:?}", disjoint_session_streams(&cfg)),
        );
        assert_eq!(
            format!("{:?}", random_stream(8, 50, 9, 3)),
            format!("{:?}", random_stream(8, 50, 9, 3)),
        );
    }

    #[test]
    fn unsafe_chain_regions_are_disjoint() {
        let cfg = UnsafeChainConfig::default();
        let preload = unsafe_chain_preload(&cfg);
        assert_eq!(preload.len(), cfg.sessions * (cfg.chain as usize - 1));
        let streams = unsafe_chain_streams(&cfg);
        assert_eq!(streams.len(), cfg.sessions);
        for (i, stream) in streams.iter().enumerate() {
            let (lo, hi) = (cfg.lo(i), cfg.lo(i) + cfg.chain);
            assert_eq!(stream.len(), cfg.pairs * 2);
            for pair in stream.chunks(2) {
                match (&pair[0], &pair[1]) {
                    (Update::DelEdge(a), Update::InsEdge(b)) => {
                        assert_eq!(a, b);
                        assert!(a.src >= lo && a.dst < hi);
                    }
                    other => panic!("expected del/ins pair, got {other:?}"),
                }
            }
        }
        assert!(preload
            .iter()
            .all(|&(s, d, _)| s >= cfg.base && d < cfg.capacity() as u64));
    }

    #[test]
    fn hub_streams_all_touch_the_hub() {
        let cfg = HubConflictConfig::default();
        let streams = hub_conflict_streams(&cfg);
        assert_eq!(streams.len(), cfg.sessions);
        for (i, stream) in streams.iter().enumerate() {
            let lo = cfg.base + i as u64 * cfg.region;
            let hi = lo + cfg.region;
            assert_eq!(stream.len(), cfg.pairs * 2);
            for pair in stream.chunks(2) {
                match (&pair[0], &pair[1]) {
                    (Update::InsEdge(a), Update::DelEdge(b)) => {
                        assert_eq!(a, b);
                        assert_eq!(a.src, cfg.hub);
                        assert!(a.dst >= lo && a.dst < hi, "spoke outside region");
                    }
                    other => panic!("expected ins/del pair, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn safe_churn_pairs_inserts_and_deletes() {
        let preload = vec![(0, 1, 0), (1, 2, 0)];
        let stream = safe_churn(&preload, 10, 4);
        assert_eq!(stream.len(), 20);
        for pair in stream.chunks(2) {
            match (&pair[0], &pair[1]) {
                (Update::InsEdge(a), Update::DelEdge(b)) => assert_eq!(a, b),
                other => panic!("expected ins/del pair, got {other:?}"),
            }
        }
    }
}
