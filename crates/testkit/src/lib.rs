//! # risgraph-testkit — shared test support
//!
//! The integration suites under `tests/` and the bench harnesses in
//! `crates/bench` used to each carry their own copies of the same three
//! ingredients: a live-edge-multiset oracle, random update-stream
//! generators, and engine/server construction boilerplate. This crate
//! is the single home for all of them, plus the cross-shard
//! *differential harness* that proves the sharded epoch loop
//! (`ServerConfig::shards`) equivalent to a single serial coordinator.
//!
//! Layout:
//!
//! * [`oracle`] — live edge-multiset maintenance and comparison against
//!   the from-scratch reference recomputation;
//! * [`streams`] — deterministic random update streams: generic churn,
//!   per-session *disjoint-region* workloads (every session owns a
//!   vertex range, so results and classifications are deterministic
//!   regardless of cross-session interleaving — the property the
//!   sharded/serial differential rests on), and safe-only churn for
//!   safe-phase throughput measurement;
//! * [`builders`] — engine/server construction over any
//!   [`risgraph_storage::BackendKind`], loopback network servers,
//!   temp-path management;
//! * [`differential`] — drive identical per-session streams through two
//!   servers — in-process sessions ([`drive_sessions`]) or TCP clients
//!   ([`drive_net_sessions`]) — and assert equivalent replies, history,
//!   values and store contents;
//! * [`faults`] — a fault-injecting TCP proxy for the replication
//!   stream: deterministic drop/delay/duplicate/corrupt/truncate/kill
//!   schedules with a healing cap, so follower convergence under
//!   faults is a checkable property.

pub mod builders;
pub mod differential;
pub mod faults;
pub mod oracle;
pub mod streams;

pub use builders::{
    engine_on, loopback_net_server, loopback_net_server_with, ooc_backend, ooc_mmap_backend,
    remove_ooc_files, remove_wal, server_config, temp_path,
};
pub use differential::{
    assert_servers_equivalent, drive_net_sessions, drive_sessions, drive_sessions_pipelined,
    raw_store_fingerprint, store_fingerprint, SessionTrace, StepTrace,
};
pub use faults::{FaultPlan, FaultyProxy, ProxyStats};
pub use oracle::{apply_update, assert_engine_matches, oracle_values, LiveEdge};
pub use streams::{
    disjoint_session_streams, hub_conflict_streams, partitioned_safe_inserts, random_stream,
    resolve_step, safe_churn, unsafe_chain_preload, unsafe_chain_streams,
    unsafe_chain_streams_with_build, HubConflictConfig, RegionStreamConfig, Step,
    UnsafeChainConfig,
};
