//! Engine/server construction helpers over any storage backend.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use risgraph_core::engine::{DynAlgorithm, Engine, EngineConfig};
use risgraph_core::server::ServerConfig;
use risgraph_storage::{AnyStore, BackendKind, StoreConfig};

/// A unique scratch path under the system temp dir. Unique per process
/// *and* per call, so parallel tests never collide.
pub fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("risgraph-testkit");
    std::fs::create_dir_all(&dir).expect("create testkit temp dir");
    dir.join(format!(
        "{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// An OOC backend over a fresh scratch file; returns the path so the
/// test can remove it when done.
pub fn ooc_backend(tag: &str, cache_blocks: usize) -> (BackendKind, PathBuf) {
    let path = temp_path(&format!("{tag}.blocks"));
    (
        BackendKind::Ooc {
            path: Some(path.clone()),
            cache_blocks,
        },
        path,
    )
}

/// An mmap-backed OOC backend over a fresh scratch file; returns the
/// path so the test can remove it (and its `.dir` sidecar) when done.
pub fn ooc_mmap_backend(tag: &str) -> (BackendKind, PathBuf) {
    let path = temp_path(&format!("{tag}.blocks"));
    (
        BackendKind::OocMmap {
            path: Some(path.clone()),
        },
        path,
    )
}

/// Remove an OOC scratch file and any chain-directory sidecar next to
/// it (best-effort; missing files are fine).
pub fn remove_ooc_files(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut sidecar = path.as_os_str().to_owned();
    sidecar.push(".dir");
    let _ = std::fs::remove_file(PathBuf::from(sidecar));
}

/// Remove a WAL and all its on-disk companions: the manifest at
/// `base`, the checkpoint snapshot, and every `<base>.seg-*` segment
/// (best-effort; missing files are fine). Tests must use this rather
/// than `remove_file(base)` — deleting only the manifest would leave
/// stale segments for a path-colliding later run to replay.
pub fn remove_wal(base: &std::path::Path) {
    let _ = std::fs::remove_file(base);
    let (Some(dir), Some(name)) = (base.parent(), base.file_name().and_then(|n| n.to_str())) else {
        return;
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let file = entry.file_name();
        let Some(file) = file.to_str() else { continue };
        let Some(suffix) = file.strip_prefix(name) else {
            continue;
        };
        if suffix.starts_with(".seg-") || suffix == ".snapshot" {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// A [`ServerConfig`] pinned for differential testing: the requested
/// backend and shard count, and **one** engine worker thread so
/// intra-update propagation is deterministic (parallel propagation can
/// pick different — equally valid — dependency-tree parents between
/// runs, which would make change records incomparable across servers).
pub fn server_config(backend: BackendKind, shards: usize) -> ServerConfig {
    ServerConfig {
        backend,
        shards,
        engine: EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        },
        ..ServerConfig::default()
    }
}

/// Stand up a loopback [`risgraph_net::NetServer`] (ephemeral port) over
/// the given algorithms/capacity/config — the network-side twin of
/// starting a [`risgraph_core::server::Server`] directly. Read the
/// actual address back via `local_addr()`.
pub fn loopback_net_server(
    algorithms: Vec<DynAlgorithm>,
    capacity: usize,
    config: ServerConfig,
) -> risgraph_net::NetServer {
    loopback_net_server_with(
        algorithms,
        capacity,
        config,
        risgraph_net::NetConfig::default(),
    )
}

/// [`loopback_net_server`] with explicit network-tier tuning (worker
/// count, timeouts, window, session cap) for tests that exercise those
/// knobs.
pub fn loopback_net_server_with(
    algorithms: Vec<DynAlgorithm>,
    capacity: usize,
    config: ServerConfig,
    net: risgraph_net::NetConfig,
) -> risgraph_net::NetServer {
    risgraph_net::NetServer::start(algorithms, capacity, config, net).expect("loopback net server")
}

/// Build an engine over a runtime-selected storage backend (shared with
/// the bench drivers).
pub fn engine_on(
    kind: &BackendKind,
    algorithms: Vec<DynAlgorithm>,
    capacity: usize,
    config: EngineConfig,
) -> Engine<AnyStore> {
    let store = AnyStore::open(
        kind,
        capacity,
        StoreConfig {
            index_threshold: config.index_threshold,
            auto_create_vertices: true,
        },
    )
    .expect("backend open");
    Engine::from_store(store, algorithms, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temp_paths_are_unique() {
        assert_ne!(temp_path("a"), temp_path("a"));
    }
}
