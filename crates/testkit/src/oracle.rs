//! The oracle: a live edge multiset plus from-scratch recomputation.
//!
//! Every differential test in the workspace follows the same protocol —
//! mirror each applied update into a `Vec<(src, dst, weight)>` multiset
//! and, at checkpoints, compare the incremental engine's values against
//! [`reference::compute`] over the multiset. These helpers are that
//! protocol, extracted from the former per-suite copies in
//! `tests/end_to_end.rs`, `tests/proptest_invariants.rs` and
//! `tests/server_semantics.rs`.

use risgraph_algorithms::{reference, Monotonic};
use risgraph_common::ids::Update;
use risgraph_core::engine::Engine;
use risgraph_storage::DynamicGraph;

/// One live edge: `(src, dst, weight)`. Duplicates are represented by
/// repeated entries (multiset semantics, matching the stores).
pub type LiveEdge = (u64, u64, u64);

/// Mirror one update into the live multiset. Deletions remove the first
/// matching entry and are no-ops when the edge is absent (mirroring an
/// engine that reported `EdgeNotFound`); vertex ops don't touch edges.
pub fn apply_update(live: &mut Vec<LiveEdge>, u: &Update) {
    match u {
        Update::InsEdge(e) => live.push((e.src, e.dst, e.data)),
        Update::DelEdge(e) => {
            if let Some(p) = live
                .iter()
                .position(|&(s, d, w)| s == e.src && d == e.dst && w == e.data)
            {
                live.swap_remove(p);
            }
        }
        _ => {}
    }
}

/// Mirror a whole batch (e.g. a replayed WAL) into the live multiset.
pub fn apply_all(live: &mut Vec<LiveEdge>, updates: &[Update]) {
    for u in updates {
        apply_update(live, u);
    }
}

/// Ground-truth values for `alg` over the multiset, for vertices
/// `0..n`.
pub fn oracle_values<A: Monotonic<Value = u64>>(alg: &A, n: usize, live: &[LiveEdge]) -> Vec<u64> {
    reference::compute(alg, n, live)
}

/// Assert that algorithm slot `algo` of `engine` matches precomputed
/// oracle values — use when the caller already holds `want` for other
/// comparisons, to avoid recomputing the reference.
pub fn assert_values_match<G: DynamicGraph>(
    engine: &Engine<G>,
    algo: usize,
    want: &[u64],
    ctx: &str,
) {
    for v in 0..want.len() as u64 {
        assert_eq!(
            engine.value(algo, v),
            want[v as usize],
            "engine diverged from oracle at vertex {v} ({ctx})"
        );
    }
}

/// Assert that algorithm slot `algo` of `engine` matches the oracle on
/// every vertex. `ctx` names the failure site (dataset, seed, step…).
pub fn assert_engine_matches<G: DynamicGraph, A: Monotonic<Value = u64>>(
    engine: &Engine<G>,
    algo: usize,
    alg: &A,
    n: usize,
    live: &[LiveEdge],
    ctx: &str,
) {
    assert_values_match(engine, algo, &oracle_values(alg, n, live), ctx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use risgraph_common::ids::Edge;

    #[test]
    fn deletion_removes_one_copy() {
        let mut live = vec![(0, 1, 2), (0, 1, 2)];
        apply_update(&mut live, &Update::DelEdge(Edge::new(0, 1, 2)));
        assert_eq!(live.len(), 1);
        // Absent edge: no-op.
        apply_update(&mut live, &Update::DelEdge(Edge::new(9, 9, 9)));
        assert_eq!(live.len(), 1);
    }

    #[test]
    fn vertex_ops_are_ignored() {
        let mut live = vec![(0, 1, 0)];
        apply_update(&mut live, &Update::InsVertex(7));
        apply_update(&mut live, &Update::DelVertex(7));
        assert_eq!(live, vec![(0, 1, 0)]);
    }
}
