//! The cross-shard differential harness.
//!
//! The sharded epoch loop rests on one claim: because safe updates
//! commute (§4), partitioning the safe phase across shard executors
//! changes *scheduling* but never *results*. This module turns the
//! claim into a checkable property. Drive identical per-session update
//! streams through two servers — typically `shards = 1` (the serial
//! coordinator) and `shards = N` — and assert, update by update, that
//! both produce:
//!
//! * the same reply outcome, safety class and result-change count;
//! * the same point-in-time query answers (`get_value`) at each reply's
//!   version, both between the servers and against the oracle;
//! * the same `get_modified_vertices` set per version;
//! * and finally the same value snapshot, current version, and
//!   count-annotated store contents.
//!
//! Version *numbers* are intentionally not compared across servers:
//! with concurrent sessions the global version order is a race in both
//! configurations. What must agree is everything observable through
//! those versions. Use [`crate::streams::disjoint_session_streams`] so
//! each session's observations are deterministic.

use std::sync::Arc;

use risgraph_algorithms::Monotonic;
use risgraph_common::ids::{Update, VersionId};
use risgraph_core::engine::{Engine, Safety};
use risgraph_core::server::Server;
use risgraph_storage::DynamicGraph;

use crate::oracle::{apply_update, oracle_values, LiveEdge};

/// What one session observed for one submitted update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepTrace {
    /// Whether the update was applied.
    pub ok: bool,
    /// How it executed (`None` on error).
    pub safety: Option<Safety>,
    /// Result-change records reported by the reply.
    pub result_changes: usize,
    /// The version id the reply carried.
    pub version: VersionId,
}

/// One session's full observation sequence.
#[derive(Debug, Clone)]
pub struct SessionTrace {
    /// Per-submitted-update observations, in submission order.
    pub steps: Vec<StepTrace>,
}

/// Submit each stream through its own live session (one thread per
/// stream, synchronous one-outstanding-op clients as in §6.2) and
/// record what every session observed.
pub fn drive_sessions(server: &Arc<Server>, streams: &[Vec<Update>]) -> Vec<SessionTrace> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let server = Arc::clone(server);
                scope.spawn(move || {
                    let session = server.session();
                    let steps = stream
                        .iter()
                        .map(|u| {
                            let reply = session.submit_update(u);
                            match reply.outcome {
                                Ok(applied) => StepTrace {
                                    ok: true,
                                    safety: Some(applied.safety),
                                    result_changes: applied.result_changes,
                                    version: reply.version,
                                },
                                Err(_) => StepTrace {
                                    ok: false,
                                    safety: None,
                                    result_changes: 0,
                                    version: reply.version,
                                },
                            }
                        })
                        .collect();
                    SessionTrace { steps }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread"))
            .collect()
    })
}

/// [`drive_sessions`] with fully pipelined clients: every session's
/// whole stream is submitted tag-first (round-robin across sessions,
/// from one thread — all server channels are unbounded) and only then
/// are the replies collected. Every session therefore provably has
/// operations pending at the same time, which is what makes the
/// coordinator's unsafe queue actually fill up — the precondition for
/// the parallel unsafe phase (or its conflict fallback) to engage.
/// The server executes one session's updates in submission order
/// regardless of pipelining (the gather phase drains session queues
/// FIFO and the first unsafe op blocks the rest), so the traces are
/// directly comparable with [`drive_sessions`] output and feed
/// [`assert_servers_equivalent`] unchanged.
pub fn drive_sessions_pipelined(
    server: &Arc<Server>,
    streams: &[Vec<Update>],
) -> Vec<SessionTrace> {
    let sessions: Vec<_> = streams.iter().map(|_| server.session()).collect();
    let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
    for t in 0..longest {
        for (session, stream) in sessions.iter().zip(streams) {
            if let Some(u) = stream.get(t) {
                session.submit_update_tagged(u, t as u64).expect("submit");
            }
        }
    }
    sessions
        .iter()
        .zip(streams)
        .map(|(session, stream)| {
            let mut steps = vec![None; stream.len()];
            for _ in 0..stream.len() {
                let (tag, reply) = session.recv_tagged().expect("reply");
                let step = match reply.outcome {
                    Ok(applied) => StepTrace {
                        ok: true,
                        safety: Some(applied.safety),
                        result_changes: applied.result_changes,
                        version: reply.version,
                    },
                    Err(_) => StepTrace {
                        ok: false,
                        safety: None,
                        result_changes: 0,
                        version: reply.version,
                    },
                };
                steps[tag as usize] = Some(step);
            }
            SessionTrace {
                steps: steps
                    .into_iter()
                    .map(|s| s.expect("reply per tag"))
                    .collect(),
            }
        })
        .collect()
}

/// The network-path twin of [`drive_sessions`]: submit each stream
/// through its own [`risgraph_net::NetClient`] connection (one thread
/// per stream, blocking one-outstanding-op clients as in §6.2) and
/// record what every connection observed, in the same [`SessionTrace`]
/// shape — so [`assert_servers_equivalent`] can compare a served
/// network path against an in-process one, update by update.
pub fn drive_net_sessions(
    addr: std::net::SocketAddr,
    streams: &[Vec<Update>],
) -> Vec<SessionTrace> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                scope.spawn(move || {
                    let client = risgraph_net::NetClient::connect(addr).expect("connect");
                    let steps = stream
                        .iter()
                        .map(|u| {
                            let reply = client.submit_update(u).expect("wire round-trip");
                            match reply.outcome {
                                Ok(applied) => StepTrace {
                                    ok: true,
                                    safety: Some(if applied.safe {
                                        Safety::Safe
                                    } else {
                                        Safety::Unsafe
                                    }),
                                    result_changes: applied.result_changes as usize,
                                    version: reply.version,
                                },
                                Err(_) => StepTrace {
                                    ok: false,
                                    safety: None,
                                    result_changes: 0,
                                    version: reply.version,
                                },
                            }
                        })
                        .collect();
                    SessionTrace { steps }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("net session thread"))
            .collect()
    })
}

/// A store-contents fingerprint: total edge count plus each vertex's
/// sorted `(dst, weight, multiplicity)` adjacency.
pub type StoreFingerprint = (u64, Vec<Vec<(u64, u64, u32)>>);

/// Count-annotated adjacency of every vertex in `0..n` plus the edge
/// total — the canonical "store contents" fingerprint two equivalent
/// servers must share, whatever their backend layout.
pub fn store_fingerprint<G: DynamicGraph>(engine: &Engine<G>, n: u64) -> StoreFingerprint {
    engine.with_store(|s| raw_store_fingerprint(s, n))
}

/// [`store_fingerprint`] for a bare store (no engine around it) — what
/// the cold-restart suite compares a reopened block file against.
pub fn raw_store_fingerprint<G: DynamicGraph>(store: &G, n: u64) -> StoreFingerprint {
    let mut all = Vec::with_capacity(n as usize);
    for v in 0..n {
        let mut adj = Vec::new();
        store.scan_out(v, &mut |d, w, c| adj.push((d, w, c)));
        adj.sort_unstable();
        all.push(adj);
    }
    (store.num_edges(), all)
}

/// The vertices a stream mentions (the session's region), sorted.
fn touched_vertices(stream: &[Update]) -> Vec<u64> {
    let mut vs: Vec<u64> = stream
        .iter()
        .flat_map(|u| match u {
            Update::InsEdge(e) | Update::DelEdge(e) => vec![e.src, e.dst],
            Update::InsVertex(v) | Update::DelVertex(v) => vec![*v],
        })
        .collect();
    vs.sort_unstable();
    vs.dedup();
    vs
}

/// Assert full observable equivalence of two servers that executed the
/// same per-session `streams` (see module docs for what is compared).
/// Sessions must touch pairwise-disjoint vertex regions — that is what
/// makes each session's oracle well-defined under concurrency.
///
/// `alg` is the single maintained algorithm of both servers, `n` the
/// vertex universe for snapshots and fingerprints, `label` names the
/// configuration pair in failures.
#[allow(clippy::too_many_arguments)] // two (server, trace) pairs + the shared inputs
pub fn assert_servers_equivalent<A: Monotonic<Value = u64> + Copy>(
    label: &str,
    a: &Server,
    traces_a: &[SessionTrace],
    b: &Server,
    traces_b: &[SessionTrace],
    streams: &[Vec<Update>],
    alg: A,
    n: usize,
) {
    assert_eq!(traces_a.len(), streams.len());
    assert_eq!(traces_b.len(), streams.len());
    let query_a = a.session();
    let query_b = b.session();

    for (i, stream) in streams.iter().enumerate() {
        let (ta, tb) = (&traces_a[i].steps, &traces_b[i].steps);
        assert_eq!(ta.len(), stream.len(), "{label}: session {i} trace length");
        assert_eq!(tb.len(), stream.len(), "{label}: session {i} trace length");
        let touched = touched_vertices(stream);
        let mut live: Vec<LiveEdge> = Vec::new();
        let mut prev_version = 0;
        for (t, u) in stream.iter().enumerate() {
            let (sa, sb) = (ta[t], tb[t]);
            let ctx = format!("{label}: session {i} step {t} ({u:?})");
            assert_eq!(sa.ok, sb.ok, "{ctx}: outcome");
            assert_eq!(sa.safety, sb.safety, "{ctx}: safety class");
            assert_eq!(sa.result_changes, sb.result_changes, "{ctx}: changes");
            if !sa.ok {
                continue;
            }
            assert!(sa.version > prev_version, "{ctx}: version monotonicity");
            prev_version = sa.version;
            apply_update(&mut live, u);

            // Point-in-time queries at each server's own version for
            // this step must agree with the session-local oracle.
            let want = oracle_values(&alg, n, &live);
            for &v in &touched {
                let va = query_a.get_value(0, sa.version, v).unwrap();
                let vb = query_b.get_value(0, sb.version, v).unwrap();
                assert_eq!(va, want[v as usize], "{ctx}: server A value of {v}");
                assert_eq!(vb, want[v as usize], "{ctx}: server B value of {v}");
            }
            // Identical history: the same versions record the same
            // modification sets, confined to this session's region.
            let mut ma = query_a.get_modified_vertices(0, sa.version).unwrap();
            let mut mb = query_b.get_modified_vertices(0, sb.version).unwrap();
            ma.sort_unstable();
            mb.sort_unstable();
            assert_eq!(ma, mb, "{ctx}: modified-vertex sets");
            for v in &ma {
                assert!(
                    touched.binary_search(v).is_ok(),
                    "{ctx}: modification leaked outside the session region (vertex {v})"
                );
            }
        }
    }

    // Global post-conditions: same number of versions handed out, same
    // final values, same store contents.
    assert_eq!(
        a.current_version(),
        b.current_version(),
        "{label}: total versions assigned"
    );
    assert_eq!(
        a.engine().values_snapshot(0, n),
        b.engine().values_snapshot(0, n),
        "{label}: final value snapshots"
    );
    assert_eq!(
        store_fingerprint(a.engine(), n as u64),
        store_fingerprint(b.engine(), n as u64),
        "{label}: final store contents"
    );
}
