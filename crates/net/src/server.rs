//! [`NetServer`]: the multi-threaded TCP front end over
//! [`risgraph_core::server::Server`].
//!
//! Each accepted connection gets one [`Session`](risgraph_core::server::Session)
//! and three threads —
//! reader, replier, writer (see the crate docs for the data flow).
//! The accept loop, connection registry and drain-then-shutdown
//! choreography live here.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::unbounded;
use risgraph_common::protocol::{
    read_frame, write_frame, Request, Response, StatsReport, WireError, MAX_FRAME,
    MAX_RESPONSE_FRAME,
};
use risgraph_common::{Error, Result};
use risgraph_core::engine::{DynAlgorithm, Safety};
use risgraph_core::server::{Op, Server, ServerConfig};

/// Network-tier tuning.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port —
    /// handy for tests; read it back via [`NetServer::local_addr`]).
    pub listen: String,
    /// Maximum accepted frame payload, bytes. Oversized frames are
    /// rejected before allocation and close the connection.
    pub max_frame: usize,
    /// Per-connection in-flight update window. Once this many updates
    /// are unanswered the reader stops consuming the socket, so TCP
    /// flow control propagates the backpressure to the client.
    pub window: usize,
    /// Cadence of replication heartbeats on subscribed connections —
    /// both the idle keep-alive and the lag reference (each heartbeat
    /// carries the leader's current version).
    pub heartbeat_interval: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            listen: "127.0.0.1:0".into(),
            max_frame: MAX_FRAME,
            window: 256,
            heartbeat_interval: Duration::from_millis(100),
        }
    }
}

/// The per-connection in-flight window: a tiny semaphore with a
/// `closed` latch so the replier knows when the drain is complete.
struct Window {
    state: Mutex<WindowState>,
    cv: Condvar,
}

struct WindowState {
    inflight: usize,
    /// Set by the reader when it stops submitting (EOF, error, drain).
    closed: bool,
}

impl Window {
    fn new() -> Self {
        Window {
            state: Mutex::new(WindowState {
                inflight: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until a slot frees up; `false` once closed.
    fn acquire(&self, cap: usize) -> bool {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.closed {
                return false;
            }
            if s.inflight < cap {
                s.inflight += 1;
                return true;
            }
            s = self.cv.wait(s).unwrap();
        }
    }

    fn release(&self) {
        let mut s = self.state.lock().unwrap();
        s.inflight = s.inflight.saturating_sub(1);
        drop(s);
        self.cv.notify_all();
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// `true` when the reader has stopped and every submitted update
    /// has been answered.
    fn drained(&self) -> bool {
        let s = self.state.lock().unwrap();
        s.closed && s.inflight == 0
    }

    /// `true` once [`Window::close`] has run (drain may still be
    /// outstanding).
    fn closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }
}

/// Registry of live connections: each entry pairs the connection
/// thread's join handle with a stream clone used to half-close the
/// socket at drain time.
type ConnRegistry = Arc<Mutex<Vec<(JoinHandle<()>, TcpStream)>>>;

/// A TCP serving front end wrapping one [`Server`].
pub struct NetServer {
    server: Option<Arc<Server>>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: ConnRegistry,
}

impl NetServer {
    /// Start a [`Server`] with `config` and serve it on `net.listen`.
    pub fn start(
        algorithms: Vec<DynAlgorithm>,
        capacity: usize,
        config: ServerConfig,
        net: NetConfig,
    ) -> Result<NetServer> {
        Self::serve(Server::start(algorithms, capacity, config)?, net)
    }

    /// Serve an already-running [`Server`] (e.g. one that replayed a
    /// WAL or bulk-loaded a dataset first).
    pub fn serve(server: Server, net: NetConfig) -> Result<NetServer> {
        let listener = TcpListener::bind(&net.listen)
            .map_err(|e| Error::Protocol(format!("cannot bind {}: {e}", net.listen)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::Protocol(format!("no local addr: {e}")))?;
        let server = Arc::new(server);
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: ConnRegistry = Arc::new(Mutex::new(Vec::new()));

        // Polled nonblocking accept: a blocked `accept()` cannot be
        // reliably interrupted from another thread with std alone, so
        // the loop polls and re-checks the shutdown flag — shutdown is
        // then bounded by one poll interval instead of depending on a
        // wake-up connection that may be unroutable (e.g. 0.0.0.0
        // binds behind a firewall).
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Protocol(format!("nonblocking listener: {e}")))?;
        let accept_server = Arc::clone(&server);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_conns = Arc::clone(&conns);
        let accept_net = net.clone();
        let accept_thread = std::thread::Builder::new()
            .name("risgraph-net-accept".into())
            .spawn(move || {
                loop {
                    // Snapshot the flag *before* accepting: a client
                    // whose handshake completed pre-shutdown sits in
                    // the backlog and must still be served (drained),
                    // so the loop only exits once shutdown is set AND
                    // the backlog is empty.
                    let draining = accept_shutdown.load(Ordering::Acquire);
                    let stream = match listener.accept() {
                        Ok((stream, _)) => stream,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if draining {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(10));
                            continue;
                        }
                        Err(_) => {
                            if draining {
                                break;
                            }
                            // E.g. EMFILE under fd exhaustion: returned
                            // immediately by a nonblocking listener, so
                            // back off instead of spinning a core.
                            std::thread::sleep(Duration::from_millis(10));
                            continue;
                        }
                    };
                    // Accepted sockets inherit the listener's
                    // nonblocking mode on some platforms.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let Ok(registered) = stream.try_clone() else {
                        continue;
                    };
                    let conn_server = Arc::clone(&accept_server);
                    let conn_net = accept_net.clone();
                    let conn_shutdown = Arc::clone(&accept_shutdown);
                    let handle = std::thread::Builder::new()
                        .name("risgraph-net-conn".into())
                        .spawn(move || {
                            handle_connection(conn_server, stream, conn_net, conn_shutdown)
                        })
                        .expect("spawn connection thread");
                    let mut conns = accept_conns.lock().unwrap();
                    // Prune finished connections so a long-running
                    // server doesn't accumulate one fd + join handle
                    // per connection it ever served.
                    let mut i = 0;
                    while i < conns.len() {
                        if conns[i].0.is_finished() {
                            let (done, stale) = conns.swap_remove(i);
                            let _ = done.join();
                            drop(stale);
                        } else {
                            i += 1;
                        }
                    }
                    conns.push((handle, registered));
                }
            })
            .expect("spawn accept thread");

        Ok(NetServer {
            server: Some(server),
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The wrapped server (stats, engine access, in-process sessions —
    /// the differential suite queries both paths through this).
    pub fn server(&self) -> &Server {
        self.server.as_ref().expect("server live until shutdown")
    }

    /// Graceful drain-then-shutdown: stop accepting, half-close every
    /// connection (in-flight updates finish, their replies flush), join
    /// the connection threads, then shut the inner server down — which
    /// drains its epochs and flushes WAL and store.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // The polled accept loop observes the flag within one interval.
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // Half-close the read side of every connection: readers see
        // EOF, stop submitting, and the replier/writer pair drains the
        // in-flight tail before the threads exit.
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for (_, stream) in &conns {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for (handle, _) in conns {
            let _ = handle.join();
        }
        if let Some(server) = self.server.take() {
            match Arc::try_unwrap(server) {
                Ok(server) => server.shutdown(),
                Err(_) => unreachable!("all connection threads joined"),
            }
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

/// Translate a core [`Reply`](risgraph_core::server::Reply) into a wire
/// [`Response`].
fn reply_to_response(reply: risgraph_core::server::Reply) -> Response {
    match reply.outcome {
        Ok(applied) => Response::Applied {
            version: reply.version,
            safe: applied.safety == Safety::Safe,
            result_changes: applied.result_changes as u64,
        },
        Err(e) => Response::Failed {
            version: reply.version,
            error: WireError::from_error(&e),
        },
    }
}

fn stats_report(server: &Server) -> StatsReport {
    let s = server.stats();
    // One snapshot for every latency field, so the report is internally
    // consistent (p50 ≤ p999, count matches) under concurrent recording.
    let lat = s.update_latency.snapshot();
    let phase = s.unsafe_phase.snapshot();
    StatsReport {
        version: server.current_version(),
        epochs: s.epochs.load(Ordering::Relaxed),
        safe_executed: s.safe_executed.load(Ordering::Relaxed),
        unsafe_executed: s.unsafe_executed.load(Ordering::Relaxed),
        demotions: s.demotions.load(Ordering::Relaxed),
        threshold: s.threshold.load(Ordering::Relaxed),
        latency_count: lat.count(),
        latency_p50_ns: lat.quantile_ns(0.5),
        latency_p99_ns: lat.quantile_ns(0.99),
        latency_p999_ns: lat.quantile_ns(0.999),
        latency_max_ns: if lat.count() == 0 { 0 } else { lat.max_ns() },
        followers: server.feed().map_or(0, |f| f.followers() as u64),
        replication_records: server.feed().map_or(0, |f| f.len()),
        replication_lag: 0, // a leader is its own watermark
        unsafe_parallel_groups: s.unsafe_parallel_groups.load(Ordering::Relaxed),
        unsafe_serial_fallbacks: s.unsafe_serial_fallbacks.load(Ordering::Relaxed),
        unsafe_phase_count: phase.count(),
        unsafe_phase_p50_ns: phase.quantile_ns(0.5),
        unsafe_phase_p99_ns: phase.quantile_ns(0.99),
        unsafe_phase_p999_ns: phase.quantile_ns(0.999),
    }
}

/// Validate a wire-supplied algorithm index before it reaches
/// unchecked `history[algo]`/engine indexing. (Vertex bounds are
/// enforced by [`Session`](risgraph_core::server::Session) itself, and
/// update-path capacity growth by `ServerConfig::max_capacity`.)
fn check_algo(server: &Server, algo: u32) -> std::result::Result<(), Error> {
    if algo as usize >= server.engine().num_algorithms() {
        return Err(Error::Protocol(format!(
            "algorithm index {algo} out of range ({} maintained)",
            server.engine().num_algorithms()
        )));
    }
    Ok(())
}

/// A [`Response::Failed`] for `e` at the session's current version.
fn failed(session: &risgraph_core::server::Session, e: &Error) -> Response {
    Response::Failed {
        version: session.get_current_version(),
        error: WireError::from_error(e),
    }
}

/// The producer side of a connection's bounded writer hand-off: at most
/// `cap` frames queued at once; [`Outbound::send`] blocks when the
/// writer is behind and returns `false` once the writer is gone.
#[derive(Clone)]
struct Outbound {
    frames: crossbeam::channel::Sender<Vec<u8>>,
    budget: Arc<Window>,
    cap: usize,
}

impl Outbound {
    fn send(&self, payload: Vec<u8>) -> bool {
        if !self.budget.acquire(self.cap) {
            return false;
        }
        self.frames.send(payload).is_ok()
    }

    fn send_failed(
        &self,
        session: &risgraph_core::server::Session,
        req_id: u64,
        e: &Error,
    ) -> bool {
        self.send(failed(session, e).encode(req_id))
    }
}

/// Closes a [`Window`] when dropped, so the replier and writer threads
/// unwind even if the owning thread panics mid-loop (a leaked open
/// window would leave them polling forever).
struct CloseOnDrop(Arc<Window>);

impl Drop for CloseOnDrop {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Updates per [`Response::SnapshotChunk`] frame — at 26 encoded bytes
/// per update a full chunk stays far below the response frame cap.
const SNAPSHOT_CHUNK_UPDATES: usize = 1 << 16;

/// Ship the leader's checkpoint snapshot to a fresh follower: the
/// structure batch in bounded [`Response::SnapshotChunk`] frames, then
/// [`Response::SnapshotDone`] carrying the resume coordinates. Returns
/// the feed index live streaming resumes from; `Err(Some(_))` is a
/// protocol-level failure the caller reports to the client, `Err(None)`
/// means the send path died.
fn serve_snapshot_bootstrap(
    server: &Server,
    out: &Outbound,
    sub_id: u64,
) -> std::result::Result<u64, Option<Error>> {
    let Some((updates, resume_index, resume_version)) = server.snapshot_for_bootstrap() else {
        return Err(Some(Error::Protocol(
            "feed retention advanced past the requested offset but no checkpoint \
             snapshot is readable"
                .into(),
        )));
    };
    for chunk in updates.chunks(SNAPSHOT_CHUNK_UPDATES) {
        if !out.send(Response::SnapshotChunk(chunk.to_vec()).encode(sub_id)) {
            return Err(None);
        }
    }
    // An empty structure still ships the Done frame — the resume
    // coordinates are what flips the replica out of "fresh".
    let done = Response::SnapshotDone {
        resume_index,
        resume_version,
    };
    if !out.send(done.encode(sub_id)) {
        return Err(None);
    }
    Ok(resume_index)
}

/// Stream the replication feed to a subscribed follower. Runs on the
/// connection's reader thread (which stops reading the socket — the
/// subscription is one-way). Every outbound frame passes the bounded
/// writer budget, so a slow follower throttles *this* thread only; the
/// epoch loop publishes to the feed without ever blocking on us.
/// Returns when the client is gone (send fails), the server drains, or
/// the feed stops growing during shutdown.
#[allow(clippy::too_many_arguments)] // the subscription's full wiring: feed cursor + outbound + lifecycle
fn stream_feed(
    server: &Server,
    feed: &risgraph_core::ReplicationFeed,
    slot: u64,
    mut next: u64,
    out: &Outbound,
    sub_id: u64,
    shutdown: &AtomicBool,
    heartbeat: Duration,
) {
    // `records` is the next-to-send index of *this* subscription:
    // frames are ordered, so a follower that has applied fewer when the
    // heartbeat arrives knows frames were lost in between (its gap
    // detector for drops at the stream tail).
    let beat = |next: u64| Response::Heartbeat {
        records: next,
        version: server.current_version(),
    };
    // Subscribe acknowledgement: an immediate heartbeat tells the
    // follower where the stream stands before any record arrives.
    if !out.send(beat(next).encode(sub_id)) {
        return;
    }
    let mut last_beat = std::time::Instant::now();
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(rec) = feed.get(next) {
            if !out.send(risgraph_common::protocol::encode_wal_epoch(&rec, sub_id)) {
                return;
            }
            next += 1;
            // The send landed in the writer queue: everything below
            // `next` is this follower's problem now, so release it for
            // eviction once the checkpoint cut also passes it.
            feed.set_watermark(slot, next);
        } else {
            // Caught up: wait for growth in short slices so shutdown
            // and the heartbeat cadence stay responsive.
            feed.wait_beyond(next, heartbeat.min(Duration::from_millis(50)));
        }
        if last_beat.elapsed() >= heartbeat {
            if !out.send(beat(next).encode(sub_id)) {
                return;
            }
            last_beat = std::time::Instant::now();
        }
    }
}

/// One connection: reader (this thread) + replier + writer.
fn handle_connection(
    server: Arc<Server>,
    stream: TcpStream,
    net: NetConfig,
    shutdown: Arc<AtomicBool>,
) {
    let session = Arc::new(server.session());
    let window = Arc::new(Window::new());
    let window_guard = CloseOnDrop(Arc::clone(&window));

    // Writer: the single owner of the socket's write half; both the
    // reader (query answers, protocol errors) and the replier (update
    // replies) feed it encoded payloads through a *bounded* hand-off —
    // producers acquire a budget slot per frame and the writer releases
    // it once the frame hits the socket, so a peer that stops reading
    // its replies stalls the producers (and, transitively, our reads of
    // its requests) instead of growing server memory without bound.
    let window_cap = net.window.max(1);
    let (frame_tx, frame_rx) = unbounded::<Vec<u8>>();
    let write_budget = Arc::new(Window::new());
    let out = Outbound {
        frames: frame_tx,
        budget: Arc::clone(&write_budget),
        cap: window_cap,
    };
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // A peer that never reads its replies can stall the writer only
    // briefly: the send timeout turns a dead drain into a teardown.
    let _ = write_stream.set_write_timeout(Some(Duration::from_secs(10)));
    let writer_budget = Arc::clone(&write_budget);
    let writer = std::thread::Builder::new()
        .name("risgraph-net-writer".into())
        .spawn(move || {
            let mut w = BufWriter::new(write_stream);
            while let Ok(payload) = frame_rx.recv() {
                // Batch: only pay the flush syscall when no more
                // responses are immediately ready.
                let ok = write_frame(&mut w, &payload).is_ok()
                    && (!frame_rx.is_empty() || w.flush().is_ok());
                writer_budget.release();
                if !ok {
                    break;
                }
            }
            let _ = w.flush();
            // Unblock producers waiting for budget: the client is gone.
            writer_budget.close();
        })
        .expect("spawn writer thread");

    // Replier: drain tagged update replies, re-encode, release window
    // slots. Exits when the reader has closed the window and every
    // in-flight update is answered.
    let replier_session = Arc::clone(&session);
    let replier_window = Arc::clone(&window);
    let replier_out = out.clone();
    let replier = std::thread::Builder::new()
        .name("risgraph-net-replier".into())
        .spawn(move || {
            // Escape hatch: if the window is closed but replies stop
            // arriving (a dead coordinator can never answer the
            // in-flight tail), give up after a deadline instead of
            // wedging this thread — and through the joins, the whole
            // server's shutdown — forever.
            let mut reply_starved_since: Option<std::time::Instant> = None;
            loop {
                match replier_session.recv_tagged_timeout(Duration::from_millis(20)) {
                    Some((req_id, reply)) => {
                        reply_starved_since = None;
                        let delivered = replier_out.send(reply_to_response(reply).encode(req_id));
                        // Keep draining even when the client is gone (the
                        // outbound refuses the frame) so the window empties
                        // and the threads exit — but also close the update
                        // window, so the reader stops applying updates whose
                        // replies can never be delivered.
                        replier_window.release();
                        if !delivered {
                            replier_window.close();
                        }
                    }
                    None => {
                        if replier_window.drained() {
                            return;
                        }
                        if replier_window.closed() {
                            let since =
                                *reply_starved_since.get_or_insert_with(std::time::Instant::now);
                            if since.elapsed() > Duration::from_secs(30) {
                                return;
                            }
                        }
                    }
                }
            }
        })
        .expect("spawn replier thread");

    // Reader loop on this thread.
    let mut r = BufReader::new(stream);
    loop {
        let payload = match read_frame(&mut r, net.max_frame) {
            Ok(Some(p)) => p,
            // Clean EOF or socket teardown: stop reading.
            Ok(None) => break,
            Err(e) => {
                // Malformed framing: the byte stream can no longer be
                // trusted, so report (best-effort, request id 0) and
                // close the connection.
                out.send_failed(&session, 0, &e);
                break;
            }
        };
        let (req_id, request) = match Request::decode(&payload) {
            Ok(x) => x,
            Err(e) => {
                out.send_failed(&session, 0, &e);
                break;
            }
        };
        match request {
            // Updates: pipelined through the tagged session API under
            // the in-flight window. Replies surface via the replier.
            Request::Update(u) => {
                if !window.acquire(window_cap) {
                    break;
                }
                if let Err(e) = session.submit_op_tagged(Op::Single(u), req_id) {
                    window.release();
                    out.send_failed(&session, req_id, &e);
                    break;
                }
            }
            Request::Txn(updates) => {
                if !window.acquire(window_cap) {
                    break;
                }
                if let Err(e) = session.submit_op_tagged(Op::Txn(updates), req_id) {
                    window.release();
                    out.send_failed(&session, req_id, &e);
                    break;
                }
            }
            // Queries: answered inline (they read a versioned snapshot,
            // so they need not wait behind in-flight updates — that is
            // the out-of-order completion the request ids exist for).
            Request::GetValue {
                algo,
                version,
                vertex,
            } => {
                let resp = match check_algo(&server, algo)
                    .and_then(|()| session.get_value(algo as usize, version, vertex))
                {
                    Ok(v) => Response::Value(v),
                    Err(e) => failed(&session, &e),
                };
                if !out.send(resp.encode(req_id)) {
                    break;
                }
            }
            Request::GetParent {
                algo,
                version,
                vertex,
            } => {
                let resp = match check_algo(&server, algo)
                    .and_then(|()| session.get_parent(algo as usize, version, vertex))
                {
                    Ok(p) => Response::Parent(p),
                    Err(e) => failed(&session, &e),
                };
                if !out.send(resp.encode(req_id)) {
                    break;
                }
            }
            Request::GetModified { algo, version } => {
                let resp = match check_algo(&server, algo)
                    .and_then(|()| session.get_modified_vertices(algo as usize, version))
                {
                    Ok(vs) => Response::Modified(vs),
                    Err(e) => failed(&session, &e),
                };
                // The one response whose size scales with the affected
                // area: refuse to emit a frame the client would reject
                // as oversized — failing this request alone beats
                // tearing down every pipelined request on the session.
                let mut payload = resp.encode(req_id);
                if payload.len() > MAX_RESPONSE_FRAME {
                    let e = Error::Protocol(format!(
                        "modification set encodes to {} bytes, over the \
                         {MAX_RESPONSE_FRAME}-byte response limit",
                        payload.len()
                    ));
                    payload = failed(&session, &e).encode(req_id);
                }
                if !out.send(payload) {
                    break;
                }
            }
            Request::CurrentVersion => {
                let resp = Response::Version(session.get_current_version());
                if !out.send(resp.encode(req_id)) {
                    break;
                }
            }
            Request::Release(version) => {
                session.release_history(version);
                if !out.send(Response::Released.encode(req_id)) {
                    break;
                }
            }
            Request::Stats => {
                let resp = Response::Stats(stats_report(&server));
                if !out.send(resp.encode(req_id)) {
                    break;
                }
            }
            // Replication: flip this connection into a one-way feed
            // stream. The reader stops consuming requests; the stream
            // runs until the follower disconnects or the server drains.
            Request::Subscribe { from } => {
                let Some(feed) = server.feed() else {
                    out.send_failed(
                        &session,
                        req_id,
                        &Error::Protocol(
                            "replication disabled on this server (max_followers = 0)".into(),
                        ),
                    );
                    continue;
                };
                if from > feed.len() {
                    out.send_failed(
                        &session,
                        req_id,
                        &Error::Protocol(format!(
                            "subscribe offset {from} beyond the feed ({} records)",
                            feed.len()
                        )),
                    );
                    continue;
                }
                let Some(slot) = feed.try_register(from) else {
                    out.send_failed(
                        &session,
                        req_id,
                        &Error::Protocol(format!(
                            "follower limit reached ({} slots)",
                            feed.max_followers()
                        )),
                    );
                    continue;
                };
                // Registration pinned the retention floor at `from`,
                // so `base` cannot advance past it from here on.
                let feed = Arc::clone(feed);
                let mut next = from;
                if next < feed.base() {
                    // The requested records were evicted past a
                    // checkpoint. A fresh follower bootstraps from the
                    // snapshot; a mid-stream one cannot (its local
                    // state is not the snapshot's), so until follower
                    // snapshot shipping exists the rejection is final.
                    if from != 0 {
                        feed.unregister(slot);
                        out.send_failed(
                            &session,
                            req_id,
                            &Error::Protocol(format!(
                                "subscribe offset {from} is below the feed's retention \
                                 floor ({}); only a fresh follower (offset 0) can \
                                 bootstrap from the snapshot",
                                feed.base()
                            )),
                        );
                        continue;
                    }
                    match serve_snapshot_bootstrap(&server, &out, req_id) {
                        Ok(resume) => {
                            next = resume;
                            feed.set_watermark(slot, next);
                        }
                        Err(Some(e)) => {
                            feed.unregister(slot);
                            out.send_failed(&session, req_id, &e);
                            continue;
                        }
                        // Send path died mid-bootstrap: tear down.
                        Err(None) => {
                            feed.unregister(slot);
                            break;
                        }
                    }
                }
                stream_feed(
                    &server,
                    &feed,
                    slot,
                    next,
                    &out,
                    req_id,
                    &shutdown,
                    net.heartbeat_interval,
                );
                feed.unregister(slot);
                break;
            }
        }
    }

    // Drain: no more submissions; the replier finishes the in-flight
    // tail (flushing replies to clients that are still reading), then
    // the writer drains its queue and everything unwinds. An abruptly
    // disconnected client reaches here through a read error — its
    // session simply drops, and any still-executing updates complete
    // in the epoch loop with their replies discarded.
    drop(window_guard); // closes the window: no more submissions
    let _ = replier.join();
    drop(out);
    let _ = writer.join();
    // Tear the socket down explicitly: the shutdown registry holds a
    // clone of this stream, so merely dropping ours would leave the fd
    // open and the client would never observe the close.
    let _ = r.into_inner().shutdown(Shutdown::Both);
}
