//! [`NetServer`]: the event-driven TCP front end over
//! [`risgraph_core::server::Server`].
//!
//! A fixed pool of reactor workers ([`NetConfig::net_workers`]) owns
//! every connection: each worker runs an epoll loop
//! ([`crate::reactor`]) over its share of the sockets, parsing frames
//! out of per-connection read buffers, submitting updates through the
//! core's tagged session API under a bounded in-flight window, and
//! flushing replies from per-connection write buffers. Reply delivery
//! is push-based: each logical session installs a
//! [`ReplyWaker`](risgraph_core::server::ReplyWaker) that dings the
//! owning worker's eventfd, so no thread ever parks on a reply channel.
//! Total server threads are O(`net_workers`), not O(connections).
//!
//! One TCP connection can multiplex many logical sessions (protocol
//! v2, negotiated via `Hello`): each wire session id maps to its own
//! core [`Session`](risgraph_core::server::Session), which is exactly
//! the granularity the epoch loop orders submissions by — per-session
//! ordering for free, cross-session independence by construction.
//! Replication subscribers (`SUBSCRIBE`) ride the same reactor: the
//! worker pumps the feed into the connection's write buffer on its
//! tick, so followers cost no dedicated threads either.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use risgraph_common::hash::FxHashMap;
use risgraph_common::ids::Update;
use risgraph_common::metrics::{Counter, Gauge, Phase, Registry};
use risgraph_common::protocol::{
    encode_wal_epoch, write_frame, BusyCause, Request, Response, StatsReport, WireError,
    FRAME_HEADER, MAX_FRAME, MAX_RESPONSE_FRAME, PROTOCOL_VERSION,
};
use risgraph_common::{Error, Result};
use risgraph_core::engine::{DynAlgorithm, Safety};
use risgraph_core::server::{Op, Server, ServerConfig, Session as CoreSession};
use risgraph_core::ReplicationFeed;

use crate::reactor::{Event, Interest, Poller, Wakeup};

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok())
}

fn env_millis(key: &str) -> Option<Duration> {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .map(Duration::from_millis)
}

/// Network-tier tuning.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port —
    /// handy for tests; read it back via [`NetServer::local_addr`]).
    pub listen: String,
    /// Maximum accepted frame payload, bytes. Oversized frames are
    /// rejected before allocation and close the connection.
    pub max_frame: usize,
    /// Per-connection in-flight update window (shared across that
    /// connection's sessions). Once this many updates are unanswered
    /// the worker stops reading the socket, so TCP flow control
    /// propagates the backpressure to the client.
    pub window: usize,
    /// Cadence of replication heartbeats on subscribed connections —
    /// both the idle keep-alive and the lag reference (each heartbeat
    /// carries the leader's current version).
    pub heartbeat_interval: Duration,
    /// Reactor worker threads (each runs its own epoll loop over its
    /// share of the connections). Env override: `RISGRAPH_NET_WORKERS`.
    pub net_workers: usize,
    /// A connection whose outbound buffer makes no progress for this
    /// long (peer stopped reading its replies) is torn down. Env
    /// override: `RISGRAPH_NET_SEND_TIMEOUT_MS`.
    pub send_timeout: Duration,
    /// A draining connection still owed replies that receives none for
    /// this long is torn down (a dead coordinator can never answer the
    /// in-flight tail). Env override: `RISGRAPH_NET_REPLY_TIMEOUT_MS`.
    pub reply_timeout: Duration,
    /// Cap on logical sessions one connection may open (protocol v2
    /// multiplexing). Exceeding it fails the offending request; the
    /// connection stays up.
    pub max_sessions_per_conn: usize,
    /// Global admission budget: updates in flight across **all**
    /// connections and workers. Once exhausted, v2 connections get a
    /// [`Response::Busy`] shed (cheap: no session allocation, no epoch-
    /// loop touch) while v1 connections park under TCP backpressure —
    /// byte-compatible with the pre-admission protocol. `0` disables
    /// the budget. Env override: `RISGRAPH_NET_INFLIGHT_BUDGET`.
    pub inflight_budget: usize,
    /// Per logical (v2) session cap on in-flight updates, keyed by the
    /// wire session id. Exceeding it sheds that request with
    /// [`Response::Busy`] without touching the others. `0` disables
    /// the quota. Env override: `RISGRAPH_NET_SESSION_QUOTA`.
    pub session_quota: usize,
    /// High-water mark on a worker's un-adopted inbox plus ready
    /// backlog. While over it, new connections are refused with a
    /// best-effort connection-level error before any state is
    /// allocated, and `Hello` is answered with [`Response::Busy`].
    /// `0` disables the gate. Env override:
    /// `RISGRAPH_NET_ACCEPT_HIGH_WATER`.
    pub accept_high_water: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        let workers = env_usize("RISGRAPH_NET_WORKERS").unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        NetConfig {
            listen: "127.0.0.1:0".into(),
            max_frame: MAX_FRAME,
            window: 256,
            heartbeat_interval: Duration::from_millis(100),
            net_workers: workers.clamp(1, 4),
            send_timeout: env_millis("RISGRAPH_NET_SEND_TIMEOUT_MS")
                .unwrap_or(Duration::from_secs(10)),
            reply_timeout: env_millis("RISGRAPH_NET_REPLY_TIMEOUT_MS")
                .unwrap_or(Duration::from_secs(30)),
            max_sessions_per_conn: 1 << 16,
            inflight_budget: env_usize("RISGRAPH_NET_INFLIGHT_BUDGET").unwrap_or(0),
            session_quota: env_usize("RISGRAPH_NET_SESSION_QUOTA").unwrap_or(0),
            accept_high_water: env_usize("RISGRAPH_NET_ACCEPT_HIGH_WATER").unwrap_or(4096),
        }
    }
}

/// Reserved poller token for a worker's wakeup eventfd.
const TOKEN_WAKEUP: u64 = 0;
/// Reserved poller token for the listener (worker 0 only).
const TOKEN_LISTENER: u64 = 1;
/// First connection token; tokens count up and are never reused, so a
/// stale waker entry for a closed connection can never alias a live one.
const TOKEN_FIRST_CONN: u64 = 2;

/// Soft cap on a connection's outbound buffer. Reaching it stalls
/// query processing and feed pumping (replies for already-submitted
/// updates still land — their count is bounded by the window); the
/// single frame that crosses the cap may exceed it.
const OUT_BUF_SOFT_CAP: usize = MAX_RESPONSE_FRAME;

/// Bytes read from one socket per readiness event before yielding to
/// other connections (level-triggered epoll re-fires if more is
/// pending).
const READ_BURST: usize = 256 * 1024;

/// Updates per [`Response::SnapshotChunk`] frame — at 26 encoded bytes
/// per update a full chunk stays far below the response frame cap.
const SNAPSHOT_CHUNK_UPDATES: usize = 1 << 16;

/// The slice of a worker other threads can see: the acceptor hands
/// off sockets through `inbox`, reply wakers enqueue `(token, sid)`
/// drain requests through `ready`, and both ding `wakeup` to pull the
/// worker out of `epoll_wait`.
struct WorkerShared {
    wakeup: Wakeup,
    inbox: Mutex<Vec<TcpStream>>,
    ready: Mutex<Vec<(u64, u64)>>,
    conns: AtomicUsize,
}

/// Per-worker reactor gauges, registered in the core server's metrics
/// registry as `net.worker.<i>.*` and refreshed on every reactor tick
/// — live occupancy of the event loop, readable over `METRICS` and the
/// Prometheus exposition.
struct WorkerGauges {
    connections: Arc<Gauge>,
    sessions: Arc<Gauge>,
    inbox_depth: Arc<Gauge>,
    ready_backlog: Arc<Gauge>,
}

/// Process-wide admission state, shared by every worker. The global
/// occupancy counter is the single synchronization point between
/// workers; everything else is monitoring (registry counters under
/// `net.admission.*`).
struct Admission {
    /// Updates admitted and not yet answered, across all connections.
    inflight: AtomicUsize,
    admitted: Arc<Counter>,
    shed_budget: Arc<Counter>,
    shed_quota: Arc<Counter>,
    shed_overload: Arc<Counter>,
    evicted: Arc<Counter>,
    occupancy: Arc<Gauge>,
}

impl Admission {
    fn registered(registry: &Registry) -> Admission {
        Admission {
            inflight: AtomicUsize::new(0),
            admitted: registry.counter("net.admission.admitted"),
            shed_budget: registry.counter("net.admission.shed_budget"),
            shed_quota: registry.counter("net.admission.shed_quota"),
            shed_overload: registry.counter("net.admission.shed_overload"),
            evicted: registry.counter("net.admission.evicted"),
            occupancy: registry.gauge("net.admission.inflight"),
        }
    }

    /// Reserve one budget slot. With `budget == 0` (unlimited) the
    /// occupancy is still tracked so the gauge stays meaningful.
    fn try_acquire(&self, budget: usize) -> bool {
        if budget == 0 {
            let v = self.inflight.fetch_add(1, Ordering::AcqRel) + 1;
            self.occupancy.store(v as u64, Ordering::Relaxed);
            return true;
        }
        let mut cur = self.inflight.load(Ordering::Acquire);
        loop {
            if cur >= budget {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.occupancy.store(cur as u64 + 1, Ordering::Relaxed);
                    return true;
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Return `n` budget slots (replies delivered, or a teardown
    /// abandoning a connection's remaining in-flight share).
    fn release(&self, n: usize) {
        if n == 0 {
            return;
        }
        let v = self
            .inflight
            .fetch_sub(n, Ordering::AcqRel)
            .saturating_sub(n);
        self.occupancy.store(v as u64, Ordering::Relaxed);
    }
}

/// A TCP serving front end wrapping one [`Server`].
pub struct NetServer {
    server: Option<Arc<Server>>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<Arc<WorkerShared>>,
    threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Start a [`Server`] with `config` and serve it on `net.listen`.
    pub fn start(
        algorithms: Vec<DynAlgorithm>,
        capacity: usize,
        config: ServerConfig,
        net: NetConfig,
    ) -> Result<NetServer> {
        Self::serve(Server::start(algorithms, capacity, config)?, net)
    }

    /// Serve an already-running [`Server`] (e.g. one that replayed a
    /// WAL or bulk-loaded a dataset first).
    pub fn serve(server: Server, net: NetConfig) -> Result<NetServer> {
        let listener = TcpListener::bind(&net.listen)
            .map_err(|e| Error::Protocol(format!("cannot bind {}: {e}", net.listen)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::Protocol(format!("no local addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Protocol(format!("nonblocking listener: {e}")))?;
        let server = Arc::new(server);
        let shutdown = Arc::new(AtomicBool::new(false));
        let admission = Arc::new(Admission::registered(server.metrics()));

        let num_workers = net.net_workers.max(1);
        let mut workers = Vec::with_capacity(num_workers);
        for _ in 0..num_workers {
            workers.push(Arc::new(WorkerShared {
                wakeup: Wakeup::new()?,
                inbox: Mutex::new(Vec::new()),
                ready: Mutex::new(Vec::new()),
                conns: AtomicUsize::new(0),
            }));
        }

        let mut threads = Vec::with_capacity(num_workers);
        let mut listener = Some(listener);
        for (i, shared) in workers.iter().enumerate() {
            let poller = Poller::new()?;
            poller.add(shared.wakeup.fd(), TOKEN_WAKEUP, Interest::READ)?;
            let worker_listener = if i == 0 { listener.take() } else { None };
            if let Some(l) = &worker_listener {
                poller.add(l.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
            }
            let registry = server.metrics();
            let worker = Worker {
                ctx: Ctx {
                    server: Arc::clone(&server),
                    net: net.clone(),
                    shared: Arc::clone(shared),
                    admission: Arc::clone(&admission),
                    poller,
                },
                gauges: WorkerGauges {
                    connections: registry.gauge(&format!("net.worker.{i}.connections")),
                    sessions: registry.gauge(&format!("net.worker.{i}.sessions")),
                    inbox_depth: registry.gauge(&format!("net.worker.{i}.inbox_depth")),
                    ready_backlog: registry.gauge(&format!("net.worker.{i}.ready_backlog")),
                },
                peers: workers.clone(),
                shutdown: Arc::clone(&shutdown),
                conns: FxHashMap::default(),
                next_token: TOKEN_FIRST_CONN,
                listener: worker_listener,
                listener_paused: None,
                rr: 0,
                drain_started: false,
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("risgraph-net-{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn net worker"),
            );
        }

        Ok(NetServer {
            server: Some(server),
            local_addr,
            shutdown,
            workers,
            threads,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The wrapped server (stats, engine access, in-process sessions —
    /// the differential suite queries both paths through this).
    pub fn server(&self) -> &Server {
        self.server.as_ref().expect("server live until shutdown")
    }

    /// Connections currently owned by the reactor workers. Closed
    /// connections leave this gauge on their close event — no new
    /// accept is needed to prune them.
    pub fn live_connections(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.conns.load(Ordering::Acquire))
            .sum()
    }

    /// Graceful drain-then-shutdown: stop accepting (after serving the
    /// backlog), give every connection a final read pass, finish its
    /// in-flight updates and flush their replies, then shut the inner
    /// server down — which drains its epochs and flushes WAL and store.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        for w in &self.workers {
            w.wakeup.wake();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(server) = self.server.take() {
            match Arc::try_unwrap(server) {
                Ok(server) => server.shutdown(),
                Err(_) => unreachable!("all worker threads joined"),
            }
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

/// Translate a core [`Reply`](risgraph_core::server::Reply) into a wire
/// [`Response`].
fn reply_to_response(reply: risgraph_core::server::Reply) -> Response {
    match reply.outcome {
        Ok(applied) => Response::Applied {
            version: reply.version,
            safe: applied.safety == Safety::Safe,
            result_changes: applied.result_changes as u64,
        },
        Err(e) => Response::Failed {
            version: reply.version,
            error: WireError::from_error(&e),
        },
    }
}

fn stats_report(server: &Server) -> StatsReport {
    let s = server.stats();
    // One snapshot for every latency field, so the report is internally
    // consistent (p50 ≤ p999, count matches) under concurrent recording.
    let lat = s.update_latency.snapshot();
    let phase = s.unsafe_phase.snapshot();
    StatsReport {
        version: server.current_version(),
        epochs: s.epochs.load(Ordering::Relaxed),
        safe_executed: s.safe_executed.load(Ordering::Relaxed),
        unsafe_executed: s.unsafe_executed.load(Ordering::Relaxed),
        demotions: s.demotions.load(Ordering::Relaxed),
        threshold: s.threshold.load(Ordering::Relaxed),
        latency_count: lat.count(),
        latency_p50_ns: lat.quantile_ns(0.5),
        latency_p99_ns: lat.quantile_ns(0.99),
        latency_p999_ns: lat.quantile_ns(0.999),
        latency_max_ns: if lat.count() == 0 { 0 } else { lat.max_ns() },
        followers: server.feed().map_or(0, |f| f.followers() as u64),
        replication_records: server.feed().map_or(0, |f| f.len()),
        replication_lag: 0, // a leader is its own watermark
        unsafe_parallel_groups: s.unsafe_parallel_groups.load(Ordering::Relaxed),
        unsafe_serial_fallbacks: s.unsafe_serial_fallbacks.load(Ordering::Relaxed),
        unsafe_phase_count: phase.count(),
        unsafe_phase_p50_ns: phase.quantile_ns(0.5),
        unsafe_phase_p99_ns: phase.quantile_ns(0.99),
        unsafe_phase_p999_ns: phase.quantile_ns(0.999),
    }
}

/// Validate a wire-supplied algorithm index before it reaches
/// unchecked `history[algo]`/engine indexing. (Vertex bounds are
/// enforced by [`CoreSession`] itself, and update-path capacity growth
/// by `ServerConfig::max_capacity`.)
fn check_algo(server: &Server, algo: u32) -> std::result::Result<(), Error> {
    if algo as usize >= server.engine().num_algorithms() {
        return Err(Error::Protocol(format!(
            "algorithm index {algo} out of range ({} maintained)",
            server.engine().num_algorithms()
        )));
    }
    Ok(())
}

/// A [`Response::Failed`] for `e` at the server's current version.
fn failed(server: &Server, e: &Error) -> Response {
    Response::Failed {
        version: server.current_version(),
        error: WireError::from_error(e),
    }
}

/// Everything a connection needs from its worker, owned by the worker
/// so connection methods and `conns` map access borrow disjoint fields.
struct Ctx {
    server: Arc<Server>,
    net: NetConfig,
    shared: Arc<WorkerShared>,
    admission: Arc<Admission>,
    poller: Poller,
}

impl Ctx {
    /// Is this worker's choke point over the accept high-water mark?
    /// (un-adopted handoffs plus reply backlog — the two queues that
    /// grow when the worker cannot keep up).
    fn over_high_water(&self) -> bool {
        let hw = self.net.accept_high_water;
        if hw == 0 {
            return false;
        }
        let inbox = self.shared.inbox.lock().unwrap().len();
        if inbox > hw {
            return true;
        }
        inbox + self.shared.ready.lock().unwrap().len() > hw
    }
}

/// One logical session on a connection: its core session plus the
/// waker-dedup flag (`queued` is set by the first reply waker to fire
/// since the last drain, so a burst of replies costs one eventfd
/// write, not one per reply).
struct SessState {
    core: Arc<CoreSession>,
    queued: Arc<AtomicBool>,
    /// Updates submitted on this session and not yet answered — the
    /// occupancy the per-session admission quota is checked against.
    inflight: usize,
}

/// An update parked because the in-flight window is full. Parsing
/// stops while one is parked (and read interest is dropped), so TCP
/// backpressure reaches the client; queries already parsed keep their
/// overtake semantics because they were answered inline before the
/// park.
struct PendingOp {
    req_id: u64,
    sid: u64,
    op: Op,
}

/// An in-progress snapshot bootstrap for a fresh subscriber whose
/// requested offset was evicted: the checkpoint structure ships in
/// bounded chunks as the write buffer drains.
struct SnapshotShip {
    updates: Vec<Update>,
    pos: usize,
    resume_index: u64,
    resume_version: u64,
}

/// A connection flipped into replication streaming by `SUBSCRIBE`.
struct SubState {
    feed: Arc<ReplicationFeed>,
    slot: u64,
    next: u64,
    sub_id: u64,
    last_beat: Instant,
    acked: bool,
    snapshot: Option<SnapshotShip>,
}

/// One connection's state machine.
struct Conn {
    token: u64,
    stream: TcpStream,
    /// Unparsed inbound bytes; `rpos` marks how far frames have been
    /// consumed (compacted lazily).
    rbuf: Vec<u8>,
    rpos: usize,
    /// Encoded outbound frames; `wpos` marks how far the socket has
    /// accepted them (compacted lazily).
    wbuf: Vec<u8>,
    wpos: usize,
    /// 1 until a `Hello` negotiates higher; session wrappers before
    /// negotiation are a protocol error.
    proto_version: u32,
    /// Wire session id → core session. Unwrapped requests use sid 0.
    sessions: FxHashMap<u64, SessState>,
    /// Updates submitted and not yet answered, across all sessions.
    inflight: usize,
    pending: Option<PendingOp>,
    /// No more socket reads: clean EOF, drain mode, or a poisoned
    /// byte stream. In-flight replies still deliver and `wbuf` still
    /// flushes; the connection closes once both are empty.
    read_closed: bool,
    interest: Interest,
    /// Last instant the write buffer made progress (or was empty).
    last_progress: Instant,
    reply_starved_since: Option<Instant>,
    sub: Option<SubState>,
    /// Set when the connection was evicted (send/reply starvation):
    /// the notice frame is in `wbuf` and the connection gets one more
    /// `send_timeout` of grace to read it before the hard teardown.
    evicting: Option<Instant>,
    dead: bool,
}

impl Conn {
    fn new(token: u64, stream: TcpStream) -> Conn {
        Conn {
            token,
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            proto_version: 1,
            sessions: FxHashMap::default(),
            inflight: 0,
            pending: None,
            read_closed: false,
            interest: Interest::READ,
            last_progress: Instant::now(),
            reply_starved_since: None,
            sub: None,
            evicting: None,
            dead: false,
        }
    }

    fn out_len(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Append one encoded payload to the write buffer, framed.
    fn enqueue(&mut self, payload: Vec<u8>) {
        if self.dead {
            return;
        }
        if self.out_len() == 0 {
            // The send-timeout clock measures progress while data is
            // pending; restart it as the buffer goes non-empty.
            self.last_progress = Instant::now();
        }
        // Writing into a Vec cannot fail (the payload is always far
        // below the u32 length cap).
        let _ = write_frame(&mut self.wbuf, &payload);
    }

    fn enqueue_failed(&mut self, server: &Server, req_id: u64, e: &Error) {
        self.enqueue(failed(server, e).encode(req_id));
    }

    /// Stop consuming the byte stream but keep the connection up for
    /// its drain: in-flight replies deliver, the write buffer flushes,
    /// then the socket closes. Used for clean EOF and for protocol
    /// errors (after the best-effort id-0 report).
    fn begin_close(&mut self) {
        self.read_closed = true;
        self.rbuf.clear();
        self.rpos = 0;
    }

    /// Pull bytes off the socket (bounded per event for fairness).
    fn on_readable(&mut self, burst: usize) {
        if self.read_closed || self.dead {
            return;
        }
        if self.sub.is_some() {
            // Subscribed connections are one-way: consume and discard
            // anything the peer writes so a half-close is observed,
            // but keep streaming until the socket actually fails —
            // a follower may FIN its write side yet still read.
            let mut scratch = [0u8; 4096];
            loop {
                match self.stream.read(&mut scratch) {
                    Ok(0) => {
                        self.read_closed = true;
                        return;
                    }
                    Ok(_) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.dead = true;
                        return;
                    }
                }
            }
        }
        let mut total = 0;
        loop {
            let old_len = self.rbuf.len();
            self.rbuf.resize(old_len + 64 * 1024, 0);
            match self.stream.read(&mut self.rbuf[old_len..]) {
                Ok(0) => {
                    self.rbuf.truncate(old_len);
                    self.read_closed = true;
                    return;
                }
                Ok(n) => {
                    self.rbuf.truncate(old_len + n);
                    total += n;
                    if total >= burst {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.rbuf.truncate(old_len);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.rbuf.truncate(old_len);
                }
                Err(_) => {
                    // Abrupt reset: immediate teardown; any replies
                    // still executing complete in the epoch loop and
                    // are discarded harmlessly.
                    self.rbuf.truncate(old_len);
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Extract the next complete frame payload from the read buffer.
    /// `Ok(None)` means more bytes are needed.
    fn next_frame(&mut self, max_frame: usize) -> Result<Option<Vec<u8>>> {
        let avail = &self.rbuf[self.rpos..];
        if avail.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        let want_crc = u32::from_le_bytes(avail[4..FRAME_HEADER].try_into().unwrap());
        if len > max_frame {
            return Err(Error::Protocol(format!(
                "oversized frame: {len} bytes exceeds the {max_frame}-byte limit"
            )));
        }
        if avail.len() < FRAME_HEADER + len {
            return Ok(None);
        }
        let payload = avail[FRAME_HEADER..FRAME_HEADER + len].to_vec();
        let got_crc = risgraph_common::crc::crc32(&payload);
        if got_crc != want_crc {
            return Err(Error::Protocol(format!(
                "frame CRC mismatch: header says {want_crc:#010x}, payload is {got_crc:#010x}"
            )));
        }
        self.rpos += FRAME_HEADER + len;
        if self.rpos > 64 * 1024 {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
        Ok(Some(payload))
    }

    /// Look up or lazily create the core session behind a wire sid.
    fn session_core(&mut self, ctx: &Ctx, sid: u64) -> Result<Arc<CoreSession>> {
        if let Some(st) = self.sessions.get(&sid) {
            return Ok(Arc::clone(&st.core));
        }
        if self.sessions.len() >= ctx.net.max_sessions_per_conn.max(1) {
            return Err(Error::Protocol(format!(
                "session limit reached ({} logical sessions on one connection)",
                ctx.net.max_sessions_per_conn.max(1)
            )));
        }
        let core = Arc::new(ctx.server.session());
        let queued = Arc::new(AtomicBool::new(false));
        let shared = Arc::clone(&ctx.shared);
        let q = Arc::clone(&queued);
        let token = self.token;
        core.set_reply_waker(Some(Arc::new(move || {
            // First waker since the last drain dings the worker; the
            // rest coalesce behind the flag.
            if !q.swap(true, Ordering::AcqRel) {
                shared.ready.lock().unwrap().push((token, sid));
                shared.wakeup.wake();
            }
        })));
        self.sessions.insert(
            sid,
            SessState {
                core: Arc::clone(&core),
                queued,
                inflight: 0,
            },
        );
        Ok(core)
    }

    /// Pull every ready reply for `sid` into the write buffer.
    fn drain_session(&mut self, ctx: &Ctx, sid: u64) {
        let Some(st) = self.sessions.get(&sid) else {
            return;
        };
        // Reset the dedup flag BEFORE draining: a reply landing after
        // the drain below re-fires the waker instead of being lost.
        st.queued.store(false, Ordering::Release);
        let core = Arc::clone(&st.core);
        let mut drained = 0usize;
        while let Some((req_id, reply)) = core.try_recv_tagged() {
            drained += 1;
            self.inflight = self.inflight.saturating_sub(1);
            self.reply_starved_since = None;
            self.enqueue(reply_to_response(reply).encode(req_id));
        }
        if drained > 0 {
            if let Some(st) = self.sessions.get_mut(&sid) {
                st.inflight = st.inflight.saturating_sub(drained);
            }
            ctx.admission.release(drained);
        }
    }

    /// Shed one request with a [`Response::Busy`] — the v2-only cheap
    /// reject: encoded straight from the reader path, no session
    /// allocated, the epoch loop never touched.
    fn shed(&mut self, req_id: u64, cause: BusyCause, message: String) {
        self.enqueue(Response::Busy { cause, message }.encode(req_id));
    }

    /// Submit an update op, shed it (v2 over an admission limit), or
    /// park it (window full, or a v1 connection over the global
    /// budget). Returns `false` when frame processing must stop.
    fn submit_or_park(&mut self, ctx: &Ctx, req_id: u64, sid: u64, op: Op) -> bool {
        if self.inflight >= ctx.net.window.max(1) {
            self.pending = Some(PendingOp { req_id, sid, op });
            return false;
        }
        // Admission — checked before any session is allocated, so a
        // shed request costs this connection's buffers and nothing
        // else. Order: per-session quota (no global effect) first,
        // then the global budget reservation.
        let quota = ctx.net.session_quota;
        if quota != 0
            && self.proto_version >= 2
            && self.sessions.get(&sid).is_some_and(|s| s.inflight >= quota)
        {
            ctx.admission.shed_quota.fetch_add(1, Ordering::Relaxed);
            self.shed(
                req_id,
                BusyCause::SessionQuota,
                format!("session {sid} is at its in-flight quota ({quota})"),
            );
            return true;
        }
        if !ctx.admission.try_acquire(ctx.net.inflight_budget) {
            if self.proto_version >= 2 {
                ctx.admission.shed_budget.fetch_add(1, Ordering::Relaxed);
                self.shed(
                    req_id,
                    BusyCause::InflightBudget,
                    format!(
                        "global in-flight budget ({}) exhausted",
                        ctx.net.inflight_budget
                    ),
                );
                return true;
            }
            // v1 keeps the pre-admission wire behavior byte-for-byte:
            // park and let TCP backpressure reach the client; the
            // worker's housekeeping tick retries once budget frees.
            self.pending = Some(PendingOp { req_id, sid, op });
            return false;
        }
        self.submit(ctx, req_id, sid, op);
        !self.read_closed || !self.dead
    }

    /// Submit an op whose budget slot is already reserved; releases the
    /// slot again on every non-submitted path.
    fn submit(&mut self, ctx: &Ctx, req_id: u64, sid: u64, op: Op) {
        let core = match self.session_core(ctx, sid) {
            Ok(c) => c,
            Err(e) => {
                // Over the session cap: fail this request, keep the
                // connection (its other sessions are healthy).
                ctx.admission.release(1);
                self.enqueue_failed(&ctx.server, req_id, &e);
                return;
            }
        };
        if let Err(e) = core.submit_op_tagged(op, req_id) {
            // The coordinator is gone (shutdown): report and drain.
            ctx.admission.release(1);
            self.enqueue_failed(&ctx.server, req_id, &e);
            self.begin_close();
        } else {
            self.inflight += 1;
            if let Some(st) = self.sessions.get_mut(&sid) {
                st.inflight += 1;
            }
            ctx.admission.admitted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Parse and dispatch every processable frame in the read buffer.
    fn process(&mut self, ctx: &Ctx) {
        if self.sub.is_some() {
            // One-way from here: drop anything the peer still sent.
            self.rbuf.clear();
            self.rpos = 0;
            return;
        }
        loop {
            if self.dead {
                return;
            }
            if let Some(p) = self.pending.take() {
                // Re-run the full admission gate: the park may have
                // been window pressure or (v1) an exhausted global
                // budget, and either may still hold.
                if !self.submit_or_park(ctx, p.req_id, p.sid, p.op) {
                    return;
                }
                continue;
            }
            if self.out_len() >= OUT_BUF_SOFT_CAP {
                // Out-pressure: the peer is not reading fast enough;
                // stop producing until the buffer drains.
                return;
            }
            let payload = match self.next_frame(ctx.net.max_frame) {
                Ok(Some(p)) => p,
                Ok(None) => {
                    if self.read_closed && self.rpos < self.rbuf.len() {
                        // EOF with a partial frame left over.
                        self.enqueue_failed(
                            &ctx.server,
                            0,
                            &Error::Protocol("torn frame at connection end".into()),
                        );
                        self.rbuf.clear();
                        self.rpos = 0;
                    }
                    return;
                }
                Err(e) => {
                    // Malformed framing: the byte stream can no longer
                    // be trusted — report (best-effort, request id 0),
                    // then drain and close.
                    self.enqueue_failed(&ctx.server, 0, &e);
                    self.begin_close();
                    return;
                }
            };
            let (req_id, request) = match Request::decode(&payload) {
                Ok(x) => x,
                Err(e) => {
                    self.enqueue_failed(&ctx.server, 0, &e);
                    self.begin_close();
                    return;
                }
            };
            if !self.dispatch(ctx, req_id, request) {
                return;
            }
        }
    }

    /// Handle one decoded request. Returns `false` when frame
    /// processing must stop (window full, subscription started,
    /// connection closing).
    fn dispatch(&mut self, ctx: &Ctx, req_id: u64, request: Request) -> bool {
        let (sid, request) = match request {
            Request::InSession { sid, req } => {
                if self.proto_version < 2 {
                    self.enqueue_failed(
                        &ctx.server,
                        0,
                        &Error::Protocol(
                            "session wrapper before version negotiation (send Hello first)".into(),
                        ),
                    );
                    self.begin_close();
                    return false;
                }
                (sid, *req)
            }
            other => (0, other),
        };
        match request {
            Request::Hello { version } => {
                let negotiated = version.clamp(1, PROTOCOL_VERSION);
                // HELLO gating: a new session arriving while this
                // worker is over its high-water mark is turned away
                // before any state is allocated. The peer announced
                // v2 by sending Hello at all, so Busy is safe to send.
                if negotiated >= 2 && ctx.over_high_water() {
                    ctx.admission.shed_overload.fetch_add(1, Ordering::Relaxed);
                    self.shed(
                        req_id,
                        BusyCause::Overloaded,
                        "serving tier over its high-water mark; retry after backoff".into(),
                    );
                    self.begin_close();
                    return false;
                }
                self.proto_version = negotiated;
                self.enqueue(
                    Response::Hello {
                        version: negotiated,
                    }
                    .encode(req_id),
                );
                true
            }
            // Nested wrappers are rejected at decode; this arm is for
            // exhaustiveness only.
            Request::InSession { .. } => {
                self.enqueue_failed(
                    &ctx.server,
                    0,
                    &Error::Protocol("nested session wrapper".into()),
                );
                self.begin_close();
                false
            }
            // Updates: pipelined through the tagged session API under
            // the in-flight window. Replies surface via the waker.
            Request::Update(u) => self.submit_or_park(ctx, req_id, sid, Op::Single(u)),
            Request::Txn(updates) => self.submit_or_park(ctx, req_id, sid, Op::Txn(updates)),
            // Queries: answered inline (they read a versioned snapshot,
            // so they need not wait behind in-flight updates — that is
            // the out-of-order completion the request ids exist for).
            Request::GetValue {
                algo,
                version,
                vertex,
            } => {
                let resp = match self.session_core(ctx, sid).and_then(|core| {
                    check_algo(&ctx.server, algo)
                        .and_then(|()| core.get_value(algo as usize, version, vertex))
                }) {
                    Ok(v) => Response::Value(v),
                    Err(e) => failed(&ctx.server, &e),
                };
                self.enqueue(resp.encode(req_id));
                true
            }
            Request::GetParent {
                algo,
                version,
                vertex,
            } => {
                let resp = match self.session_core(ctx, sid).and_then(|core| {
                    check_algo(&ctx.server, algo)
                        .and_then(|()| core.get_parent(algo as usize, version, vertex))
                }) {
                    Ok(p) => Response::Parent(p),
                    Err(e) => failed(&ctx.server, &e),
                };
                self.enqueue(resp.encode(req_id));
                true
            }
            Request::GetModified { algo, version } => {
                let resp = match self.session_core(ctx, sid).and_then(|core| {
                    check_algo(&ctx.server, algo)
                        .and_then(|()| core.get_modified_vertices(algo as usize, version))
                }) {
                    Ok(vs) => Response::Modified(vs),
                    Err(e) => failed(&ctx.server, &e),
                };
                // The one response whose size scales with the affected
                // area: refuse to emit a frame the client would reject
                // as oversized — failing this request alone beats
                // tearing down every pipelined request on the session.
                let mut payload = resp.encode(req_id);
                if payload.len() > MAX_RESPONSE_FRAME {
                    let e = Error::Protocol(format!(
                        "modification set encodes to {} bytes, over the \
                         {MAX_RESPONSE_FRAME}-byte response limit",
                        payload.len()
                    ));
                    payload = failed(&ctx.server, &e).encode(req_id);
                }
                self.enqueue(payload);
                true
            }
            Request::CurrentVersion => {
                self.enqueue(Response::Version(ctx.server.current_version()).encode(req_id));
                true
            }
            Request::Release(version) => {
                match self.session_core(ctx, sid) {
                    Ok(core) => {
                        core.release_history(version);
                        self.enqueue(Response::Released.encode(req_id));
                    }
                    Err(e) => self.enqueue_failed(&ctx.server, req_id, &e),
                }
                true
            }
            Request::Stats => {
                self.enqueue(Response::Stats(stats_report(&ctx.server)).encode(req_id));
                true
            }
            // The schema-less registry snapshot: every named counter,
            // gauge and histogram summary, self-describing on the wire
            // so new metrics never break old clients (unknown entries
            // are skipped by the decoder, not fatal).
            Request::Metrics => {
                self.enqueue(Response::Metrics(ctx.server.metrics().snapshot()).encode(req_id));
                true
            }
            // Replication: flip this connection into a one-way feed
            // stream pumped by the worker's tick.
            Request::Subscribe { from } => {
                if sid != 0 {
                    // A subscription owns the whole connection; it
                    // cannot ride one multiplexed session among many.
                    self.enqueue_failed(
                        &ctx.server,
                        req_id,
                        &Error::Protocol(
                            "subscribe cannot be wrapped in a multiplexed session".into(),
                        ),
                    );
                    return true;
                }
                self.start_subscribe(ctx, req_id, from)
            }
        }
    }

    /// Validate and register a subscription; on success the connection
    /// stops parsing requests and the feed pump takes over.
    fn start_subscribe(&mut self, ctx: &Ctx, req_id: u64, from: u64) -> bool {
        let Some(feed) = ctx.server.feed() else {
            self.enqueue_failed(
                &ctx.server,
                req_id,
                &Error::Protocol("replication disabled on this server (max_followers = 0)".into()),
            );
            return true;
        };
        if from > feed.len() {
            self.enqueue_failed(
                &ctx.server,
                req_id,
                &Error::Protocol(format!(
                    "subscribe offset {from} beyond the feed ({} records)",
                    feed.len()
                )),
            );
            return true;
        }
        let Some(slot) = feed.try_register(from) else {
            self.enqueue_failed(
                &ctx.server,
                req_id,
                &Error::Protocol(format!(
                    "follower limit reached ({} slots)",
                    feed.max_followers()
                )),
            );
            return true;
        };
        // Registration pinned the retention floor at `from`, so `base`
        // cannot advance past it from here on.
        let feed = Arc::clone(feed);
        let mut sub = SubState {
            feed,
            slot,
            next: from,
            sub_id: req_id,
            last_beat: Instant::now(),
            acked: false,
            snapshot: None,
        };
        if sub.next < sub.feed.base() {
            // The requested records were evicted past a checkpoint. A
            // fresh follower bootstraps from the snapshot; a mid-stream
            // one cannot (its local state is not the snapshot's). The
            // structured `FeedTruncated` rejection tells the follower
            // to reset itself to fresh and re-subscribe at 0 — the
            // follower-side recovery `ReplicaServer` performs
            // automatically.
            if from != 0 {
                let floor = sub.feed.base();
                sub.feed.unregister(sub.slot);
                self.enqueue_failed(
                    &ctx.server,
                    req_id,
                    &Error::FeedTruncated {
                        requested: from,
                        floor,
                    },
                );
                return true;
            }
            let Some((updates, resume_index, resume_version)) = ctx.server.snapshot_for_bootstrap()
            else {
                sub.feed.unregister(sub.slot);
                self.enqueue_failed(
                    &ctx.server,
                    req_id,
                    &Error::Protocol(
                        "feed retention advanced past the requested offset but no checkpoint \
                         snapshot is readable"
                            .into(),
                    ),
                );
                return true;
            };
            sub.snapshot = Some(SnapshotShip {
                updates,
                pos: 0,
                resume_index,
                resume_version,
            });
        }
        self.sub = Some(sub);
        self.rbuf.clear();
        self.rpos = 0;
        self.pump_sub(ctx);
        false
    }

    /// Advance an active subscription: ship snapshot chunks, then feed
    /// records as they appear, plus heartbeats on cadence — all gated
    /// on the write buffer's soft cap so a slow follower throttles its
    /// own stream, never the epoch loop.
    fn pump_sub(&mut self, ctx: &Ctx) {
        let Some(mut sub) = self.sub.take() else {
            return;
        };
        if self.dead {
            sub.feed.unregister(sub.slot);
            return;
        }
        if let Some(ship) = &mut sub.snapshot {
            while ship.pos < ship.updates.len() && self.out_len() < OUT_BUF_SOFT_CAP {
                let end = (ship.pos + SNAPSHOT_CHUNK_UPDATES).min(ship.updates.len());
                let chunk = ship.updates[ship.pos..end].to_vec();
                ship.pos = end;
                self.enqueue(Response::SnapshotChunk(chunk).encode(sub.sub_id));
            }
            if ship.pos >= ship.updates.len() && self.out_len() < OUT_BUF_SOFT_CAP {
                // An empty structure still ships the Done frame — the
                // resume coordinates are what flips the replica out of
                // "fresh".
                let done = Response::SnapshotDone {
                    resume_index: ship.resume_index,
                    resume_version: ship.resume_version,
                };
                self.enqueue(done.encode(sub.sub_id));
                sub.next = ship.resume_index;
                sub.feed.set_watermark(sub.slot, sub.next);
                sub.snapshot = None;
            } else {
                self.sub = Some(sub);
                return;
            }
        }
        let beat = |server: &Server, next: u64| Response::Heartbeat {
            records: next,
            version: server.current_version(),
        };
        if !sub.acked {
            // Subscribe acknowledgement: an immediate heartbeat tells
            // the follower where the stream stands before any record
            // arrives.
            self.enqueue(beat(&ctx.server, sub.next).encode(sub.sub_id));
            sub.last_beat = Instant::now();
            sub.acked = true;
        }
        while self.out_len() < OUT_BUF_SOFT_CAP {
            let Some(rec) = sub.feed.get(sub.next) else {
                break;
            };
            self.enqueue(encode_wal_epoch(&rec, sub.sub_id));
            sub.next += 1;
            // The frame is buffered: everything below `next` is this
            // follower's problem now, so release it for eviction once
            // the checkpoint cut also passes it.
            sub.feed.set_watermark(sub.slot, sub.next);
        }
        if sub.last_beat.elapsed() >= ctx.net.heartbeat_interval {
            self.enqueue(beat(&ctx.server, sub.next).encode(sub.sub_id));
            sub.last_beat = Instant::now();
        }
        self.sub = Some(sub);
    }

    /// Flush as much of the write buffer as the socket accepts.
    fn try_write(&mut self) {
        if self.dead {
            return;
        }
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.wpos += n;
                    self.last_progress = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > 64 * 1024 {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
    }

    /// A drained connection — no more reads, nothing in flight, write
    /// buffer flushed — closes cleanly.
    fn check_complete(&mut self) {
        if self.dead || !self.read_closed || self.sub.is_some() {
            return;
        }
        if self.rpos >= self.rbuf.len()
            && self.pending.is_none()
            && self.inflight == 0
            && self.out_len() == 0
        {
            self.dead = true;
        }
    }

    /// The full post-event cycle: process frames, pump the feed, flush,
    /// check drain completion, re-arm interest.
    fn service(&mut self, ctx: &Ctx) {
        if !self.dead {
            self.process(ctx);
            if self.evicting.is_none() {
                self.pump_sub(ctx);
            }
            self.try_write();
            self.check_complete();
        }
        if !self.dead {
            self.update_interest(ctx);
        }
    }

    fn desired_interest(&self) -> Interest {
        Interest {
            read: !self.read_closed
                && !self.dead
                && self.pending.is_none()
                && self.out_len() < OUT_BUF_SOFT_CAP,
            write: !self.dead && self.out_len() > 0,
        }
    }

    fn update_interest(&mut self, ctx: &Ctx) {
        let want = self.desired_interest();
        if want != self.interest {
            if ctx
                .poller
                .modify(self.stream.as_raw_fd(), self.token, want)
                .is_ok()
            {
                self.interest = want;
            } else {
                self.dead = true;
            }
        }
    }

    /// Evict this connection: stop reading, drop anything un-admitted,
    /// and put a best-effort req-id-0 connection-level error — the
    /// same channel the malformed-frame path uses, carrying a Busy-
    /// coded [`WireError`] — at the tail of the write buffer, so every
    /// client waiter's death reason names the eviction instead of a
    /// bare connection reset. The frame is *appended* (never replaces
    /// `wbuf` — `wpos` may sit mid-frame and clearing would desync the
    /// peer's framing); a reader that resumes receives its backlog and
    /// then the notice, a truly dead one is torn down when the grace
    /// period lapses.
    fn evict(&mut self, ctx: &Ctx, now: Instant, detail: String) {
        ctx.admission.evicted.fetch_add(1, Ordering::Relaxed);
        // A parked op was never admitted (holds no budget): drop it.
        self.pending = None;
        self.begin_close();
        self.enqueue_failed(
            &ctx.server,
            0,
            &Error::Busy(format!("connection evicted: {detail}")),
        );
        self.reply_starved_since = None;
        self.evicting = Some(now);
    }

    /// Timer-driven checks, run on the worker's tick.
    fn housekeep(&mut self, ctx: &Ctx, now: Instant) {
        if self.dead {
            return;
        }
        if let Some(since) = self.evicting {
            // Grace: once the notice is delivered (buffer empty) or
            // another send_timeout lapses without the peer taking it,
            // tear down for real. Replies already in the buffer flush
            // ahead of the notice; anything still executing is dropped
            // at teardown like any abrupt disconnect.
            if self.out_len() == 0 || now.duration_since(since) > ctx.net.send_timeout {
                self.dead = true;
            }
            return;
        }
        // A peer that never reads its replies can stall the writer
        // only briefly: the send timeout turns a dead drain into an
        // eviction (torn down *and counted*, freeing its budget share
        // at teardown).
        if self.out_len() > 0 && now.duration_since(self.last_progress) > ctx.net.send_timeout {
            let stalled = now.duration_since(self.last_progress);
            self.evict(
                ctx,
                now,
                format!(
                    "no send progress for {}ms (send timeout {}ms)",
                    stalled.as_millis(),
                    ctx.net.send_timeout.as_millis()
                ),
            );
            return;
        }
        // Escape hatch: a draining connection still owed replies that
        // receives none (a dead coordinator can never answer the
        // in-flight tail) gives up after a deadline instead of wedging
        // — and through the joins, the whole server's shutdown.
        if self.read_closed && (self.inflight > 0 || self.pending.is_some()) {
            let since = *self.reply_starved_since.get_or_insert(now);
            if now.duration_since(since) > ctx.net.reply_timeout {
                let starved = now.duration_since(since);
                self.evict(
                    ctx,
                    now,
                    format!(
                        "reply starvation: {} update(s) unanswered for {}ms \
                         (reply timeout {}ms)",
                        self.inflight,
                        starved.as_millis(),
                        ctx.net.reply_timeout.as_millis()
                    ),
                );
            }
        } else {
            self.reply_starved_since = None;
        }
    }
}

/// One reactor worker: an epoll loop over its share of the
/// connections (plus the listener, on worker 0).
struct Worker {
    ctx: Ctx,
    gauges: WorkerGauges,
    peers: Vec<Arc<WorkerShared>>,
    shutdown: Arc<AtomicBool>,
    conns: FxHashMap<u64, Conn>,
    next_token: u64,
    listener: Option<TcpListener>,
    /// Accept backoff after fd exhaustion (EMFILE): the listener's
    /// readiness is disarmed until this instant has aged, preventing a
    /// level-triggered busy loop on a connection we cannot take.
    listener_paused: Option<Instant>,
    rr: usize,
    drain_started: bool,
}

impl Worker {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut dead: Vec<u64> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::Acquire) && !self.drain_started {
                self.begin_drain();
            }
            if self.drain_started
                && self.conns.is_empty()
                && self.listener.is_none()
                && self.ctx.shared.inbox.lock().unwrap().is_empty()
            {
                break;
            }
            let timeout = self.tick_timeout();
            let _ = self.ctx.poller.wait(&mut events, Some(timeout));
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    TOKEN_WAKEUP => self.ctx.shared.wakeup.drain(),
                    TOKEN_LISTENER => self.accept_burst(),
                    token => {
                        if let Some(conn) = self.conns.get_mut(&token) {
                            if ev.readable || ev.hangup {
                                conn.on_readable(READ_BURST);
                            }
                            conn.service(&self.ctx);
                        }
                    }
                }
            }
            events = batch;
            self.adopt_inbox();
            self.drain_ready();
            self.housekeep();
            self.publish_gauges();
            dead.extend(self.conns.iter().filter(|(_, c)| c.dead).map(|(t, _)| *t));
            for token in dead.drain(..) {
                self.teardown(token);
            }
        }
    }

    /// How long to sleep when nothing is ready: short when
    /// subscriptions need their feed pumped, longer for plain timer
    /// housekeeping.
    fn tick_timeout(&self) -> Duration {
        let has_subs = self.conns.values().any(|c| c.sub.is_some());
        let base = if has_subs {
            Duration::from_millis(5)
        } else {
            Duration::from_millis(25)
        };
        base.min(
            self.ctx
                .net
                .heartbeat_interval
                .max(Duration::from_millis(1)),
        )
    }

    /// Accept everything pending, distributing connections round-robin
    /// across the worker pool (remote workers get the stream through
    /// their inbox plus a wakeup).
    fn accept_burst(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    let target = if self.drain_started {
                        0 // peers may already be exiting; serve locally
                    } else {
                        self.rr % self.peers.len()
                    };
                    self.rr = self.rr.wrapping_add(1);
                    if target == 0 {
                        self.adopt(stream);
                    } else {
                        let peer = &self.peers[target];
                        peer.inbox.lock().unwrap().push(stream);
                        peer.wakeup.wake();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    // E.g. EMFILE under fd exhaustion: disarm the
                    // listener and re-arm on a later tick, so the
                    // level-triggered event cannot spin a core.
                    let fd = listener.as_raw_fd();
                    let _ = self.ctx.poller.modify(fd, TOKEN_LISTENER, Interest::NONE);
                    self.listener_paused = Some(Instant::now());
                    return;
                }
            }
        }
    }

    /// Take ownership of a freshly accepted (or handed-off) stream.
    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        // Connection-arrival gating: over the high-water mark the
        // cheapest possible reject — one best-effort frame onto the
        // fresh socket (its send buffer is empty, the write virtually
        // always completes), then drop. No poller registration, no
        // `Conn`, no session. Drain mode still serves the backlog.
        if !self.drain_started && self.ctx.over_high_water() {
            self.ctx
                .admission
                .shed_overload
                .fetch_add(1, Ordering::Relaxed);
            let notice = failed(
                &self.ctx.server,
                &Error::Busy("serving tier over its high-water mark; retry after backoff".into()),
            )
            .encode(0);
            let mut framed = Vec::with_capacity(FRAME_HEADER + notice.len());
            let _ = write_frame(&mut framed, &notice);
            let mut s = &stream;
            let _ = s.write(&framed);
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .ctx
            .poller
            .add(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            return;
        }
        self.ctx.shared.conns.fetch_add(1, Ordering::AcqRel);
        let mut conn = Conn::new(token, stream);
        if self.drain_started {
            // A backlog connection adopted mid-drain gets one read
            // pass (whatever it managed to send is served), then
            // drains like everyone else.
            conn.on_readable(usize::MAX);
            conn.read_closed = true;
        }
        self.conns.insert(token, conn);
        if self.drain_started {
            if let Some(c) = self.conns.get_mut(&token) {
                c.service(&self.ctx);
            }
        }
    }

    fn adopt_inbox(&mut self) {
        let streams = std::mem::take(&mut *self.ctx.shared.inbox.lock().unwrap());
        for s in streams {
            self.adopt(s);
        }
    }

    /// Deliver replies flagged by session wakers since the last pass.
    fn drain_ready(&mut self) {
        let ready = std::mem::take(&mut *self.ctx.shared.ready.lock().unwrap());
        if ready.is_empty() {
            return;
        }
        let t_drain = Instant::now();
        let mut touched: VecDeque<u64> = VecDeque::new();
        for (token, sid) in ready {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // closed since the waker fired; stale entry
            };
            conn.drain_session(&self.ctx, sid);
            if touched.back() != Some(&token) {
                touched.push_back(token);
            }
        }
        // Freed window slots may unpark an op and resume parsing.
        for token in touched {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.service(&self.ctx);
            }
        }
        self.ctx
            .server
            .tracer()
            .note_phase(Phase::ReactorDrain, t_drain.elapsed().as_nanos() as u64);
    }

    /// Refresh this worker's occupancy gauges (one tick's staleness at
    /// most — monitoring data, not a linearizable view).
    fn publish_gauges(&self) {
        let g = &self.gauges;
        g.connections
            .store(self.conns.len() as u64, Ordering::Relaxed);
        g.sessions.store(
            self.conns.values().map(|c| c.sessions.len() as u64).sum(),
            Ordering::Relaxed,
        );
        g.inbox_depth.store(
            self.ctx.shared.inbox.lock().unwrap().len() as u64,
            Ordering::Relaxed,
        );
        g.ready_backlog.store(
            self.ctx.shared.ready.lock().unwrap().len() as u64,
            Ordering::Relaxed,
        );
    }

    fn housekeep(&mut self) {
        let now = Instant::now();
        if let Some(paused) = self.listener_paused {
            if now.duration_since(paused) >= Duration::from_millis(10) {
                if let Some(listener) = &self.listener {
                    let fd = listener.as_raw_fd();
                    let _ = self.ctx.poller.modify(fd, TOKEN_LISTENER, Interest::READ);
                }
                self.listener_paused = None;
            }
        }
        for conn in self.conns.values_mut() {
            conn.housekeep(&self.ctx, now);
            conn.service(&self.ctx);
        }
    }

    /// Stop accepting (after serving the backlog) and flip every
    /// connection into drain mode.
    fn begin_drain(&mut self) {
        self.drain_started = true;
        if self.listener.is_some() {
            // Serve the backlog that completed its handshake before
            // shutdown, then retire the listener.
            self.accept_burst();
            if let Some(l) = self.listener.take() {
                self.ctx.poller.delete(l.as_raw_fd());
            }
        }
        self.adopt_inbox();
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            // Followers reconnect on their own; cut their streams now
            // so the feed's retention floor is released.
            if let Some(sub) = conn.sub.take() {
                sub.feed.unregister(sub.slot);
                conn.begin_close();
            }
            if !conn.read_closed {
                // Final read pass: consume what the kernel already
                // buffered so requests sent before shutdown are served.
                conn.on_readable(usize::MAX);
                conn.read_closed = true;
            }
            conn.service(&self.ctx);
        }
    }

    fn teardown(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.ctx.poller.delete(conn.stream.as_raw_fd());
            if let Some(sub) = &conn.sub {
                sub.feed.unregister(sub.slot);
            }
            // Whatever this connection still had in flight will never
            // be drained: hand its budget share back so an evicted or
            // reset connection frees admission capacity immediately.
            self.ctx.admission.release(conn.inflight);
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.ctx.shared.conns.fetch_sub(1, Ordering::AcqRel);
            // `conn.sessions` drops here, releasing the core sessions
            // (and their history holds).
        }
    }
}
