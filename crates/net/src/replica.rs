//! [`ReplicaServer`]: a read replica fed by a leader's replication
//! stream.
//!
//! The follower half of the WAL-shipping design
//! (`risgraph_core::replication`): a background thread connects to the
//! leader, sends `SUBSCRIBE` at the replica's applied-record watermark,
//! and applies every [`FeedRecord`](risgraph_common::protocol::FeedRecord)
//! through [`Replica::apply_record`] — catching up from index 0 first,
//! then following the live tail, with heartbeats carrying the leader's
//! version as the lag reference.
//!
//! **Fault tolerance is reconnection.** Any stream disruption — EOF,
//! a torn or CRC-corrupt frame, a record gap after dropped frames, a
//! read stall — tears the connection down and the follower resubscribes
//! at its watermark after a short backoff; duplicated records are
//! skipped idempotently by index. The fault-injection suite
//! (`risgraph_testkit::faults` + `tests/replication_differential.rs`)
//! drives exactly these paths and proves the replica still converges to
//! the leader's store fingerprint and version-exact query surface.
//!
//! Optionally the replica itself listens ([`FollowerConfig::listen`])
//! and serves the **read-only** Table 1 surface over the same wire
//! protocol — `get_value` / `get_parent` / `get_modified_vertices` /
//! `get_current_version`, answered at the applied watermark, plus
//! `STATS` reporting replication lag; mutating requests are refused.
//! The replica speaks protocol v1 only: a `Hello` is answered with
//! version 1 (the negotiation's downgrade path), and session-wrapped
//! requests are refused without closing the connection.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use risgraph_common::ids::Update;
use risgraph_common::metrics::{Counter, Registry};
use risgraph_common::protocol::{
    read_frame, write_frame, Request, Response, StatsReport, WireError, MAX_FRAME,
    MAX_RESPONSE_FRAME,
};
use risgraph_common::{Error, Result};
use risgraph_core::engine::DynAlgorithm;
use risgraph_core::replication::Replica;
use risgraph_core::server::ServerConfig;

/// Follower-side tuning.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// The leader's address (`host:port`).
    pub leader: String,
    /// Serve the read-only query surface on this address (`None`
    /// disables the listener; `"127.0.0.1:0"` picks an ephemeral port).
    pub listen: Option<String>,
    /// Pause between reconnection attempts.
    pub reconnect_backoff: Duration,
    /// Stream read stall escape: with heartbeats far more frequent
    /// than this, a timeout means the leader is gone and reconnecting
    /// is the right response.
    pub read_timeout: Duration,
    /// Maximum accepted stream frame (records scale with epoch size,
    /// so followers accept response-sized frames).
    pub max_frame: usize,
}

impl FollowerConfig {
    /// Defaults for following `leader`.
    pub fn to_leader(leader: impl Into<String>) -> Self {
        FollowerConfig {
            leader: leader.into(),
            listen: None,
            reconnect_backoff: Duration::from_millis(50),
            read_timeout: Duration::from_secs(2),
            max_frame: MAX_RESPONSE_FRAME,
        }
    }
}

/// Follower counters, updated by the streaming thread. Every field is
/// a handle into the replica's metrics [`Registry`] (under
/// `replica.*` names), so the same cells answer both the legacy
/// `STATS` view and the schema-less `METRICS` snapshot.
#[derive(Debug, Default)]
pub struct FollowerStats {
    /// Feed records applied.
    pub records_applied: Arc<Counter>,
    /// Records skipped as already-applied duplicates (replayed frames
    /// after a reconnect, or a duplicating fault).
    pub duplicates_skipped: Arc<Counter>,
    /// Heartbeats received.
    pub heartbeats: Arc<Counter>,
    /// Successful connections (first connect included).
    pub connects: Arc<Counter>,
    /// Reconnections after a lost or corrupted stream.
    pub reconnects: Arc<Counter>,
    /// Protocol violations observed on the stream (torn/corrupt
    /// frames, record gaps, unexpected response shapes) — each one
    /// triggers a reconnect.
    pub stream_errors: Arc<Counter>,
    /// Subscribe rejections from the leader (follower limit,
    /// replication disabled).
    pub rejections: Arc<Counter>,
    /// Snapshot bootstraps installed (a fresh subscribe that found the
    /// feed's genesis evicted past a leader checkpoint).
    pub snapshot_bootstraps: Arc<Counter>,
    /// Self-resets to fresh state after the leader reported the
    /// subscribe offset evicted below the feed's retention floor
    /// (`FeedTruncated`) — each one is followed by a fresh subscribe
    /// that takes the snapshot bootstrap path, so the follower
    /// reconverges without manual intervention.
    pub feed_resets: Arc<Counter>,
}

impl FollowerStats {
    fn registered(registry: &Registry) -> Self {
        FollowerStats {
            records_applied: registry.counter("replica.records_applied"),
            duplicates_skipped: registry.counter("replica.duplicates_skipped"),
            heartbeats: registry.counter("replica.heartbeats"),
            connects: registry.counter("replica.connects"),
            reconnects: registry.counter("replica.reconnects"),
            stream_errors: registry.counter("replica.stream_errors"),
            rejections: registry.counter("replica.rejections"),
            snapshot_bootstraps: registry.counter("replica.snapshot_bootstraps"),
            feed_resets: registry.counter("replica.feed_resets"),
        }
    }
}

/// Registry of live read-only query connections.
type ConnRegistry = Arc<Mutex<Vec<(JoinHandle<()>, TcpStream)>>>;

/// A read replica: the follower thread plus an optional read-only
/// wire-protocol listener. See the module docs.
pub struct ReplicaServer {
    replica: Arc<Replica>,
    stats: Arc<FollowerStats>,
    /// Replica-local metrics registry (`replica.*` names), served over
    /// the read-only listener's `METRICS` opcode.
    metrics: Arc<Registry>,
    stop: Arc<AtomicBool>,
    /// The live leader connection, kept so shutdown can unblock the
    /// follower thread's read immediately.
    current: Arc<Mutex<Option<TcpStream>>>,
    follower: Option<JoinHandle<()>>,
    listen_addr: Option<SocketAddr>,
    accept_thread: Option<JoinHandle<()>>,
    conns: ConnRegistry,
}

impl ReplicaServer {
    /// Start a replica of the leader at `net.leader`, maintaining
    /// `algorithms` over `config.backend`/`config.engine`, with
    /// `config.max_capacity` bounding on-demand growth exactly as on
    /// the leader (the other [`ServerConfig`] fields are leader-side
    /// and ignored). The
    /// follower thread starts immediately; catch-up progress is
    /// observable through [`ReplicaServer::lag`] and
    /// [`ReplicaServer::stats`].
    pub fn start(
        algorithms: Vec<DynAlgorithm>,
        capacity: usize,
        config: ServerConfig,
        net: FollowerConfig,
    ) -> Result<ReplicaServer> {
        let replica = Arc::new(Replica::new(
            algorithms,
            capacity,
            &config.backend,
            config.engine,
            config.max_capacity,
        )?);
        let metrics = Arc::new(Registry::new());
        let stats = Arc::new(FollowerStats::registered(&metrics));
        // Watermark gauges, pre-registered so the listing is stable
        // and refreshed on every `METRICS` read.
        let _ = metrics.gauge("replica.lag");
        let _ = metrics.gauge("replica.version");
        let stop = Arc::new(AtomicBool::new(false));
        let current = Arc::new(Mutex::new(None));
        let conns: ConnRegistry = Arc::new(Mutex::new(Vec::new()));

        let mut listen_addr = None;
        let mut accept_thread = None;
        if let Some(listen) = &net.listen {
            let listener = TcpListener::bind(listen)
                .map_err(|e| Error::Protocol(format!("cannot bind {listen}: {e}")))?;
            listen_addr = Some(
                listener
                    .local_addr()
                    .map_err(|e| Error::Protocol(format!("no local addr: {e}")))?,
            );
            listener
                .set_nonblocking(true)
                .map_err(|e| Error::Protocol(format!("nonblocking listener: {e}")))?;
            let accept_replica = Arc::clone(&replica);
            let accept_stats = Arc::clone(&stats);
            let accept_metrics = Arc::clone(&metrics);
            let accept_stop = Arc::clone(&stop);
            let accept_conns = Arc::clone(&conns);
            accept_thread = Some(
                std::thread::Builder::new()
                    .name("risgraph-replica-accept".into())
                    .spawn(move || {
                        accept_loop(
                            listener,
                            accept_replica,
                            accept_stats,
                            accept_metrics,
                            accept_stop,
                            accept_conns,
                        )
                    })
                    .expect("spawn replica accept thread"),
            );
        }

        let f_replica = Arc::clone(&replica);
        let f_stats = Arc::clone(&stats);
        let f_stop = Arc::clone(&stop);
        let f_current = Arc::clone(&current);
        let follower = std::thread::Builder::new()
            .name("risgraph-replica-follower".into())
            .spawn(move || follower_loop(f_replica, f_stats, f_stop, f_current, net))
            .expect("spawn follower thread");

        Ok(ReplicaServer {
            replica,
            stats,
            metrics,
            stop,
            current,
            follower: Some(follower),
            listen_addr,
            accept_thread,
            conns,
        })
    }

    /// The replica state (queries, fingerprinting).
    pub fn replica(&self) -> &Replica {
        &self.replica
    }

    /// Follower counters.
    pub fn stats(&self) -> &FollowerStats {
        &self.stats
    }

    /// The replica-local metrics registry (the cells behind
    /// [`FollowerStats`] plus the `replica.lag`/`replica.version`
    /// watermark gauges, refreshed on every `METRICS` read).
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// The read-only listener's bound address, when enabled.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.listen_addr
    }

    /// Replication lag in result versions (applied watermark behind
    /// the last leader version heard of).
    pub fn lag(&self) -> u64 {
        self.replica.lag()
    }

    /// Read-only query connections still registered (finished ones are
    /// pruned on the accept loop's poll tick, so this converges to the
    /// number of live sockets without needing a new connect).
    pub fn live_query_connections(&self) -> usize {
        let mut conns = self.conns.lock().unwrap();
        prune_finished(&mut conns);
        conns.len()
    }

    /// Stop following and serving, and join every thread.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the follower's stream read immediately.
        if let Some(stream) = self.current.lock().unwrap().take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.follower.take() {
            let _ = h.join();
        }
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for (_, stream) in &conns {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for (handle, _) in conns {
            let _ = handle.join();
        }
    }
}

impl Drop for ReplicaServer {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

/// One follower session: connect, subscribe at the watermark, apply the
/// stream until it breaks, reconnect. See the module docs for the
/// fault-handling contract.
fn follower_loop(
    replica: Arc<Replica>,
    stats: Arc<FollowerStats>,
    stop: Arc<AtomicBool>,
    current: Arc<Mutex<Option<TcpStream>>>,
    net: FollowerConfig,
) {
    let mut connected_before = false;
    while !stop.load(Ordering::Acquire) {
        let stream = match TcpStream::connect(&net.leader) {
            Ok(s) => s,
            Err(_) => {
                std::thread::sleep(net.reconnect_backoff);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(net.read_timeout));
        stats.connects.fetch_add(1, Ordering::Relaxed);
        if connected_before {
            stats.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        connected_before = true;
        let Ok(registered) = stream.try_clone() else {
            continue;
        };
        *current.lock().unwrap() = Some(registered);

        // Subscribe at the applied watermark: after any fault this is
        // exactly the first record still needed.
        let sub = Request::Subscribe {
            from: replica.applied_records(),
        }
        .encode(1);
        let mut w = &stream;
        if write_frame(&mut w, &sub).is_err() {
            *current.lock().unwrap() = None;
            std::thread::sleep(net.reconnect_backoff);
            continue;
        }

        let mut r = BufReader::new(&stream);
        let mut rejected = false;
        // Snapshot bootstrap staging: chunks accumulate here and only
        // touch the replica when the Done frame lands, so a disconnect
        // mid-bootstrap leaves the replica fresh and the retry clean.
        let mut snap_buf: Vec<Update> = Vec::new();
        loop {
            if stop.load(Ordering::Acquire) {
                return;
            }
            match read_frame(&mut r, net.max_frame) {
                Ok(Some(payload)) => match Response::decode(&payload) {
                    Ok((_, Response::WalEpoch(rec))) => match replica.apply_record(&rec) {
                        Ok(true) => {
                            stats.records_applied.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(false) => {
                            stats.duplicates_skipped.fetch_add(1, Ordering::Relaxed);
                        }
                        // A record gap (frames were dropped): the
                        // stream is unusable, resubscribe from the
                        // watermark.
                        Err(_) => {
                            stats.stream_errors.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    },
                    Ok((_, Response::Heartbeat { records, version })) => {
                        replica.note_leader_version(version);
                        stats.heartbeats.fetch_add(1, Ordering::Relaxed);
                        // Frames are ordered: every record the leader
                        // streamed before this heartbeat has been
                        // processed, so having applied fewer means
                        // frames were lost — a drop at the stream tail
                        // that no later record would ever expose.
                        // Resubscribe at the watermark.
                        if records > replica.applied_records() {
                            stats.stream_errors.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                    Ok((_, Response::SnapshotChunk(mut updates))) => {
                        snap_buf.append(&mut updates);
                    }
                    Ok((
                        _,
                        Response::SnapshotDone {
                            resume_index,
                            resume_version,
                        },
                    )) => match replica.install_snapshot(&snap_buf, resume_index, resume_version) {
                        Ok(()) => {
                            snap_buf = Vec::new();
                            stats.snapshot_bootstraps.fetch_add(1, Ordering::Relaxed);
                        }
                        // Installing on a non-fresh replica (or past
                        // the capacity ceiling) is a stream fault.
                        Err(_) => {
                            stats.stream_errors.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    },
                    Ok((_, Response::Failed { error, .. })) => {
                        stats.rejections.fetch_add(1, Ordering::Relaxed);
                        if let Error::FeedTruncated { .. } = error.to_error() {
                            // The feed's retention floor passed our
                            // watermark while we were disconnected:
                            // nothing below it will ever be streamed
                            // again, and re-subscribing at the same
                            // offset would be refused forever (the old
                            // wedge-until-restart bug). Reset to fresh
                            // and re-subscribe at 0 — the next connect
                            // takes the snapshot bootstrap path.
                            match replica.reset() {
                                Ok(()) => {
                                    stats.feed_resets.fetch_add(1, Ordering::Relaxed);
                                    // Not a policy refusal: retry on
                                    // the fast cadence, the fresh
                                    // subscribe will be served.
                                }
                                Err(_) => {
                                    // A partial reset is retried on
                                    // the next FeedTruncated refusal
                                    // (reset is restartable).
                                    stats.stream_errors.fetch_add(1, Ordering::Relaxed);
                                    rejected = true;
                                }
                            }
                        } else {
                            // The leader refused the subscription
                            // (slots full, replication disabled). Keep
                            // retrying on a long backoff — a slot may
                            // free up — but count it.
                            rejected = true;
                        }
                        break;
                    }
                    Ok(_) => {
                        stats.stream_errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    Err(_) => {
                        stats.stream_errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                },
                // Clean EOF: leader closed (drain, restart) — reconnect.
                Ok(None) => break,
                Err(e) => {
                    // Torn/corrupt framing is a stream fault; a read
                    // timeout (surfacing as I/O, mapped to Error::Wal)
                    // is a stalled leader — both mean reconnect, only
                    // the former counts as a protocol error.
                    if matches!(e, Error::Protocol(_)) && !stop.load(Ordering::Acquire) {
                        stats.stream_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
            }
        }
        *current.lock().unwrap() = None;
        let _ = stream.shutdown(Shutdown::Both);
        if !stop.load(Ordering::Acquire) {
            // A refusal is policy, not a glitch: retry on a much
            // longer cadence so a slotless follower does not hammer
            // the leader with ~20 connection setups per second.
            std::thread::sleep(if rejected {
                net.reconnect_backoff * 20
            } else {
                net.reconnect_backoff
            });
        }
    }
}

/// The replica's `STATS` answer: its version watermark plus the
/// replication gauges (the latency/epoch fields are leader-side and
/// read 0 here).
fn replica_stats(replica: &Replica, stats: &FollowerStats) -> StatsReport {
    StatsReport {
        version: replica.current_version(),
        replication_records: stats.records_applied.load(Ordering::Relaxed),
        replication_lag: replica.lag(),
        ..StatsReport::default()
    }
}

/// Join-and-drop every finished connection thread in the registry.
fn prune_finished(conns: &mut Vec<(JoinHandle<()>, TcpStream)>) {
    let mut i = 0;
    while i < conns.len() {
        if conns[i].0.is_finished() {
            let (done, stale) = conns.swap_remove(i);
            let _ = done.join();
            drop(stale);
        } else {
            i += 1;
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    replica: Arc<Replica>,
    stats: Arc<FollowerStats>,
    metrics: Arc<Registry>,
    stop: Arc<AtomicBool>,
    conns: ConnRegistry,
) {
    loop {
        let draining = stop.load(Ordering::Acquire);
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if draining {
                    break;
                }
                // Prune on every poll tick, not only on new accepts:
                // an idle listener must not retain dead fds and
                // JoinHandles indefinitely.
                prune_finished(&mut conns.lock().unwrap());
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let Ok(registered) = stream.try_clone() else {
            continue;
        };
        let conn_replica = Arc::clone(&replica);
        let conn_stats = Arc::clone(&stats);
        let conn_metrics = Arc::clone(&metrics);
        let handle = std::thread::Builder::new()
            .name("risgraph-replica-conn".into())
            .spawn(move || serve_queries(conn_replica, conn_stats, conn_metrics, stream))
            .expect("spawn replica connection thread");
        let mut conns = conns.lock().unwrap();
        prune_finished(&mut conns);
        conns.push((handle, registered));
    }
}

/// Serve the read-only Table 1 surface on one connection: queries are
/// answered inline at the applied watermark; anything mutating is
/// refused without touching the replica.
fn serve_queries(
    replica: Arc<Replica>,
    stats: Arc<FollowerStats>,
    metrics: Arc<Registry>,
    stream: TcpStream,
) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let _ = write_half.set_write_timeout(Some(Duration::from_secs(10)));
    let mut w = BufWriter::new(write_half);
    let mut r = BufReader::new(stream);
    let check_algo = |algo: u32| -> std::result::Result<usize, Error> {
        if algo as usize >= replica.engine().num_algorithms() {
            return Err(Error::Protocol(format!(
                "algorithm index {algo} out of range ({} maintained)",
                replica.engine().num_algorithms()
            )));
        }
        Ok(algo as usize)
    };
    let failed = |e: &Error| Response::Failed {
        version: replica.current_version(),
        error: WireError::from_error(e),
    };
    loop {
        let payload = match read_frame(&mut r, MAX_FRAME) {
            Ok(Some(p)) => p,
            Ok(None) => break,
            Err(e) => {
                let _ = write_frame(&mut w, &failed(&e).encode(0));
                break;
            }
        };
        let (req_id, request) = match Request::decode(&payload) {
            Ok(x) => x,
            Err(e) => {
                let _ = write_frame(&mut w, &failed(&e).encode(0));
                break;
            }
        };
        let resp = match request {
            Request::GetValue {
                algo,
                version,
                vertex,
            } => match check_algo(algo).and_then(|a| replica.get_value(a, version, vertex)) {
                Ok(v) => Response::Value(v),
                Err(e) => failed(&e),
            },
            Request::GetParent {
                algo,
                version,
                vertex,
            } => match check_algo(algo).and_then(|a| replica.get_parent(a, version, vertex)) {
                Ok(p) => Response::Parent(p),
                Err(e) => failed(&e),
            },
            Request::GetModified { algo, version } => {
                match check_algo(algo).and_then(|a| replica.get_modified_vertices(a, version)) {
                    Ok(vs) => Response::Modified(vs),
                    Err(e) => failed(&e),
                }
            }
            Request::CurrentVersion => Response::Version(replica.current_version()),
            Request::Stats => Response::Stats(replica_stats(&replica, &stats)),
            // The registry snapshot, with the watermark gauges
            // refreshed at read time (they have no update hook — the
            // watermarks move on every applied record).
            Request::Metrics => {
                metrics
                    .gauge("replica.lag")
                    .store(replica.lag(), Ordering::Relaxed);
                metrics
                    .gauge("replica.version")
                    .store(replica.current_version(), Ordering::Relaxed);
                Response::Metrics(metrics.snapshot())
            }
            // Replicas speak protocol v1: answer any Hello with
            // version 1, exercising the negotiation's downgrade path
            // (a v2 client falls back to unwrapped frames).
            Request::Hello { .. } => Response::Hello { version: 1 },
            // Session wrappers need v2; refuse them without closing —
            // the client can retry unwrapped on the same connection.
            Request::InSession { .. } => failed(&Error::Protocol(
                "read-only replica speaks protocol v1: no session multiplexing".into(),
            )),
            // Everything mutating — and nested subscriptions — is
            // refused: replicas are read-only and not chainable (yet;
            // see the ROADMAP follow-ons).
            Request::Update(_)
            | Request::Txn(_)
            | Request::Release(_)
            | Request::Subscribe { .. } => failed(&Error::Protocol(
                "read-only replica: updates must go to the leader".into(),
            )),
        };
        let mut payload = resp.encode(req_id);
        if payload.len() > MAX_RESPONSE_FRAME {
            let e = Error::Protocol(format!(
                "modification set encodes to {} bytes, over the \
                 {MAX_RESPONSE_FRAME}-byte response limit",
                payload.len()
            ));
            payload = failed(&e).encode(req_id);
        }
        if write_frame(&mut w, &payload).is_err() || w.flush().is_err() {
            break;
        }
    }
    let _ = r.into_inner().shutdown(Shutdown::Both);
}
