//! The readiness layer under the event-driven serving tier: a thin,
//! safe wrapper over Linux `epoll` plus an `eventfd`-based cross-thread
//! wakeup.
//!
//! Raw bindings, no new dependencies: the environment vendors offline
//! shims instead of crates.io, so — exactly like the mmap store
//! (`risgraph_storage::ooc_mmap`) — this module declares the handful of
//! libc entry points it needs directly (libc is always linked). The
//! reactor worker loop itself lives in [`crate::server`]; this module
//! only knows about file descriptors, interest sets and readiness
//! events.

use std::os::unix::io::RawFd;
use std::time::Duration;

use risgraph_common::{Error, Result};

/// Raw libc entry points (see the module docs for why these are
/// declared here instead of pulled from a crate).
mod sys {
    /// Linux's `struct epoll_event`. `repr(C, packed)` matters: on
    /// x86-64 the kernel ABI packs the 8-byte `data` right after the
    /// 4-byte `events` with no padding.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

fn os_err(what: &str) -> Error {
    Error::Protocol(format!("{what}: {}", std::io::Error::last_os_error()))
}

/// What a registration wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Readiness to read (`EPOLLIN`).
    pub read: bool,
    /// Readiness to write (`EPOLLOUT`).
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// Neither direction: the fd stays registered but silent (used to
    /// park a backpressured connection without an ADD/DEL churn).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };

    fn mask(self) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if self.read {
            m |= sys::EPOLLIN;
        }
        if self.write {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration's token (chosen at [`Poller::add`] time).
    pub token: u64,
    /// The fd is readable (or the peer half-closed: `EPOLLRDHUP`).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// Error/hangup condition (`EPOLLERR`/`EPOLLHUP`): the owner should
    /// attempt IO and tear the connection down on failure.
    pub hangup: bool,
}

/// A level-triggered epoll instance.
///
/// Level-triggered on purpose: the worker loop may legitimately stop
/// reading a ready socket (window backpressure) and needs the event to
/// re-fire once it re-arms interest — edge-triggered would force a
/// drain-to-`WouldBlock` discipline everywhere for no gain at this
/// fan-in.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Create a fresh epoll instance.
    pub fn new() -> Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(os_err("epoll_create1"));
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.mask(),
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(os_err("epoll_ctl"));
        }
        Ok(())
    }

    /// Register `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change an existing registration's interest.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Remove a registration (best-effort: a racing close already
    /// removed it kernel-side, which is fine).
    pub fn delete(&self, fd: RawFd) {
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        let _ = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Wait for readiness, filling `out` (cleared first). `timeout` of
    /// `None` blocks indefinitely. Returns the number of events;
    /// `EINTR` surfaces as zero events, which callers treat as a tick.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> Result<usize> {
        out.clear();
        const CAP: usize = 256;
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; CAP];
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 0 < t < 1 ms timeout does not busy-spin.
            Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
                .unwrap_or(i32::MAX),
        };
        let n = unsafe { sys::epoll_wait(self.epfd, buf.as_mut_ptr(), CAP as i32, timeout_ms) };
        if n < 0 {
            let e = std::io::Error::last_os_error();
            if e.kind() == std::io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(Error::Protocol(format!("epoll_wait: {e}")));
        }
        for ev in &buf[..n as usize] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.epfd);
        }
    }
}

// The epoll fd is just a kernel handle; using it from the owning worker
// thread after construction on another is fine.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

/// A cross-thread wakeup for one reactor worker: an `eventfd` the
/// worker registers in its [`Poller`]; any thread (the epoch loop's
/// reply wakers, the acceptor handing off a connection, shutdown) can
/// [`Wakeup::wake`] it to pull the worker out of `epoll_wait`.
pub struct Wakeup {
    fd: RawFd,
}

impl Wakeup {
    /// Create a nonblocking eventfd.
    pub fn new() -> Result<Wakeup> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(os_err("eventfd"));
        }
        Ok(Wakeup { fd })
    }

    /// The fd to register in a [`Poller`].
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Ding the worker. Multiple wakes coalesce (eventfd adds); a full
    /// counter (`EAGAIN`) already guarantees a pending wake, so errors
    /// are ignorable.
    pub fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe { sys::write(self.fd, one.to_ne_bytes().as_ptr(), 8) };
    }

    /// Consume all pending wakes (called by the worker on its own
    /// wakeup event, before scanning the work it was woken for).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // One read empties an eventfd counter; loop defensively anyway.
        while unsafe { sys::read(self.fd, buf.as_mut_ptr(), 8) } == 8 {}
    }
}

impl Drop for Wakeup {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.fd);
        }
    }
}

unsafe impl Send for Wakeup {}
unsafe impl Sync for Wakeup {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wakeup_unblocks_wait() {
        let poller = Poller::new().unwrap();
        let wakeup = std::sync::Arc::new(Wakeup::new().unwrap());
        poller.add(wakeup.fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        // Nothing pending: times out with zero events.
        poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.is_empty());
        let w = std::sync::Arc::clone(&wakeup);
        let t = std::thread::spawn(move || w.wake());
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        t.join().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        wakeup.drain();
        // Drained: silent again.
        poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut peer = TcpStream::connect(addr).unwrap();
        let (sock, _) = listener.accept().unwrap();
        sock.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(sock.as_raw_fd(), 1, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.is_empty(), "no bytes yet");

        peer.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        // Park the registration: pending bytes must stop firing.
        poller.modify(sock.as_raw_fd(), 1, Interest::NONE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 1), "parked fd fired");

        // Re-arm (level-triggered): the same bytes fire again.
        poller.modify(sock.as_raw_fd(), 1, Interest::BOTH).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        let mut buf = [0u8; 8];
        let n = (&sock).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Peer half-close surfaces as readable (EPOLLRDHUP → read 0).
        drop(peer);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        poller.delete(sock.as_raw_fd());
    }
}
