//! # risgraph-net — the TCP serving tier
//!
//! RisGraph's point is per-update analysis served to *many concurrent
//! clients* at millions of ops/s with P999 below 20 ms (§4–§5). This
//! crate is the layer that makes that an observable scenario rather
//! than a library call: a length-prefixed, CRC-framed binary protocol
//! ([`risgraph_common::protocol`]) over TCP, a multi-threaded
//! [`NetServer`] that maps each connection onto one
//! [`risgraph_core::server::Session`], and a [`NetClient`] usable both
//! as a blocking one-request-at-a-time client (the paper's emulated
//! synchronous users, §6.2) and as a **pipelined** client keeping a
//! window of requests in flight behind a reply demultiplexer.
//!
//! ## Server anatomy (per connection)
//!
//! ```text
//!            ┌────────── reader ──────────┐
//! socket ──▶ │ frame → Request            │──▶ queries answered inline
//!            │ updates → Session (tagged) │──▶ epoch loop (safe ∥ / unsafe serial)
//!            └────────────────────────────┘        │ tagged replies
//!            ┌───────── replier ──────────┐ ◀──────┘
//!            │ (req_id, Reply) → Response │──┐
//!            └────────────────────────────┘  ├──▶ writer ──▶ socket
//!                       queries ─────────────┘
//! ```
//!
//! * **Pipelining:** the reader submits updates through
//!   [`Session::submit_op_tagged`](risgraph_core::server::Session::submit_op_tagged)
//!   without waiting; replies carry the wire request id and may
//!   complete out of order relative to queries (which the reader
//!   answers immediately) — exactly what the request-id protocol is
//!   for. Per-session submission order is still preserved by the epoch
//!   loop, so a connection's updates retain their program order.
//! * **Backpressure:** a bounded in-flight window per connection; the
//!   reader blocks (stops consuming socket bytes, letting TCP flow
//!   control push back on the client) once `window` updates are
//!   unanswered.
//! * **Robustness:** malformed, oversized or CRC-corrupt frames close
//!   that connection with a best-effort error response; an abrupt
//!   client disconnect simply drops the session — in-flight replies
//!   fall on the floor without wedging the epoch loop.
//! * **Graceful drain:** [`NetServer::shutdown`] stops accepting,
//!   half-closes every connection so in-flight updates finish and
//!   their replies flush, joins all connection threads, then shuts the
//!   inner [`Server`](risgraph_core::server::Server) down — which
//!   drains remaining epochs and flushes WAL *and* store.
//!
//! The `net_differential` suite proves the whole network path
//! observably identical to in-process sessions on multiple backends
//! and shard counts; `net_load` (in `risgraph-bench`) measures
//! client-observed ops/s and P50/P99/P999 over loopback.
//!
//! ## Replication
//!
//! A connection that sends `SUBSCRIBE` becomes a **follower**: the
//! server streams the epoch-merged, stamp-sorted WAL records
//! ([`risgraph_core::ReplicationFeed`]) from the requested offset —
//! catch-up first, then the live tail, heartbeats when idle — under
//! the leader's `max_followers` limit, with each outbound frame passing
//! the connection's bounded writer budget so a slow follower throttles
//! only itself, never the epoch loop. [`ReplicaServer`] is the
//! follower-side counterpart: it applies the stream onto any backend
//! through the core replay path, reconnects-and-resubscribes across
//! stream faults, and optionally serves the read-only Table 1 surface
//! (plus lag-reporting `STATS`) at its applied watermark.
//! `tests/replication_differential.rs` proves leader ≡ follower on
//! IA_Hash and ooc-mmap at shards 1 and 4, under injected frame faults.

#![warn(missing_docs)]

pub mod client;
pub mod replica;
pub mod server;

pub use client::{NetApplied, NetClient, NetReply};
pub use replica::{FollowerConfig, FollowerStats, ReplicaServer};
pub use server::{NetConfig, NetServer};
