//! # risgraph-net — the TCP serving tier
//!
//! RisGraph's point is per-update analysis served to *many concurrent
//! clients* at millions of ops/s with P999 below 20 ms (§4–§5). This
//! crate is the layer that makes that an observable scenario rather
//! than a library call: a length-prefixed, CRC-framed binary protocol
//! ([`risgraph_common::protocol`]) over TCP, an event-driven
//! [`NetServer`], and a [`NetClient`] usable both as a blocking
//! one-request-at-a-time client (the paper's emulated synchronous
//! users, §6.2) and as a **pipelined** client keeping a window of
//! requests in flight behind a reply demultiplexer — now also as a
//! **multiplexed** client running many logical sessions
//! ([`SessionHandle`]) over one socket.
//!
//! ## Server anatomy: an epoll reactor, not thread-per-connection
//!
//! A fixed pool of reactor workers ([`NetConfig::net_workers`], env
//! `RISGRAPH_NET_WORKERS`) owns every connection; the readiness layer
//! ([`reactor`]) is raw-FFI epoll + eventfd, the same no-new-deps
//! discipline as the mmap store. Total server threads are
//! O(net_workers), not O(connections).
//!
//! ```text
//!             ┌──────────── worker (one of N) ────────────┐
//!  accept ──▶ │ epoll: sockets + eventfd wakeup           │
//!  (rr to     │  ┌─ per-conn state machine ─────────────┐ │
//!   workers)  │  │ rbuf → frames → Request              │ │
//!             │  │   queries answered inline            │ │
//!             │  │   updates → core Session (tagged) ───┼─┼─▶ epoch loop
//!             │  │ replies ◀─ waker dings eventfd ◀─────┼─┼── tagged replies
//!             │  │ wbuf ← encoded Responses → socket    │ │
//!             │  └──────────────────────────────────────┘ │
//!             └───────────────────────────────────────────┘
//! ```
//!
//! * **Push-based replies:** each logical session installs a
//!   [`ReplyWaker`](risgraph_core::server::ReplyWaker); when the epoch
//!   loop finishes an update, the waker marks the `(connection,
//!   session)` pair ready and dings the owning worker's eventfd. No
//!   thread ever parks on a reply channel.
//! * **Pipelining:** updates are submitted through
//!   [`Session::submit_op_tagged`](risgraph_core::server::Session::submit_op_tagged)
//!   without waiting; replies carry the wire request id and may
//!   complete out of order relative to queries (answered inline) —
//!   exactly what the request-id protocol is for.
//! * **Backpressure:** a bounded in-flight window per connection; once
//!   full, the worker parks the update and drops read interest, so TCP
//!   flow control pushes back on the client. Outbound, a soft cap on
//!   the write buffer stalls query answering and feed pumping until
//!   the peer drains.
//! * **Robustness:** malformed, oversized or CRC-corrupt frames
//!   drain-close that connection with a best-effort error response; an
//!   abrupt disconnect drops its sessions — in-flight replies fall on
//!   the floor without wedging the epoch loop.
//! * **Graceful drain:** [`NetServer::shutdown`] retires the listener
//!   (after serving its backlog), gives every connection a final read
//!   pass, finishes in-flight updates and flushes their replies, joins
//!   the worker pool, then shuts the inner
//!   [`Server`](risgraph_core::server::Server) down — which drains
//!   remaining epochs and flushes WAL *and* store.
//!
//! ## Session multiplexing (protocol v2)
//!
//! [`NetClient::connect`] negotiates the protocol version with a
//! `Hello` exchange; against a v2 server,
//! [`NetClient::open_session`] yields [`SessionHandle`]s whose
//! requests ride the same socket wrapped in a session-id frame
//! ([`Request::InSession`](risgraph_common::protocol::Request::InSession)).
//! Server-side, each wire session id lazily maps to its own core
//! [`Session`](risgraph_core::server::Session) — which is exactly the
//! granularity the epoch loop orders submissions by, so per-session
//! program order is preserved while cross-session replies may
//! overtake. Pre-v2 peers (and the read-only replica) answer `Hello`
//! with version 1 and the client transparently stays unwrapped.
//!
//! The `net_differential` suite proves the whole network path
//! observably identical to in-process sessions on multiple backends
//! and shard counts; `session_mux` covers the multiplexing semantics;
//! `net_load` (in `risgraph-bench`) measures client-observed ops/s and
//! P50/P99/P999 over loopback, including a 64/1k/10k session sweep.
//!
//! ## Replication
//!
//! A connection that sends `SUBSCRIBE` becomes a **follower**: the
//! server streams the epoch-merged, stamp-sorted WAL records
//! ([`risgraph_core::ReplicationFeed`]) from the requested offset —
//! catch-up first, then the live tail, heartbeats when idle — under
//! the leader's `max_followers` limit. The stream is pumped by the
//! same reactor workers on their tick, gated by the connection's write
//! buffer cap, so a slow follower throttles only itself, never the
//! epoch loop — and followers no longer cost dedicated threads.
//! [`ReplicaServer`] is the follower-side counterpart: it applies the
//! stream onto any backend through the core replay path,
//! reconnects-and-resubscribes across stream faults, and optionally
//! serves the read-only Table 1 surface (plus lag-reporting `STATS`)
//! at its applied watermark. `tests/replication_differential.rs`
//! proves leader ≡ follower on IA_Hash and ooc-mmap at shards 1 and 4,
//! under injected frame faults.

#![warn(missing_docs)]

pub mod client;
pub mod reactor;
pub mod replica;
pub mod server;

pub use client::{NetApplied, NetClient, NetReply, SessionHandle};
pub use replica::{FollowerConfig, FollowerStats, ReplicaServer};
pub use server::{NetConfig, NetServer};
