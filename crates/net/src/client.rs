//! [`NetClient`]: the connection-side half of the wire protocol.
//!
//! One background reader thread demultiplexes response frames into
//! per-request slots keyed by request id; callers either block for
//! their reply immediately (the synchronous Table 1 methods) or keep a
//! window of requests in flight ([`NetClient::submit_update_pipelined`]
//! / [`NetClient::wait_reply`]) — the shape the `net_load` harness uses
//! to measure pipelined throughput against one-at-a-time submission.
//!
//! Connecting negotiates the protocol version with a `Hello` exchange;
//! against a v2 server, [`NetClient::open_session`] multiplexes many
//! logical sessions ([`SessionHandle`]) over the one socket — each
//! with its own server-side ordering domain, all sharing the reader,
//! the demux, and the globally-unique request-id space (which is why
//! responses need no session tag).

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use risgraph_common::hash::FxHashMap;
use risgraph_common::ids::{Edge, Update, VersionId, VertexId};
use risgraph_common::metrics::MetricValue;
use risgraph_common::protocol::{
    read_frame, write_frame, Request, Response, StatsReport, MAX_FRAME, MAX_RESPONSE_FRAME,
    PROTOCOL_VERSION,
};
use risgraph_common::{Error, Result};

/// What an applied update reports back (the wire view of
/// [`risgraph_core::server::Applied`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetApplied {
    /// Whether the update ran on the safe (parallel) path.
    pub safe: bool,
    /// Per-vertex result changes across all algorithms.
    pub result_changes: u64,
}

/// The reply to a submitted update or transaction (the wire view of
/// [`risgraph_core::server::Reply`]).
#[derive(Debug)]
pub struct NetReply {
    /// Version id of the result view after this operation (on error:
    /// the version preceding the failed operation).
    pub version: VersionId,
    /// Outcome.
    pub outcome: Result<NetApplied>,
}

/// Reply slots shared between callers and the demultiplexer thread.
struct Demux {
    slots: Mutex<DemuxState>,
    cv: Condvar,
}

struct DemuxState {
    /// `req_id → Some(response)` once arrived; `None` while pending.
    ready: FxHashMap<u64, Response>,
    /// Set when the reader thread dies (EOF, socket error, protocol
    /// violation); every waiter is failed with this.
    dead: Option<String>,
}

/// A blocking **and** pipelined client for one server connection.
pub struct NetClient {
    writer: Mutex<BufWriter<TcpStream>>,
    stream: TcpStream,
    demux: Arc<Demux>,
    reader: Option<JoinHandle<()>>,
    next_id: AtomicU64,
    /// Negotiated protocol version (1 = no session multiplexing).
    proto_version: u32,
    /// Next wire session id for [`NetClient::open_session`]. Session
    /// ids are client-chosen; the server creates sessions lazily on
    /// first use, so opening is purely local.
    next_session: AtomicU64,
}

impl NetClient {
    /// Connect to a [`crate::NetServer`], negotiating the highest
    /// protocol version both sides speak.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient> {
        Self::connect_with_version(addr, PROTOCOL_VERSION)
    }

    /// Connect offering at most protocol version `max_version`.
    /// `max_version = 1` skips the `Hello` exchange entirely —
    /// byte-for-byte the pre-v2 client, for wire-compat tests.
    pub fn connect_with_version(addr: impl ToSocketAddrs, max_version: u32) -> Result<NetClient> {
        let mut client = Self::connect_raw(addr)?;
        if max_version >= 2 {
            client.proto_version = match client.call(&Request::Hello {
                version: max_version,
            })? {
                Response::Hello { version } => version.clamp(1, max_version),
                // Admission gating: the server is shedding new
                // sessions. Surface the typed retryable error — never
                // silently downgrade to v1, the peer clearly speaks v2.
                Response::Busy { cause, message } => {
                    return Err(busy_err(cause, &message));
                }
                // A peer that refuses Hello still speaks v1 (e.g. a
                // replica predating negotiation); stay unwrapped.
                Response::Failed { .. } => 1,
                other => {
                    return Err(Error::Protocol(format!(
                        "hello reply has wrong shape: {other:?}"
                    )))
                }
            };
        }
        Ok(client)
    }

    fn connect_raw(addr: impl ToSocketAddrs) -> Result<NetClient> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| Error::Protocol(format!("connect failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        let write_half = stream
            .try_clone()
            .map_err(|e| Error::Protocol(format!("clone failed: {e}")))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| Error::Protocol(format!("clone failed: {e}")))?;
        let demux = Arc::new(Demux {
            slots: Mutex::new(DemuxState {
                ready: FxHashMap::default(),
                dead: None,
            }),
            cv: Condvar::new(),
        });
        let reader_demux = Arc::clone(&demux);
        let reader = std::thread::Builder::new()
            .name("risgraph-net-client-reader".into())
            .spawn(move || {
                let mut r = BufReader::new(read_half);
                let reason = loop {
                    match read_frame(&mut r, MAX_RESPONSE_FRAME) {
                        Ok(Some(payload)) => match Response::decode(&payload) {
                            // Request id 0 is the server's reserved
                            // connection-level error channel (framing
                            // violations): no caller can wait on it, so
                            // surface it as the death reason every
                            // in-flight waiter sees.
                            Ok((0, Response::Failed { error, .. })) => {
                                break format!(
                                    "server closed the connection: {}",
                                    error.to_error()
                                );
                            }
                            // Defensive twin of the above: an id-0
                            // Busy (connection-level shed/eviction) is
                            // also a death sentence for every waiter.
                            Ok((0, Response::Busy { cause, message })) => {
                                break format!(
                                    "server closed the connection: {}",
                                    busy_err(cause, &message)
                                );
                            }
                            Ok((req_id, resp)) => {
                                let mut s = reader_demux.slots.lock().unwrap();
                                s.ready.insert(req_id, resp);
                                drop(s);
                                reader_demux.cv.notify_all();
                            }
                            Err(e) => break e.to_string(),
                        },
                        Ok(None) => break "connection closed by server".into(),
                        Err(e) => break e.to_string(),
                    }
                };
                let mut s = reader_demux.slots.lock().unwrap();
                s.dead = Some(reason);
                drop(s);
                reader_demux.cv.notify_all();
            })
            .map_err(|e| Error::Protocol(format!("spawn reader: {e}")))?;
        Ok(NetClient {
            writer: Mutex::new(BufWriter::new(write_half)),
            stream,
            demux,
            reader: Some(reader),
            next_id: AtomicU64::new(1),
            proto_version: 1,
            next_session: AtomicU64::new(1),
        })
    }

    /// The protocol version negotiated at connect (1 when the peer
    /// does not speak sessions).
    pub fn protocol_version(&self) -> u32 {
        self.proto_version
    }

    /// Open a logical session multiplexed over this connection.
    /// Requires a v2 peer; each session gets its own server-side
    /// ordering domain (updates within a session keep program order,
    /// replies across sessions may overtake).
    pub fn open_session(&self) -> Result<SessionHandle<'_>> {
        if self.proto_version < 2 {
            return Err(Error::Protocol(format!(
                "peer speaks protocol v{}: session multiplexing needs v2",
                self.proto_version
            )));
        }
        Ok(SessionHandle {
            client: self,
            sid: self.next_session.fetch_add(1, Ordering::Relaxed),
        })
    }

    fn send_payload(&self, id: u64, payload: Vec<u8>) -> Result<u64> {
        // Refuse locally what the server would reject as oversized —
        // failing one request beats having the whole connection (and
        // every other pipelined request on it) torn down.
        if payload.len() > MAX_FRAME {
            return Err(Error::Protocol(format!(
                "request encodes to {} bytes, over the {MAX_FRAME}-byte frame limit",
                payload.len()
            )));
        }
        let mut w = self.writer.lock().unwrap();
        write_frame(&mut *w, &payload)?;
        w.flush()?;
        Ok(id)
    }

    /// Send `req`, returning its request id without waiting.
    pub fn send(&self, req: &Request) -> Result<u64> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.send_payload(id, req.encode(id))
    }

    /// Send `req` wrapped in session `sid`, returning its request id.
    fn send_in_session(&self, req: &Request, sid: u64) -> Result<u64> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.send_payload(id, req.encode_in_session(id, sid))
    }

    /// Block until the response for `id` arrives.
    pub fn wait(&self, id: u64) -> Result<Response> {
        let mut s = self.demux.slots.lock().unwrap();
        loop {
            if let Some(resp) = s.ready.remove(&id) {
                return Ok(resp);
            }
            if let Some(reason) = &s.dead {
                return Err(Error::Protocol(reason.clone()));
            }
            s = self.demux.cv.wait(s).unwrap();
        }
    }

    fn call(&self, req: &Request) -> Result<Response> {
        let id = self.send(req)?;
        self.wait(id)
    }

    // -- pipelined update path ---------------------------------------

    /// Submit an update without waiting; pair with
    /// [`NetClient::wait_reply`] to collect it later. Keep several in
    /// flight to pipeline the connection.
    pub fn submit_update_pipelined(&self, u: &Update) -> Result<u64> {
        self.send(&Request::Update(*u))
    }

    /// Wait for a pipelined update submitted earlier.
    pub fn wait_reply(&self, id: u64) -> Result<NetReply> {
        to_net_reply(self.wait(id)?)
    }

    // -- blocking Table 1 surface ------------------------------------

    /// Submit one update and wait for its reply.
    pub fn submit_update(&self, u: &Update) -> Result<NetReply> {
        let id = self.submit_update_pipelined(u)?;
        self.wait_reply(id)
    }

    /// `ins_edge(edge) → version_id`.
    pub fn ins_edge(&self, e: Edge) -> Result<NetReply> {
        self.submit_update(&Update::InsEdge(e))
    }

    /// `del_edge(edge) → version_id`.
    pub fn del_edge(&self, e: Edge) -> Result<NetReply> {
        self.submit_update(&Update::DelEdge(e))
    }

    /// `ins_vertex(vertex_id) → version_id`.
    pub fn ins_vertex(&self, v: VertexId) -> Result<NetReply> {
        self.submit_update(&Update::InsVertex(v))
    }

    /// `del_vertex(vertex_id) → version_id`.
    pub fn del_vertex(&self, v: VertexId) -> Result<NetReply> {
        self.submit_update(&Update::DelVertex(v))
    }

    /// `txn_updates(updates) → version_id`: an atomic batch.
    pub fn txn_updates(&self, updates: Vec<Update>) -> Result<NetReply> {
        to_net_reply(self.call(&Request::Txn(updates))?)
    }

    /// `get_value(version_id, vertex_id) → value` for algorithm `algo`.
    pub fn get_value(&self, algo: u32, version: VersionId, vertex: VertexId) -> Result<u64> {
        match self.call(&Request::GetValue {
            algo,
            version,
            vertex,
        })? {
            Response::Value(v) => Ok(v),
            Response::Failed { error, .. } => Err(error.to_error()),
            Response::Busy { cause, message } => Err(busy_err(cause, &message)),
            other => Err(Error::Protocol(format!(
                "get_value reply has wrong shape: {other:?}"
            ))),
        }
    }

    /// `get_parent(version_id, vertex_id) → edge`.
    pub fn get_parent(
        &self,
        algo: u32,
        version: VersionId,
        vertex: VertexId,
    ) -> Result<Option<Edge>> {
        match self.call(&Request::GetParent {
            algo,
            version,
            vertex,
        })? {
            Response::Parent(p) => Ok(p),
            Response::Failed { error, .. } => Err(error.to_error()),
            Response::Busy { cause, message } => Err(busy_err(cause, &message)),
            other => Err(Error::Protocol(format!(
                "get_parent reply has wrong shape: {other:?}"
            ))),
        }
    }

    /// `get_modified_vertices(version_id) → vertex_ids`.
    pub fn get_modified_vertices(&self, algo: u32, version: VersionId) -> Result<Vec<VertexId>> {
        match self.call(&Request::GetModified { algo, version })? {
            Response::Modified(vs) => Ok(vs),
            Response::Failed { error, .. } => Err(error.to_error()),
            Response::Busy { cause, message } => Err(busy_err(cause, &message)),
            other => Err(Error::Protocol(format!(
                "get_modified reply has wrong shape: {other:?}"
            ))),
        }
    }

    /// `get_current_version() → version_id`.
    pub fn current_version(&self) -> Result<VersionId> {
        match self.call(&Request::CurrentVersion)? {
            Response::Version(v) => Ok(v),
            Response::Failed { error, .. } => Err(error.to_error()),
            Response::Busy { cause, message } => Err(busy_err(cause, &message)),
            other => Err(Error::Protocol(format!(
                "current_version reply has wrong shape: {other:?}"
            ))),
        }
    }

    /// `release_history(version_id)`: this connection's session no
    /// longer needs snapshots strictly older than `version`.
    pub fn release_history(&self, version: VersionId) -> Result<()> {
        match self.call(&Request::Release(version))? {
            Response::Released => Ok(()),
            Response::Failed { error, .. } => Err(error.to_error()),
            Response::Busy { cause, message } => Err(busy_err(cause, &message)),
            other => Err(Error::Protocol(format!(
                "release reply has wrong shape: {other:?}"
            ))),
        }
    }

    /// Server counters and completion-latency percentiles.
    pub fn stats(&self) -> Result<StatsReport> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Failed { error, .. } => Err(error.to_error()),
            Response::Busy { cause, message } => Err(busy_err(cause, &message)),
            other => Err(Error::Protocol(format!(
                "stats reply has wrong shape: {other:?}"
            ))),
        }
    }

    /// The server's full metrics-registry snapshot: every named
    /// counter, gauge and histogram summary, sorted by name. Schema-
    /// less — entries with kinds this client build doesn't know are
    /// skipped during decoding, so new server metrics never break an
    /// old client.
    pub fn metrics(&self) -> Result<Vec<(String, MetricValue)>> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            Response::Failed { error, .. } => Err(error.to_error()),
            Response::Busy { cause, message } => Err(busy_err(cause, &message)),
            other => Err(Error::Protocol(format!(
                "metrics reply has wrong shape: {other:?}"
            ))),
        }
    }
}

/// A shed reply as the typed, retryable [`Error::Busy`] — callers can
/// match [`Error::is_busy`] and resubmit after backoff.
fn busy_err(cause: risgraph_common::protocol::BusyCause, message: &str) -> Error {
    Error::Busy(format!("{cause}: {message}"))
}

/// Translate an update/txn [`Response`] into a [`NetReply`].
fn to_net_reply(resp: Response) -> Result<NetReply> {
    match resp {
        Response::Applied {
            version,
            safe,
            result_changes,
        } => Ok(NetReply {
            version,
            outcome: Ok(NetApplied {
                safe,
                result_changes,
            }),
        }),
        Response::Failed { version, error } => Ok(NetReply {
            version,
            outcome: Err(error.to_error()),
        }),
        // Admission shed: the update was never admitted (no version
        // was consumed — `version` reports 0), and a retry after
        // backoff is safe.
        Response::Busy { cause, message } => Ok(NetReply {
            version: 0,
            outcome: Err(busy_err(cause, &message)),
        }),
        other => Err(Error::Protocol(format!(
            "update reply has wrong shape: {other:?}"
        ))),
    }
}

/// One logical session multiplexed over a [`NetClient`] connection
/// (protocol v2). Sessions share the socket, reader thread, and
/// request-id space; each owns its server-side submission order.
/// Dropping the handle is free — the server releases its session state
/// when the connection closes.
pub struct SessionHandle<'a> {
    client: &'a NetClient,
    sid: u64,
}

impl std::fmt::Debug for SessionHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("sid", &self.sid)
            .finish()
    }
}

impl SessionHandle<'_> {
    /// This session's wire id (unique per connection).
    pub fn id(&self) -> u64 {
        self.sid
    }

    fn call(&self, req: &Request) -> Result<Response> {
        let id = self.client.send_in_session(req, self.sid)?;
        self.client.wait(id)
    }

    /// Submit an update on this session without waiting; pair with
    /// [`SessionHandle::wait_reply`].
    pub fn submit_update_pipelined(&self, u: &Update) -> Result<u64> {
        self.client.send_in_session(&Request::Update(*u), self.sid)
    }

    /// Wait for a pipelined update submitted earlier on this client.
    pub fn wait_reply(&self, id: u64) -> Result<NetReply> {
        self.client.wait_reply(id)
    }

    /// Submit one update on this session and wait for its reply.
    pub fn submit_update(&self, u: &Update) -> Result<NetReply> {
        let id = self.submit_update_pipelined(u)?;
        self.wait_reply(id)
    }

    /// `txn_updates(updates) → version_id`: an atomic batch on this
    /// session.
    pub fn txn_updates(&self, updates: Vec<Update>) -> Result<NetReply> {
        to_net_reply(self.call(&Request::Txn(updates))?)
    }

    /// `get_value(version_id, vertex_id) → value` for algorithm `algo`.
    pub fn get_value(&self, algo: u32, version: VersionId, vertex: VertexId) -> Result<u64> {
        match self.call(&Request::GetValue {
            algo,
            version,
            vertex,
        })? {
            Response::Value(v) => Ok(v),
            Response::Failed { error, .. } => Err(error.to_error()),
            Response::Busy { cause, message } => Err(busy_err(cause, &message)),
            other => Err(Error::Protocol(format!(
                "get_value reply has wrong shape: {other:?}"
            ))),
        }
    }

    /// `get_parent(version_id, vertex_id) → edge`.
    pub fn get_parent(
        &self,
        algo: u32,
        version: VersionId,
        vertex: VertexId,
    ) -> Result<Option<Edge>> {
        match self.call(&Request::GetParent {
            algo,
            version,
            vertex,
        })? {
            Response::Parent(p) => Ok(p),
            Response::Failed { error, .. } => Err(error.to_error()),
            Response::Busy { cause, message } => Err(busy_err(cause, &message)),
            other => Err(Error::Protocol(format!(
                "get_parent reply has wrong shape: {other:?}"
            ))),
        }
    }

    /// `get_modified_vertices(version_id) → vertex_ids`.
    pub fn get_modified_vertices(&self, algo: u32, version: VersionId) -> Result<Vec<VertexId>> {
        match self.call(&Request::GetModified { algo, version })? {
            Response::Modified(vs) => Ok(vs),
            Response::Failed { error, .. } => Err(error.to_error()),
            Response::Busy { cause, message } => Err(busy_err(cause, &message)),
            other => Err(Error::Protocol(format!(
                "get_modified reply has wrong shape: {other:?}"
            ))),
        }
    }

    /// `release_history(version_id)` for this session's history hold.
    pub fn release_history(&self, version: VersionId) -> Result<()> {
        match self.call(&Request::Release(version))? {
            Response::Released => Ok(()),
            Response::Failed { error, .. } => Err(error.to_error()),
            Response::Busy { cause, message } => Err(busy_err(cause, &message)),
            other => Err(Error::Protocol(format!(
                "release reply has wrong shape: {other:?}"
            ))),
        }
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}
