//! Connection-scale soak (ignored by default; CI's slow job runs it
//! with an `ulimit -n` bump): thousands of concurrent sockets against
//! the reactor, proving the thread count stays O(net_workers) — not
//! O(connections) — while every connection stays live and served, and
//! that the connection gauge drains to zero once they close.

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use risgraph_algorithms::Bfs;
use risgraph_common::protocol::{write_frame, Request, Response, FRAME_HEADER};
use risgraph_core::engine::DynAlgorithm;
use risgraph_core::server::ServerConfig;
use risgraph_net::{NetConfig, NetServer};

/// `getrlimit`/`setrlimit` via raw FFI (no-new-deps discipline): the
/// soak needs ~2 fds per connection in this one process, far over the
/// usual 1024 default soft limit.
mod rlimit {
    const RLIMIT_NOFILE: i32 = 7;

    #[repr(C)]
    struct Rlimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    /// Raise the fd soft limit toward `want` (bounded by the hard
    /// limit) and return the resulting soft limit.
    pub fn raise_nofile(want: u64) -> u64 {
        unsafe {
            let mut lim = Rlimit {
                rlim_cur: 0,
                rlim_max: 0,
            };
            if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
                return 1024;
            }
            let target = want.min(lim.rlim_max);
            if target > lim.rlim_cur {
                let new = Rlimit {
                    rlim_cur: target,
                    rlim_max: lim.rlim_max,
                };
                if setrlimit(RLIMIT_NOFILE, &new) == 0 {
                    return target;
                }
            }
            lim.rlim_cur
        }
    }
}

/// Threads of this process, from /proc/self/status.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap()
}

/// A raw v1 client: connect and exchange one CurrentVersion call.
fn open_and_probe(addr: SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).ok();
    let payload = Request::CurrentVersion.encode(1);
    write_frame(&mut s, &payload).unwrap();
    read_one_response(&mut s);
    s
}

fn read_one_response(s: &mut TcpStream) {
    let mut header = [0u8; FRAME_HEADER];
    s.read_exact(&mut header).unwrap();
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let mut payload = vec![0u8; len];
    s.read_exact(&mut payload).unwrap();
    let (_, resp) = Response::decode(&payload).unwrap();
    assert!(matches!(resp, Response::Version(_)), "probe got {resp:?}");
}

fn eventually(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

#[test]
#[ignore = "10k-connection soak; run in the slow CI job with an ulimit bump"]
fn ten_thousand_connections_stay_on_a_fixed_thread_pool() {
    // Both ends of every connection live in this process: budget 2 fds
    // per connection plus slack for the server/engine/WAL internals.
    let soft = rlimit::raise_nofile(65536);
    let conns = (10_000usize).min(((soft.saturating_sub(256)) / 2) as usize);
    assert!(
        conns >= 1_000,
        "fd limit {soft} too low for a meaningful soak"
    );

    let mut config = ServerConfig::default();
    config.engine.threads = 1;
    config.shards = 1;
    let srv = NetServer::start(
        vec![Arc::new(Bfs::new(0)) as DynAlgorithm],
        64,
        config,
        NetConfig {
            net_workers: 4,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = srv.local_addr();
    let threads_before = thread_count();

    let mut sockets = Vec::with_capacity(conns);
    for _ in 0..conns {
        sockets.push(open_and_probe(addr));
    }
    assert!(
        eventually(30, || srv.live_connections() == conns),
        "gauge stuck at {} of {conns}",
        srv.live_connections()
    );

    // Every connection was served (the probe above) and is still live.
    // The whole process — engine, WAL, 4 reactor workers, test main —
    // must sit far below O(connections) threads; the old
    // thread-per-connection design would need ~2 threads per socket.
    let threads = thread_count();
    assert!(
        threads < 200,
        "{threads} threads serving {conns} connections (was {threads_before} before)"
    );

    // A random sample still gets answers while all others are open.
    for i in (0..conns).step_by(conns / 100) {
        let s = &mut sockets[i];
        let payload = Request::CurrentVersion.encode(2);
        write_frame(s, &payload).unwrap();
        read_one_response(s);
    }

    // Closing everything drains the gauge with no new accepts.
    drop(sockets);
    assert!(
        eventually(60, || srv.live_connections() == 0),
        "gauge stuck at {} after close",
        srv.live_connections()
    );
    srv.shutdown();
}
