//! Session multiplexing over one connection (protocol v2): version
//! negotiation and its downgrade paths, per-session ordering with
//! cross-session independence, the session cap, the
//! wrapped-frame-before-Hello protocol error, and the
//! connection-registry regression (gauges shrink with no new
//! connects) on both the reactor server and the replica listener.

use std::sync::Arc;
use std::time::{Duration, Instant};

use risgraph_algorithms::Bfs;
use risgraph_common::ids::{Edge, Update};
use risgraph_common::protocol::{Request, PROTOCOL_VERSION};
use risgraph_core::engine::DynAlgorithm;
use risgraph_core::server::ServerConfig;
use risgraph_net::{FollowerConfig, NetClient, NetConfig, NetServer, ReplicaServer};

fn bfs() -> Vec<DynAlgorithm> {
    vec![Arc::new(Bfs::new(0)) as DynAlgorithm]
}

fn config() -> ServerConfig {
    let mut config = ServerConfig::default();
    config.engine.threads = 1;
    config.shards = 1;
    config
}

fn start(capacity: usize, net: NetConfig) -> NetServer {
    NetServer::start(bfs(), capacity, config(), net).unwrap()
}

/// Poll `cond` for up to `secs` seconds.
fn eventually(secs: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn connect_negotiates_v2_and_excess_versions_clamp() {
    let srv = start(16, NetConfig::default());
    let c = NetClient::connect(srv.local_addr()).unwrap();
    assert_eq!(c.protocol_version(), PROTOCOL_VERSION);

    // Offering a future version clamps to what the server speaks.
    let c99 = NetClient::connect_with_version(srv.local_addr(), 99).unwrap();
    assert_eq!(c99.protocol_version(), PROTOCOL_VERSION);

    // Capping ourselves at v1 skips negotiation; sessions are refused
    // locally.
    let c1 = NetClient::connect_with_version(srv.local_addr(), 1).unwrap();
    assert_eq!(c1.protocol_version(), 1);
    let err = c1.open_session().unwrap_err().to_string();
    assert!(err.contains("v2"), "unexpected error: {err}");
    // ... and the v1 surface still works on the same connection.
    c1.ins_edge(Edge::new(0, 1, 0)).unwrap().outcome.unwrap();
}

#[test]
fn interleaved_sessions_keep_per_session_order() {
    let srv = start(256, NetConfig::default());
    let c = NetClient::connect(srv.local_addr()).unwrap();
    let a = c.open_session().unwrap();
    let b = c.open_session().unwrap();
    assert_ne!(a.id(), b.id());

    // Interleave pipelined updates: sessions alternate on the wire.
    // Session A grows a chain from 0, session B from 100.
    let mut ids_a = Vec::new();
    let mut ids_b = Vec::new();
    for i in 0..32u64 {
        ids_a.push(
            a.submit_update_pipelined(&Update::InsEdge(Edge::new(i, i + 1, 0)))
                .unwrap(),
        );
        ids_b.push(
            b.submit_update_pipelined(&Update::InsEdge(Edge::new(100 + i, 101 + i, 0)))
                .unwrap(),
        );
    }
    // Collect B before A: replies are demuxed by request id, so
    // cross-session completion order never blocks a waiter.
    let versions_b: Vec<u64> = ids_b
        .iter()
        .map(|id| {
            let r = b.wait_reply(*id).unwrap();
            r.outcome.unwrap();
            r.version
        })
        .collect();
    let versions_a: Vec<u64> = ids_a
        .iter()
        .map(|id| {
            let r = a.wait_reply(*id).unwrap();
            r.outcome.unwrap();
            r.version
        })
        .collect();
    // Per-session program order: each session's versions are strictly
    // increasing in submission order.
    for vs in [&versions_a, &versions_b] {
        for w in vs.windows(2) {
            assert!(w[0] < w[1], "session replies out of program order: {vs:?}");
        }
    }
    // Both chains fully applied: BFS depths at the chain tails.
    let tip = c.current_version().unwrap();
    assert_eq!(a.get_value(0, tip, 32).unwrap(), 32);
    assert_eq!(
        b.get_value(0, tip, 132).unwrap(),
        u64::MAX,
        "disconnected from root"
    );
    assert_eq!(
        b.get_modified_vertices(0, versions_b[0]).unwrap(),
        Vec::<u64>::new()
    );
}

#[test]
fn queries_and_txns_work_per_session() {
    let srv = start(64, NetConfig::default());
    srv.server().load_edges(&[(0, 1, 0)]);
    let c = NetClient::connect(srv.local_addr()).unwrap();
    let s = c.open_session().unwrap();

    let r = s
        .txn_updates(vec![
            Update::InsEdge(Edge::new(1, 2, 0)),
            Update::InsEdge(Edge::new(2, 3, 0)),
        ])
        .unwrap();
    r.outcome.as_ref().unwrap();
    assert_eq!(s.get_value(0, r.version, 3).unwrap(), 3);
    assert_eq!(
        s.get_parent(0, r.version, 3).unwrap(),
        Some(Edge::new(2, 3, 0))
    );
    let mut modified = s.get_modified_vertices(0, r.version).unwrap();
    modified.sort_unstable();
    assert_eq!(modified, vec![2, 3]);
    s.release_history(r.version).unwrap();
}

#[test]
fn session_cap_fails_request_but_keeps_connection() {
    let net = NetConfig {
        max_sessions_per_conn: 2,
        ..NetConfig::default()
    };
    let srv = start(16, net);
    let c = NetClient::connect(srv.local_addr()).unwrap();
    let s1 = c.open_session().unwrap();
    let s2 = c.open_session().unwrap();
    let s3 = c.open_session().unwrap();
    s1.submit_update(&Update::InsEdge(Edge::new(0, 1, 0)))
        .unwrap()
        .outcome
        .unwrap();
    s2.submit_update(&Update::InsEdge(Edge::new(1, 2, 0)))
        .unwrap()
        .outcome
        .unwrap();
    // The third session is over the cap: its request fails...
    let err = s3
        .submit_update(&Update::InsEdge(Edge::new(2, 3, 0)))
        .unwrap()
        .outcome
        .unwrap_err()
        .to_string();
    assert!(err.contains("session limit"), "unexpected error: {err}");
    // ... but the connection and its existing sessions stay healthy.
    s1.submit_update(&Update::InsEdge(Edge::new(2, 3, 0)))
        .unwrap()
        .outcome
        .unwrap();
    assert_eq!(c.current_version().unwrap(), srv.server().current_version());
}

#[test]
fn wrapped_frame_before_negotiation_is_a_protocol_error() {
    let srv = start(16, NetConfig::default());
    // A client that never sent Hello but emits a session wrapper: the
    // server cannot attribute sessions pre-negotiation, so the
    // connection is drain-closed with the id-0 error report.
    let c = NetClient::connect_with_version(srv.local_addr(), 1).unwrap();
    let id = c
        .send(&Request::InSession {
            sid: 7,
            req: Box::new(Request::CurrentVersion),
        })
        .unwrap();
    let err = c.wait(id).unwrap_err().to_string();
    assert!(
        err.contains("negotiation") || err.contains("closed"),
        "unexpected error: {err}"
    );
    assert!(eventually(5, || srv.live_connections() == 0));
}

#[test]
fn subscribe_refused_inside_a_session_without_closing() {
    let mut cfg = config();
    cfg.max_followers = 1;
    let srv = NetServer::start(bfs(), 16, cfg, NetConfig::default()).unwrap();
    let c = NetClient::connect(srv.local_addr()).unwrap();
    let s = c.open_session().unwrap();
    let id = c
        .send(&Request::InSession {
            sid: s.id(),
            req: Box::new(Request::Subscribe { from: 0 }),
        })
        .unwrap();
    let resp = c.wait(id).unwrap();
    let shown = format!("{resp:?}");
    assert!(shown.contains("Failed"), "expected refusal, got {shown}");
    // The connection survives the refusal.
    s.submit_update(&Update::InsEdge(Edge::new(0, 1, 0)))
        .unwrap()
        .outcome
        .unwrap();
}

/// The registry-leak regression (reactor side): closed connections
/// leave the gauge without any new accept arriving.
#[test]
fn connection_gauge_shrinks_without_new_connects() {
    let srv = start(16, NetConfig::default());
    let clients: Vec<NetClient> = (0..3)
        .map(|_| NetClient::connect(srv.local_addr()).unwrap())
        .collect();
    for c in &clients {
        c.current_version().unwrap();
    }
    assert!(
        eventually(5, || srv.live_connections() == 3),
        "expected 3 live connections, saw {}",
        srv.live_connections()
    );
    drop(clients);
    assert!(
        eventually(5, || srv.live_connections() == 0),
        "connection gauge stuck at {} after all clients dropped",
        srv.live_connections()
    );
}

/// The registry-leak regression (replica side) plus the negotiation
/// downgrade path: the replica answers Hello with v1, refuses session
/// wrappers without closing, and prunes finished query connections on
/// its poll tick — no new connect needed.
#[test]
fn replica_downgrades_to_v1_and_prunes_idle_registry() {
    let mut leader_cfg = config();
    leader_cfg.max_followers = 1;
    let leader = NetServer::start(bfs(), 64, leader_cfg, NetConfig::default()).unwrap();
    let lc = NetClient::connect(leader.local_addr()).unwrap();
    lc.ins_edge(Edge::new(0, 1, 0)).unwrap().outcome.unwrap();

    let replica = ReplicaServer::start(
        bfs(),
        64,
        config(),
        FollowerConfig {
            listen: Some("127.0.0.1:0".into()),
            ..FollowerConfig::to_leader(leader.local_addr().to_string())
        },
    )
    .unwrap();
    let addr = replica.local_addr().unwrap();

    // Downgrade: the replica answers Hello with version 1, so the
    // client transparently stays unwrapped...
    let rc = NetClient::connect(addr).unwrap();
    assert_eq!(rc.protocol_version(), 1);
    assert!(rc.open_session().is_err());
    // ... and a forced session wrapper is refused per-request, keeping
    // the connection alive.
    let id = rc
        .send(&Request::InSession {
            sid: 1,
            req: Box::new(Request::CurrentVersion),
        })
        .unwrap();
    let shown = format!("{:?}", rc.wait(id).unwrap());
    assert!(shown.contains("Failed"), "expected refusal, got {shown}");
    rc.current_version().unwrap();

    // Registry regression: extra connections leave the registry after
    // dropping, with no further accepts.
    let extra: Vec<NetClient> = (0..2).map(|_| NetClient::connect(addr).unwrap()).collect();
    for c in &extra {
        c.current_version().unwrap();
    }
    assert!(eventually(5, || replica.live_query_connections() == 3));
    drop(extra);
    drop(rc);
    assert!(
        eventually(5, || replica.live_query_connections() == 0),
        "replica registry stuck at {}",
        replica.live_query_connections()
    );

    replica.shutdown();
    leader.shutdown();
}
