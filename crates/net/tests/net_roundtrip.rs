//! Loopback smoke tests for the serving tier: the full Table 1 surface
//! over a real socket, pipelining, and connection robustness. The
//! cross-backend differential proof lives in the workspace-level
//! `tests/net_differential.rs`.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use risgraph_algorithms::Bfs;
use risgraph_common::ids::{Edge, Update};
use risgraph_common::protocol::{write_frame, Request};
use risgraph_core::engine::DynAlgorithm;
use risgraph_core::server::ServerConfig;
use risgraph_net::{NetClient, NetConfig, NetServer};

fn bfs_config() -> ServerConfig {
    let mut config = ServerConfig::default();
    config.engine.threads = 2;
    config
}

fn start_bfs(capacity: usize) -> NetServer {
    NetServer::start(
        vec![Arc::new(Bfs::new(0)) as DynAlgorithm],
        capacity,
        bfs_config(),
        // This suite asserts every pipelined request is admitted, so
        // pin admission off regardless of the environment — the CI
        // `test-admission` job runs the net suite with tiny
        // `RISGRAPH_NET_*` budgets to pressure the shed paths, and
        // deliberate shedding is `tests/admission.rs`' job, not ours.
        NetConfig {
            inflight_budget: 0,
            session_quota: 0,
            ..NetConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn full_api_surface_over_loopback() {
    let srv = start_bfs(32);
    srv.server().load_edges(&[(0, 1, 0)]);
    let c = NetClient::connect(srv.local_addr()).unwrap();

    // Updates and their versions.
    let r1 = c.ins_edge(Edge::new(1, 2, 0)).unwrap();
    let a1 = r1.outcome.unwrap();
    assert!(!a1.safe, "chain extension is unsafe");
    assert_eq!(a1.result_changes, 1);
    assert_eq!(c.get_value(0, r1.version, 2).unwrap(), 2);
    assert_eq!(
        c.get_parent(0, r1.version, 2).unwrap(),
        Some(Edge::new(1, 2, 0))
    );
    assert_eq!(c.get_modified_vertices(0, r1.version).unwrap(), vec![2]);

    // A safe back edge.
    let r2 = c.ins_edge(Edge::new(2, 0, 0)).unwrap();
    assert!(r2.outcome.unwrap().safe);
    assert!(r2.version > r1.version);
    assert_eq!(c.current_version().unwrap(), r2.version);

    // Transactions.
    let r3 = c
        .txn_updates(vec![
            Update::InsEdge(Edge::new(2, 3, 0)),
            Update::InsEdge(Edge::new(3, 4, 0)),
        ])
        .unwrap();
    assert!(r3.outcome.is_ok());
    assert_eq!(c.get_value(0, r3.version, 4).unwrap(), 4);

    // Vertex lifecycle + error passthrough.
    assert!(c.ins_vertex(9).unwrap().outcome.is_ok());
    assert!(c.ins_vertex(9).unwrap().outcome.is_err(), "duplicate");
    assert!(c.del_vertex(9).unwrap().outcome.is_ok());
    let err = c.del_edge(Edge::new(7, 8, 0)).unwrap();
    assert!(matches!(
        err.outcome,
        Err(risgraph_common::Error::EdgeNotFound(_))
    ));

    // History release + stats.
    c.release_history(r3.version).unwrap();
    let stats = c.stats().unwrap();
    assert!(stats.latency_count >= 6, "updates sampled: {stats:?}");
    assert!(stats.latency_p50_ns > 0);
    assert!(stats.latency_p999_ns >= stats.latency_p50_ns);
    assert_eq!(stats.version, c.current_version().unwrap());

    srv.shutdown();
}

#[test]
fn pipelined_window_preserves_order_and_tags() {
    let srv = start_bfs(128);
    srv.server().load_edges(&[(0, 1, 0)]);
    let c = NetClient::connect(srv.local_addr()).unwrap();

    // Fill a deep pipeline; per-connection program order must hold so
    // the chain builds deterministically.
    let n = 64u64;
    let ids: Vec<u64> = (0..n)
        .map(|i| {
            c.submit_update_pipelined(&Update::InsEdge(Edge::new(i + 1, i + 2, 0)))
                .unwrap()
        })
        .collect();
    let mut last_version = 0;
    for id in ids {
        let reply = c.wait_reply(id).unwrap();
        assert!(reply.outcome.is_ok());
        assert!(reply.version > last_version, "versions monotone");
        last_version = reply.version;
    }
    assert_eq!(c.get_value(0, last_version, n + 1).unwrap(), n + 1);
    srv.shutdown();
}

#[test]
fn queries_overtake_inflight_updates() {
    let srv = start_bfs(64);
    srv.server().load_edges(&[(0, 1, 0)]);
    let c = NetClient::connect(srv.local_addr()).unwrap();
    let v0 = c.current_version().unwrap();
    // Updates in flight...
    let ids: Vec<u64> = (0..16u64)
        .map(|i| {
            c.submit_update_pipelined(&Update::InsEdge(Edge::new(i + 1, i + 2, 0)))
                .unwrap()
        })
        .collect();
    // ...while a query on an *old* version answers immediately and
    // correctly (out-of-order completion across the pipeline).
    assert_eq!(c.get_value(0, v0, 1).unwrap(), 1);
    for id in ids {
        assert!(c.wait_reply(id).unwrap().outcome.is_ok());
    }
    srv.shutdown();
}

#[test]
fn two_clients_share_one_server() {
    let srv = start_bfs(256);
    srv.server().load_edges(&[(0, 1, 0)]);
    let addr = srv.local_addr();
    let handles: Vec<_> = (0..2u64)
        .map(|t| {
            std::thread::spawn(move || {
                let c = NetClient::connect(addr).unwrap();
                // Disjoint regions per client.
                let base = 100 + t * 50;
                for i in 0..30 {
                    let e = Edge::new(base + i, base + i + 1, 0);
                    assert!(c.ins_edge(e).unwrap().outcome.is_ok());
                }
                for i in 0..30 {
                    let e = Edge::new(base + i, base + i + 1, 0);
                    assert!(c.del_edge(e).unwrap().outcome.is_ok());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(srv.server().engine().num_edges(), 1);
    srv.shutdown();
}

#[test]
fn corrupt_frame_closes_connection_but_not_server() {
    let srv = start_bfs(32);
    let addr = srv.local_addr();

    // Hand-roll a client that sends a frame whose CRC lies.
    let mut raw = TcpStream::connect(addr).unwrap();
    let payload = Request::Update(Update::InsVertex(1)).encode(1);
    let mut frame = Vec::new();
    write_frame(&mut frame, &payload).unwrap();
    let last = frame.len() - 1;
    frame[last] ^= 0xFF;
    raw.write_all(&frame).unwrap();
    raw.flush().unwrap();
    // The server answers with a protocol error (req id 0) and closes.
    let mut r = std::io::BufReader::new(raw.try_clone().unwrap());
    let resp = risgraph_common::protocol::read_frame(&mut r, 1 << 20)
        .unwrap()
        .expect("error response before close");
    let (id, resp) = risgraph_common::protocol::Response::decode(&resp).unwrap();
    assert_eq!(id, 0);
    assert!(matches!(
        resp,
        risgraph_common::protocol::Response::Failed { .. }
    ));
    assert!(
        risgraph_common::protocol::read_frame(&mut r, 1 << 20)
            .unwrap()
            .is_none(),
        "connection closed after protocol error"
    );

    // A fresh, well-behaved client is unaffected.
    let c = NetClient::connect(addr).unwrap();
    assert!(c.ins_edge(Edge::new(0, 1, 0)).unwrap().outcome.is_ok());
    srv.shutdown();
}

#[test]
fn oversized_frame_is_rejected() {
    let srv = start_bfs(32);
    let addr = srv.local_addr();
    let mut raw = TcpStream::connect(addr).unwrap();
    // A header claiming a 512 MiB payload: rejected before allocation.
    raw.write_all(&(512u32 << 20).to_le_bytes()).unwrap();
    raw.write_all(&0u32.to_le_bytes()).unwrap();
    raw.flush().unwrap();
    let mut r = std::io::BufReader::new(raw.try_clone().unwrap());
    let resp = risgraph_common::protocol::read_frame(&mut r, 1 << 20)
        .unwrap()
        .expect("error response");
    let (_, resp) = risgraph_common::protocol::Response::decode(&resp).unwrap();
    match resp {
        risgraph_common::protocol::Response::Failed { error, .. } => {
            assert!(error.to_error().to_string().contains("oversized"));
        }
        other => panic!("expected failure, got {other:?}"),
    }
    let c = NetClient::connect(addr).unwrap();
    assert!(c.ins_edge(Edge::new(0, 1, 0)).unwrap().outcome.is_ok());
    srv.shutdown();
}

#[test]
fn hostile_update_vertex_ids_fail_cleanly() {
    let srv = start_bfs(32);
    srv.server().load_edges(&[(0, 1, 0)]);
    let c = NetClient::connect(srv.local_addr()).unwrap();
    // Updates naming absurd vertex ids must be rejected — not drive
    // on-demand capacity growth into a coordinator-killing allocation.
    for u in [
        Update::InsVertex(u64::MAX),
        Update::InsVertex(1 << 60),
        Update::InsEdge(Edge::new(1 << 60, 0, 0)),
        Update::DelEdge(Edge::new(0, u64::MAX, 0)),
    ] {
        let r = c.submit_update(&u).unwrap();
        assert!(
            matches!(r.outcome, Err(risgraph_common::Error::VertexNotFound(_))),
            "{u:?} must be rejected"
        );
    }
    let r = c
        .txn_updates(vec![
            Update::InsEdge(Edge::new(1, 2, 0)),
            Update::InsVertex(1 << 60),
        ])
        .unwrap();
    assert!(r.outcome.is_err(), "over-limit txn rejected");
    // The coordinator survived: the same connection still applies
    // updates and answers queries.
    let r = c.ins_edge(Edge::new(1, 2, 0)).unwrap();
    assert!(r.outcome.is_ok());
    assert_eq!(c.get_value(0, r.version, 2).unwrap(), 2);
    srv.shutdown();
}

#[test]
fn hostile_query_coordinates_fail_cleanly() {
    let srv = start_bfs(32);
    srv.server().load_edges(&[(0, 1, 0)]);
    let c = NetClient::connect(srv.local_addr()).unwrap();
    let v = c.current_version().unwrap();
    // Out-of-range vertex / algorithm probes must come back as wire
    // errors on a live connection — not panic the connection thread.
    assert!(matches!(
        c.get_value(0, v, u64::MAX),
        Err(risgraph_common::Error::VertexNotFound(_))
    ));
    assert!(matches!(
        c.get_parent(7, v, 0),
        Err(risgraph_common::Error::Protocol(_))
    ));
    assert!(matches!(
        c.get_modified_vertices(7, v),
        Err(risgraph_common::Error::Protocol(_))
    ));
    // Same connection still serves real traffic afterwards.
    assert_eq!(c.get_value(0, v, 1).unwrap(), 1);
    assert!(c.ins_edge(Edge::new(1, 2, 0)).unwrap().outcome.is_ok());
    srv.shutdown();
}

#[test]
fn abrupt_disconnect_mid_pipeline_does_not_wedge_the_server() {
    let srv = start_bfs(256);
    srv.server().load_edges(&[(0, 1, 0)]);
    let addr = srv.local_addr();
    {
        let c = NetClient::connect(addr).unwrap();
        // Leave a pile of updates in flight and slam the door.
        for i in 0..100u64 {
            let _ = c.submit_update_pipelined(&Update::InsEdge(Edge::new(i + 1, i + 2, 0)));
        }
        // Drop without waiting: the socket closes with replies pending.
    }
    // Give the server a moment to notice, then prove the epoch loop
    // still serves fresh traffic promptly.
    std::thread::sleep(Duration::from_millis(50));
    let c = NetClient::connect(addr).unwrap();
    for i in 0..20u64 {
        let r = c.ins_edge(Edge::new(200 + i, 201 + i, 0)).unwrap();
        assert!(r.outcome.is_ok());
    }
    srv.shutdown();
}

#[test]
fn graceful_shutdown_drains_inflight_replies() {
    let srv = start_bfs(128);
    srv.server().load_edges(&[(0, 1, 0)]);
    let c = NetClient::connect(srv.local_addr()).unwrap();
    let ids: Vec<u64> = (0..50u64)
        .map(|i| {
            c.submit_update_pipelined(&Update::InsEdge(Edge::new(i + 1, i + 2, 0)))
                .unwrap()
        })
        .collect();
    // Shut down concurrently with the in-flight pipeline: every reply
    // already submitted must still be delivered (drain, not abort).
    let shut = std::thread::spawn(move || srv.shutdown());
    for id in ids {
        let reply = c.wait_reply(id).unwrap();
        assert!(reply.outcome.is_ok(), "drained replies are real replies");
    }
    shut.join().unwrap();
}
