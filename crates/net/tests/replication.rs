//! Socket-level replication tests: subscribe admission (follower
//! limit, disabled feed), follower catch-up + live tail over a real
//! leader, heartbeat lag reporting, and the replica's read-only query
//! listener.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use risgraph_algorithms::Bfs;
use risgraph_common::ids::{Edge, Update};
use risgraph_common::protocol::{read_frame, write_frame, Request, Response, MAX_RESPONSE_FRAME};
use risgraph_core::engine::DynAlgorithm;
use risgraph_core::server::ServerConfig;
use risgraph_net::{FollowerConfig, NetClient, NetConfig, NetServer, ReplicaServer};

fn bfs() -> Vec<DynAlgorithm> {
    vec![Arc::new(Bfs::new(0)) as DynAlgorithm]
}

fn leader_config(max_followers: usize) -> ServerConfig {
    let mut config = ServerConfig::default();
    config.engine.threads = 1;
    config.shards = 1;
    config.max_followers = max_followers;
    config
}

fn fast_net() -> NetConfig {
    NetConfig {
        heartbeat_interval: Duration::from_millis(20),
        ..NetConfig::default()
    }
}

/// Wait until the replica's applied version reaches the leader's (and
/// its lag reads 0), panicking after `secs`.
fn await_catch_up(replica: &ReplicaServer, leader_version: u64, secs: u64) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while replica.replica().current_version() < leader_version || replica.lag() > 0 {
        assert!(
            Instant::now() < deadline,
            "replica stuck at version {} (lag {}), leader at {leader_version}",
            replica.replica().current_version(),
            replica.lag()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn follower_catches_up_and_tails_live_updates() {
    let net = NetServer::start(bfs(), 64, leader_config(1), fast_net()).unwrap();
    let client = NetClient::connect(net.local_addr()).unwrap();
    // Phase 1: history the follower must catch up on.
    for i in 0..8u64 {
        client
            .ins_edge(Edge::new(i, i + 1, 0))
            .unwrap()
            .outcome
            .unwrap();
    }
    let replica = ReplicaServer::start(
        bfs(),
        64,
        leader_config(0),
        FollowerConfig::to_leader(net.local_addr().to_string()),
    )
    .unwrap();
    let mid = net.server().current_version();
    await_catch_up(&replica, mid, 10);
    // Phase 2: live tail, including deletes and a transaction.
    for i in 0..4u64 {
        client
            .del_edge(Edge::new(i, i + 1, 0))
            .unwrap()
            .outcome
            .unwrap();
    }
    client
        .txn_updates(vec![
            Update::InsEdge(Edge::new(20, 21, 0)),
            Update::InsEdge(Edge::new(21, 22, 0)),
        ])
        .unwrap()
        .outcome
        .unwrap();
    let final_version = net.server().current_version();
    await_catch_up(&replica, final_version, 10);

    // The replica answers the read-only surface at the watermark,
    // matching the leader's own sessions version-for-version.
    let session = net.server().session();
    assert_eq!(replica.replica().current_version(), final_version);
    for v in 0..24u64 {
        assert_eq!(
            replica.replica().get_value(0, final_version, v).unwrap(),
            session.get_value(0, final_version, v).unwrap(),
            "value of {v}"
        );
    }
    let stats = replica.stats();
    assert_eq!(
        stats
            .stream_errors
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
    assert!(stats.heartbeats.load(std::sync::atomic::Ordering::Relaxed) > 0);
    drop(session);
    drop(client);
    replica.shutdown();
    net.shutdown();
}

/// Raw-socket subscribe: returns the first response frame.
fn raw_subscribe(addr: std::net::SocketAddr, from: u64) -> Response {
    let stream = TcpStream::connect(addr).unwrap();
    let mut w = &stream;
    write_frame(&mut w, &Request::Subscribe { from }.encode(1)).unwrap();
    let mut r = BufReader::new(&stream);
    let payload = read_frame(&mut r, MAX_RESPONSE_FRAME).unwrap().unwrap();
    let (id, resp) = Response::decode(&payload).unwrap();
    assert_eq!(id, 1, "subscribe id echoed");
    resp
}

#[test]
fn subscribe_is_refused_when_replication_is_disabled() {
    let net = NetServer::start(bfs(), 16, leader_config(0), fast_net()).unwrap();
    match raw_subscribe(net.local_addr(), 0) {
        Response::Failed { error, .. } => {
            let msg = error.to_error().to_string();
            assert!(msg.contains("replication disabled"), "{msg}");
        }
        other => panic!("expected refusal, got {other:?}"),
    }
    net.shutdown();
}

#[test]
fn follower_limit_rejects_excess_subscribers_and_frees_on_disconnect() {
    let net = NetServer::start(bfs(), 16, leader_config(1), fast_net()).unwrap();
    // First subscriber takes the only slot (its ack is a heartbeat).
    let first = TcpStream::connect(net.local_addr()).unwrap();
    let mut w = &first;
    write_frame(&mut w, &Request::Subscribe { from: 0 }.encode(1)).unwrap();
    let mut r = BufReader::new(&first);
    let payload = read_frame(&mut r, MAX_RESPONSE_FRAME).unwrap().unwrap();
    assert!(matches!(
        Response::decode(&payload).unwrap().1,
        Response::Heartbeat { .. }
    ));
    // Second subscriber is over the limit.
    match raw_subscribe(net.local_addr(), 0) {
        Response::Failed { error, .. } => {
            let msg = error.to_error().to_string();
            assert!(msg.contains("follower limit"), "{msg}");
        }
        other => panic!("expected limit rejection, got {other:?}"),
    }
    // An offset beyond the feed is refused too.
    match raw_subscribe(net.local_addr(), 999) {
        Response::Failed { error, .. } => {
            let msg = error.to_error().to_string();
            assert!(msg.contains("beyond the feed"), "{msg}");
        }
        other => panic!("expected offset rejection, got {other:?}"),
    }
    // Dropping the first follower frees the slot.
    drop(r);
    first.shutdown(std::net::Shutdown::Both).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match raw_subscribe(net.local_addr(), 0) {
            Response::Heartbeat { .. } => break,
            Response::Failed { .. } if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("slot never freed: {other:?}"),
        }
    }
    net.shutdown();
}

#[test]
fn replica_listener_serves_reads_and_refuses_writes() {
    let net = NetServer::start(bfs(), 32, leader_config(1), fast_net()).unwrap();
    let client = NetClient::connect(net.local_addr()).unwrap();
    let mut last = 0;
    for i in 0..5u64 {
        last = client.ins_edge(Edge::new(i, i + 1, 0)).unwrap().version;
    }
    let replica = ReplicaServer::start(
        bfs(),
        32,
        leader_config(0),
        FollowerConfig {
            listen: Some("127.0.0.1:0".into()),
            ..FollowerConfig::to_leader(net.local_addr().to_string())
        },
    )
    .unwrap();
    await_catch_up(&replica, last, 10);

    // The read-only surface speaks the same wire protocol, so a plain
    // NetClient works against the replica.
    let ro = NetClient::connect(replica.local_addr().unwrap()).unwrap();
    assert_eq!(ro.current_version().unwrap(), last);
    for v in 0..6u64 {
        assert_eq!(ro.get_value(0, last, v).unwrap(), v, "BFS distance of {v}");
        assert_eq!(
            ro.get_parent(0, last, v).unwrap(),
            if v == 0 {
                None
            } else {
                Some(Edge::new(v - 1, v, 0))
            }
        );
    }
    let mods = ro.get_modified_vertices(0, last).unwrap();
    assert_eq!(mods, vec![5], "version {last} modified vertex 5");
    let stats = ro.stats().unwrap();
    assert_eq!(stats.version, last);
    assert_eq!(stats.replication_lag, 0);
    assert!(stats.replication_records > 0);
    // Mutations are refused without disturbing the connection.
    match ro.ins_edge(Edge::new(9, 9, 9)).unwrap().outcome {
        Err(e) => assert!(e.to_string().contains("read-only replica"), "{e}"),
        Ok(_) => panic!("replica accepted a write"),
    }
    assert_eq!(ro.current_version().unwrap(), last, "connection still live");
    drop(ro);
    drop(client);
    replica.shutdown();
    net.shutdown();
}
