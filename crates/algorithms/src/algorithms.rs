//! The monotonic algorithms of Table 2, plus Reachability and Max Label
//! Propagation (listed in §1/§2 as members of the class).
//!
//! | algo | `init_val` | `gen_next` | `need_upd` |
//! |------|-----------|------------|------------|
//! | BFS  | 0 @ root, ∞ | `src+1` | `next < cur` |
//! | SSSP | 0 @ root, ∞ | `src + e.data` | `next < cur` |
//! | SSWP | ∞ @ root, 0 | `min(e.data, src)` | `next > cur` |
//! | WCC  | `vid` | `src` | `next < cur` (undirected) |

use risgraph_common::ids::{Edge, VertexId, Weight};

use crate::Monotonic;

/// "Infinity" for distance-valued algorithms.
pub const INF: u64 = u64::MAX;

/// Breadth-First Search: hop distance from a root.
#[derive(Debug, Clone, Copy)]
pub struct Bfs {
    /// The source vertex.
    pub root: VertexId,
}

impl Bfs {
    /// BFS from `root`.
    pub fn new(root: VertexId) -> Self {
        Bfs { root }
    }
}

impl Monotonic for Bfs {
    type Value = u64;

    fn name(&self) -> &'static str {
        "BFS"
    }

    #[inline]
    fn init_val(&self, v: VertexId) -> u64 {
        if v == self.root {
            0
        } else {
            INF
        }
    }

    #[inline]
    fn gen_next(&self, _edge: Edge, src_value: u64) -> u64 {
        src_value.saturating_add(1)
    }

    #[inline]
    fn need_upd(&self, _v: VertexId, cur: u64, next: u64) -> bool {
        next < cur
    }
}

/// Single-Source Shortest Path with non-negative integer weights.
#[derive(Debug, Clone, Copy)]
pub struct Sssp {
    /// The source vertex.
    pub root: VertexId,
}

impl Sssp {
    /// SSSP from `root`.
    pub fn new(root: VertexId) -> Self {
        Sssp { root }
    }
}

impl Monotonic for Sssp {
    type Value = u64;

    fn name(&self) -> &'static str {
        "SSSP"
    }

    #[inline]
    fn init_val(&self, v: VertexId) -> u64 {
        if v == self.root {
            0
        } else {
            INF
        }
    }

    #[inline]
    fn gen_next(&self, edge: Edge, src_value: u64) -> u64 {
        src_value.saturating_add(edge.data)
    }

    #[inline]
    fn need_upd(&self, _v: VertexId, cur: u64, next: u64) -> bool {
        next < cur
    }
}

/// Single-Source Widest Path: maximize the minimum edge capacity along a
/// path ("bottleneck shortest path").
#[derive(Debug, Clone, Copy)]
pub struct Sswp {
    /// The source vertex.
    pub root: VertexId,
}

impl Sswp {
    /// SSWP from `root`.
    pub fn new(root: VertexId) -> Self {
        Sswp { root }
    }
}

impl Monotonic for Sswp {
    type Value = u64;

    fn name(&self) -> &'static str {
        "SSWP"
    }

    #[inline]
    fn init_val(&self, v: VertexId) -> u64 {
        if v == self.root {
            INF
        } else {
            0
        }
    }

    #[inline]
    fn gen_next(&self, edge: Edge, src_value: u64) -> u64 {
        edge.data.min(src_value)
    }

    #[inline]
    fn need_upd(&self, _v: VertexId, cur: u64, next: u64) -> bool {
        next > cur
    }
}

/// Weakly Connected Components by min-label propagation over undirected
/// edges: every vertex converges to the smallest vertex id in its
/// component.
#[derive(Debug, Clone, Copy, Default)]
pub struct Wcc;

impl Wcc {
    /// WCC (no root parameter).
    pub fn new() -> Self {
        Wcc
    }
}

impl Monotonic for Wcc {
    type Value = u64;

    fn name(&self) -> &'static str {
        "WCC"
    }

    fn undirected(&self) -> bool {
        true
    }

    #[inline]
    fn init_val(&self, v: VertexId) -> u64 {
        v
    }

    #[inline]
    fn gen_next(&self, _edge: Edge, src_value: u64) -> u64 {
        src_value
    }

    #[inline]
    fn need_upd(&self, _v: VertexId, cur: u64, next: u64) -> bool {
        next < cur
    }
}

/// Reachability from a root (§1 lists it first among the monotonic
/// algorithms). Values: 1 = reachable, 0 = not (yet) reachable.
#[derive(Debug, Clone, Copy)]
pub struct Reachability {
    /// The source vertex.
    pub root: VertexId,
}

impl Reachability {
    /// Reachability from `root`.
    pub fn new(root: VertexId) -> Self {
        Reachability { root }
    }
}

impl Monotonic for Reachability {
    type Value = u64;

    fn name(&self) -> &'static str {
        "Reachability"
    }

    #[inline]
    fn init_val(&self, v: VertexId) -> u64 {
        (v == self.root) as u64
    }

    #[inline]
    fn gen_next(&self, _edge: Edge, src_value: u64) -> u64 {
        src_value
    }

    #[inline]
    fn need_upd(&self, _v: VertexId, cur: u64, next: u64) -> bool {
        next > cur
    }
}

/// Max Label Propagation: every vertex converges to the largest label
/// reachable *to* it (labels seeded as `base_label(vid)`); directed.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxLabel;

impl MaxLabel {
    /// Max-label propagation.
    pub fn new() -> Self {
        MaxLabel
    }
}

impl Monotonic for MaxLabel {
    type Value = u64;

    fn name(&self) -> &'static str {
        "MaxLabel"
    }

    #[inline]
    fn init_val(&self, v: VertexId) -> u64 {
        v
    }

    #[inline]
    fn gen_next(&self, _edge: Edge, src_value: u64) -> u64 {
        src_value
    }

    #[inline]
    fn need_upd(&self, _v: VertexId, cur: u64, next: u64) -> bool {
        next > cur
    }
}

/// A weight generator helper: BFS and WCC ignore weights, SSSP wants
/// small positive distances, SSWP wants capacities. Benchmarks use this
/// to keep workload generation algorithm-agnostic.
pub fn clamp_weight_for(name: &str, w: Weight) -> Weight {
    match name {
        "BFS" | "WCC" | "Reachability" | "MaxLabel" => 0,
        _ => (w % 1000) + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(src: VertexId, dst: VertexId, w: Weight) -> Edge {
        Edge::new(src, dst, w)
    }

    #[test]
    fn bfs_table2_semantics() {
        let a = Bfs::new(3);
        assert_eq!(a.init_val(3), 0);
        assert_eq!(a.init_val(0), INF);
        assert_eq!(a.gen_next(e(3, 4, 9), 0), 1); // weight ignored
        assert_eq!(a.gen_next(e(3, 4, 9), INF), INF); // saturates
        assert!(a.need_upd(4, INF, 1));
        assert!(!a.need_upd(4, 1, 1));
        assert!(!a.need_upd(4, 1, 2));
    }

    #[test]
    fn sssp_table2_semantics() {
        let a = Sssp::new(0);
        assert_eq!(a.gen_next(e(0, 1, 7), 5), 12);
        assert_eq!(a.gen_next(e(0, 1, 7), INF), INF);
        assert!(a.need_upd(1, 13, 12));
        assert!(!a.need_upd(1, 12, 12));
    }

    #[test]
    fn sswp_table2_semantics() {
        let a = Sswp::new(0);
        assert_eq!(a.init_val(0), INF);
        assert_eq!(a.init_val(9), 0);
        assert_eq!(a.gen_next(e(0, 1, 7), INF), 7);
        assert_eq!(a.gen_next(e(1, 2, 10), 7), 7);
        assert_eq!(a.gen_next(e(1, 2, 3), 7), 3);
        assert!(a.need_upd(2, 3, 7)); // wider is better
        assert!(!a.need_upd(2, 7, 3));
    }

    #[test]
    fn wcc_table2_semantics() {
        let a = Wcc::new();
        assert!(a.undirected());
        assert_eq!(a.init_val(42), 42);
        assert_eq!(a.gen_next(e(5, 9, 0), 3), 3);
        assert!(a.need_upd(9, 9, 3)); // smaller label wins
        assert!(!a.need_upd(9, 3, 9));
    }

    #[test]
    fn reachability_semantics() {
        let a = Reachability::new(7);
        assert_eq!(a.init_val(7), 1);
        assert_eq!(a.init_val(8), 0);
        assert!(a.need_upd(8, 0, 1));
        assert!(!a.need_upd(8, 1, 1));
        assert_eq!(a.gen_next(e(7, 8, 0), 1), 1);
    }

    #[test]
    fn max_label_semantics() {
        let a = MaxLabel::new();
        assert_eq!(a.init_val(4), 4);
        assert!(a.need_upd(4, 4, 9));
        assert!(!a.need_upd(4, 9, 4));
    }

    /// need_upd must be a strict order: irreflexive and asymmetric.
    /// (Transitivity over u64 comparisons is immediate.)
    #[test]
    fn need_upd_is_strict_for_all_algorithms() {
        fn check<A: Monotonic<Value = u64>>(a: &A, samples: &[u64]) {
            for &x in samples {
                assert!(!a.need_upd(0, x, x), "{} reflexive at {x}", a.name());
                for &y in samples {
                    assert!(
                        !(a.need_upd(0, x, y) && a.need_upd(0, y, x)),
                        "{} not asymmetric at ({x},{y})",
                        a.name()
                    );
                }
            }
        }
        let samples = [0u64, 1, 2, 100, INF - 1, INF];
        check(&Bfs::new(0), &samples);
        check(&Sssp::new(0), &samples);
        check(&Sswp::new(0), &samples);
        check(&Wcc::new(), &samples);
        check(&Reachability::new(0), &samples);
        check(&MaxLabel::new(), &samples);
    }

    /// gen_next must be monotone in the source value: a better source
    /// value never yields a worse candidate.
    #[test]
    fn gen_next_is_monotone_for_all_algorithms() {
        fn check<A: Monotonic<Value = u64>>(a: &A, samples: &[u64], weights: &[u64]) {
            for &w in weights {
                let edge = e(0, 1, w);
                for &x in samples {
                    for &y in samples {
                        if a.need_upd(0, x, y) {
                            // y better than x at the source ⇒ candidate
                            // from y must not be worse than from x.
                            let cx = a.gen_next(edge, x);
                            let cy = a.gen_next(edge, y);
                            assert!(
                                !a.need_upd(1, cy, cx),
                                "{}: src {x}->{y} worsened candidate {cx}->{cy} (w={w})",
                                a.name()
                            );
                        }
                    }
                }
            }
        }
        let samples = [0u64, 1, 2, 7, 100, INF - 1, INF];
        let weights = [0u64, 1, 5, 1000];
        check(&Bfs::new(0), &samples, &weights);
        check(&Sssp::new(0), &samples, &weights);
        check(&Sswp::new(0), &samples, &weights);
        check(&Wcc::new(), &samples, &weights);
        check(&Reachability::new(0), &samples, &weights);
        check(&MaxLabel::new(), &samples, &weights);
    }

    #[test]
    fn weight_clamping() {
        assert_eq!(clamp_weight_for("BFS", 123), 0);
        assert_eq!(clamp_weight_for("WCC", 123), 0);
        let w = clamp_weight_for("SSSP", 123456);
        assert!((1..=1000).contains(&w));
        assert!(clamp_weight_for("SSWP", 0) >= 1);
    }
}
