//! RisGraph's **Algorithm API** (Table 1, upper half) and the monotonic
//! algorithms the paper evaluates (Table 2).
//!
//! A monotonic algorithm approaches its final per-vertex values
//! monotonically from initial values; incremental computing can resume
//! from current results after insertions, and recover from deletions via
//! the dependency tree + trimmed approximation (KickStarter's model,
//! which RisGraph adopts — §2).
//!
//! The API is three callbacks:
//!
//! | callback | signature | meaning |
//! |----------|-----------|---------|
//! | `init_val` | `(vid) → value` | initial (worst) value per vertex |
//! | `gen_next` | `(edge, src_value) → value` | candidate value for `edge.dst` through `edge` |
//! | `need_upd` | `(vid, cur, next) → bool` | does `next` improve on `cur`? |
//!
//! [`reference::compute`] provides a slow fixpoint oracle used throughout
//! the test suites to validate the incremental engine and baselines.

pub mod algorithms;
pub mod reference;

pub use algorithms::{Bfs, MaxLabel, Reachability, Sssp, Sswp, Wcc};

use risgraph_common::ids::{Edge, VertexId};

/// A monotonic graph algorithm, as defined by the paper's Algorithm API.
///
/// Implementations must satisfy the *monotonicity contract*:
///
/// 1. `need_upd(v, cur, next)` defines a strict partial order ("next is
///    strictly better than cur") — irreflexive and transitive;
/// 2. `gen_next` is *inflationary with respect to the source*: improving
///    the source's value never makes the generated candidate worse
///    (needed for push-propagation to converge);
/// 3. `init_val(v)` is the worst value: no value is worse than it
///    (except the root's init, which is its final value lower bound).
///
/// These are exactly the assumptions under which KickStarter-style
/// dependency-tree maintenance is correct; the property-based tests in
/// this crate check them for every shipped algorithm.
pub trait Monotonic: Send + Sync + 'static {
    /// Per-vertex result type.
    type Value: Copy + Eq + Send + Sync + std::fmt::Debug;

    /// Display name used by benchmark tables.
    fn name(&self) -> &'static str;

    /// Whether the algorithm interprets edges as undirected (Table 2's
    /// WCC; §6.2: "WCC requires undirected edges"). The engine then
    /// treats the transpose adjacency as additional neighbours.
    fn undirected(&self) -> bool {
        false
    }

    /// Initial value of `v` (Table 1: `init_val(vid) → init_value`).
    fn init_val(&self, v: VertexId) -> Self::Value;

    /// Candidate value for `edge.dst` derived from `edge` and the value
    /// of `edge.src` (Table 1: `gen_next(edge, src_value) → next_value`).
    fn gen_next(&self, edge: Edge, src_value: Self::Value) -> Self::Value;

    /// Whether `next` strictly improves on `cur` for vertex `v`
    /// (Table 1: `need_upd(vid, cur_value, next_value) → is_needed`).
    fn need_upd(&self, v: VertexId, cur: Self::Value, next: Self::Value) -> bool;
}

/// Type-erased algorithms are algorithms too: lets the engines and
/// baselines accept `Arc<dyn Monotonic<Value = _>>` wherever a generic
/// `A: Monotonic` is expected.
impl<V: Copy + Eq + Send + Sync + std::fmt::Debug + 'static> Monotonic
    for std::sync::Arc<dyn Monotonic<Value = V>>
{
    type Value = V;

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn undirected(&self) -> bool {
        (**self).undirected()
    }

    fn init_val(&self, v: VertexId) -> V {
        (**self).init_val(v)
    }

    fn gen_next(&self, edge: Edge, src_value: V) -> V {
        (**self).gen_next(edge, src_value)
    }

    fn need_upd(&self, v: VertexId, cur: V, next: V) -> bool {
        (**self).need_upd(v, cur, next)
    }
}
