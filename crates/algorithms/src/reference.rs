//! A slow-but-obviously-correct fixpoint oracle.
//!
//! [`compute`] evaluates any [`Monotonic`] algorithm on a static edge
//! list by chaotic iteration (Bellman-Ford style worklist) until no
//! `need_upd` fires. Every engine in the workspace — the incremental
//! engine, the KickStarter-style baseline, the differential baseline —
//! is differential-tested against this oracle after random update
//! sequences.

use risgraph_common::ids::{Edge, VertexId, Weight};

use crate::Monotonic;

/// Compute the fixpoint values of `alg` over `edges` for vertices
/// `0..num_vertices`.
///
/// Runs in O(iterations × touched edges); fine for the ≤10⁵-edge graphs
/// used in tests, not meant for benchmarks.
pub fn compute<A: Monotonic>(
    alg: &A,
    num_vertices: usize,
    edges: &[(VertexId, VertexId, Weight)],
) -> Vec<A::Value> {
    let mut values: Vec<A::Value> = (0..num_vertices as u64).map(|v| alg.init_val(v)).collect();

    // Out-adjacency (plus reverse for undirected algorithms).
    let mut adj: Vec<Vec<(VertexId, Weight)>> = vec![Vec::new(); num_vertices];
    for &(s, d, w) in edges {
        adj[s as usize].push((d, w));
        if alg.undirected() {
            adj[d as usize].push((s, w));
        }
    }

    let mut in_queue = vec![false; num_vertices];
    let mut queue: std::collections::VecDeque<VertexId> = (0..num_vertices as u64).collect();
    in_queue.fill(true);

    while let Some(u) = queue.pop_front() {
        in_queue[u as usize] = false;
        let uv = values[u as usize];
        for &(d, w) in &adj[u as usize] {
            let cand = alg.gen_next(Edge::new(u, d, w), uv);
            if alg.need_upd(d, values[d as usize], cand) {
                values[d as usize] = cand;
                if !in_queue[d as usize] {
                    in_queue[d as usize] = true;
                    queue.push_back(d);
                }
            }
        }
    }
    values
}

/// Count how many vertices hold a non-initial value. The "visited"
/// column of Table 3 is this count plus one for the root (whose initial
/// value already equals its final value).
pub fn count_non_initial<A: Monotonic>(alg: &A, values: &[A::Value]) -> usize {
    values
        .iter()
        .enumerate()
        .filter(|&(v, &val)| val != alg.init_val(v as u64))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Bfs, Sssp, Sswp, Wcc, INF};

    /// Diamond: 0→1 (w4), 0→2 (w1), 2→1 (w1), 1→3 (w1).
    fn diamond() -> Vec<(VertexId, VertexId, Weight)> {
        vec![(0, 1, 4), (0, 2, 1), (2, 1, 1), (1, 3, 1)]
    }

    #[test]
    fn bfs_on_diamond() {
        let v = compute(&Bfs::new(0), 4, &diamond());
        assert_eq!(v, vec![0, 1, 1, 2]);
    }

    #[test]
    fn sssp_takes_cheaper_path() {
        let v = compute(&Sssp::new(0), 4, &diamond());
        assert_eq!(v, vec![0, 2, 1, 3]); // via 0→2→1, not direct 0→1
    }

    #[test]
    fn sswp_takes_wider_path() {
        let v = compute(&Sswp::new(0), 4, &diamond());
        // widest to 1: direct edge capacity 4 beats min(1,1)=1.
        assert_eq!(v, vec![INF, 4, 1, 1]);
    }

    #[test]
    fn wcc_merges_components_undirected() {
        // Directed edge 5→0 must still merge both into component 0.
        let v = compute(&Wcc::new(), 6, &[(5, 0, 0), (1, 2, 0), (3, 4, 0)]);
        assert_eq!(v, vec![0, 1, 1, 3, 3, 0]);
    }

    #[test]
    fn unreachable_vertices_keep_init() {
        let v = compute(&Bfs::new(0), 3, &[(1, 2, 0)]);
        assert_eq!(v, vec![0, INF, INF]);
    }

    #[test]
    fn cycle_terminates() {
        let v = compute(&Sssp::new(0), 3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph() {
        let v = compute(&Bfs::new(0), 1, &[]);
        assert_eq!(v, vec![0]);
        let v: Vec<u64> = compute(&Wcc::new(), 0, &[]);
        assert!(v.is_empty());
    }

    #[test]
    fn self_loops_are_harmless() {
        let v = compute(&Bfs::new(0), 2, &[(0, 0, 0), (0, 1, 0)]);
        assert_eq!(v, vec![0, 1]);
    }

    #[test]
    fn duplicate_edges_do_not_change_result() {
        let once = compute(&Sssp::new(0), 3, &[(0, 1, 5), (1, 2, 5)]);
        let twice = compute(
            &Sssp::new(0),
            3,
            &[(0, 1, 5), (0, 1, 5), (1, 2, 5), (1, 2, 5)],
        );
        assert_eq!(once, twice);
    }

    #[test]
    fn random_graph_bfs_matches_textbook_bfs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200;
        let mut edges = Vec::new();
        for _ in 0..800 {
            edges.push((rng.gen_range(0..n as u64), rng.gen_range(0..n as u64), 0));
        }
        let ours = compute(&Bfs::new(0), n, &edges);

        // Textbook queue BFS.
        let mut adj = vec![Vec::new(); n];
        for &(s, d, _) in &edges {
            adj[s as usize].push(d);
        }
        let mut dist = vec![INF; n];
        dist[0] = 0;
        let mut q = std::collections::VecDeque::from([0u64]);
        while let Some(u) = q.pop_front() {
            for &d in &adj[u as usize] {
                if dist[d as usize] == INF {
                    dist[d as usize] = dist[u as usize] + 1;
                    q.push_back(d);
                }
            }
        }
        assert_eq!(ours, dist);
    }
}
