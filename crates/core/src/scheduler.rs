//! The tail-latency scheduler (§5).
//!
//! The scheduler packs as many safe updates per epoch loop as possible
//! and decides when to abort the parallel phase and serve unsafe
//! updates, "to fulfill predefined expected tail latency and achieve
//! balanced trade-off between throughput and latency" (§2). Two
//! heuristics trigger the switch (§5):
//!
//! 1. the earliest queued unsafe update has waited close to the target
//!    latency (target = 0.8 × the user's limit);
//! 2. the number of unprocessed unsafe updates reached a dynamic
//!    threshold.
//!
//! The threshold self-adjusts every three epoch loops: +1% while the
//! fraction of qualified (within-limit) updates meets the goal, −10%
//! otherwise; it starts at the number of worker threads.

use std::time::Duration;

/// Scheduler tuning; defaults mirror §5's constants.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// User-facing latency limit (the paper evaluates 20 ms).
    pub latency_limit: Duration,
    /// Fraction of the limit used as the internal target (0.8).
    pub target_fraction: f64,
    /// Required fraction of qualified updates (P999 ⇒ 0.999).
    pub qualified_goal: f64,
    /// Epoch loops between threshold adjustments (3).
    pub adjust_every: u32,
    /// Multiplicative increase when meeting the goal (1.01).
    pub increase: f64,
    /// Multiplicative decrease when missing it (0.90).
    pub decrease: f64,
    /// Initial threshold (the paper: number of physical threads).
    pub initial_threshold: usize,
    /// Upper bound on the threshold. Without a cap, long healthy
    /// stretches compound the +1% into astronomically large values that
    /// would let the unsafe queue grow unboundedly on the first load
    /// spike.
    pub max_threshold: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            latency_limit: Duration::from_millis(20),
            target_fraction: 0.8,
            qualified_goal: 0.999,
            adjust_every: 3,
            increase: 1.01,
            decrease: 0.90,
            initial_threshold: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_threshold: 4096,
        }
    }
}

/// The dynamic epoch-size controller.
#[derive(Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    threshold: f64,
    epochs_since_adjust: u32,
    qualified: u64,
    total: u64,
}

impl Scheduler {
    /// A scheduler with the given configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        let threshold = config.initial_threshold.max(1) as f64;
        Scheduler {
            config,
            threshold,
            epochs_since_adjust: 0,
            qualified: 0,
            total: 0,
        }
    }

    /// The configured latency limit.
    pub fn latency_limit(&self) -> Duration {
        self.config.latency_limit
    }

    /// The current unsafe-queue threshold.
    pub fn threshold(&self) -> usize {
        self.threshold.max(1.0) as usize
    }

    /// Should the epoch loop stop packing safe updates and switch to the
    /// serial phase? (§5's two heuristics.)
    pub fn should_flush(&self, oldest_unsafe_wait: Option<Duration>, unsafe_queued: usize) -> bool {
        if unsafe_queued == 0 {
            return false;
        }
        if unsafe_queued >= self.threshold() {
            return true;
        }
        match oldest_unsafe_wait {
            Some(wait) => {
                wait.as_secs_f64()
                    >= self.config.latency_limit.as_secs_f64() * self.config.target_fraction
            }
            None => false,
        }
    }

    /// Record one served update's processing-time latency.
    pub fn record_latency(&mut self, latency: Duration) {
        self.total += 1;
        if latency <= self.config.latency_limit {
            self.qualified += 1;
        }
    }

    /// Record a batch of served updates by counts (the epoch loop's
    /// parallel phase aggregates per-worker, then reports once).
    pub fn record_batch(&mut self, qualified: u64, total: u64) {
        debug_assert!(qualified <= total);
        self.qualified += qualified;
        self.total += total;
    }

    /// Fold per-shard `(qualified, total)` safe-phase counts — as
    /// collected at the epoch loop's shard barrier — into the epoch's
    /// accounting. Threshold adaptation thus sees the whole epoch at
    /// once, no matter how many shard executors served it.
    pub fn record_shards<I: IntoIterator<Item = (u64, u64)>>(&mut self, shards: I) {
        for (qualified, total) in shards {
            self.record_batch(qualified, total);
        }
    }

    /// Note the end of one epoch loop; adjusts the threshold every
    /// `adjust_every` epochs.
    pub fn end_epoch(&mut self) {
        self.epochs_since_adjust += 1;
        if self.epochs_since_adjust < self.config.adjust_every {
            return;
        }
        self.epochs_since_adjust = 0;
        if self.total == 0 {
            return;
        }
        let fraction = self.qualified as f64 / self.total as f64;
        if fraction >= self.config.qualified_goal {
            self.threshold *= self.config.increase;
        } else {
            self.threshold *= self.config.decrease;
        }
        self.threshold = self.threshold.clamp(1.0, self.config.max_threshold as f64);
        self.qualified = 0;
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(limit_ms: u64, threads: usize) -> Scheduler {
        Scheduler::new(SchedulerConfig {
            latency_limit: Duration::from_millis(limit_ms),
            initial_threshold: threads,
            ..SchedulerConfig::default()
        })
    }

    #[test]
    fn no_unsafe_never_flushes() {
        let s = sched(20, 8);
        assert!(!s.should_flush(None, 0));
        assert!(!s.should_flush(Some(Duration::from_secs(100)), 0));
    }

    #[test]
    fn flush_on_threshold() {
        let s = sched(20, 8);
        assert!(!s.should_flush(Some(Duration::from_millis(1)), 7));
        assert!(s.should_flush(Some(Duration::from_millis(1)), 8));
        assert!(s.should_flush(None, 8));
    }

    #[test]
    fn flush_on_waiting_time() {
        let s = sched(20, 1000);
        // 0.8 × 20ms = 16ms target.
        assert!(!s.should_flush(Some(Duration::from_millis(15)), 1));
        assert!(s.should_flush(Some(Duration::from_millis(16)), 1));
    }

    #[test]
    fn threshold_rises_slowly_when_meeting_goal() {
        let mut s = sched(20, 100);
        for _ in 0..3 {
            for _ in 0..1000 {
                s.record_latency(Duration::from_millis(1));
            }
            s.end_epoch();
        }
        assert_eq!(s.threshold(), 101); // 100 × 1.01
    }

    #[test]
    fn threshold_drops_quickly_when_missing_goal() {
        let mut s = sched(20, 100);
        for _ in 0..3 {
            for _ in 0..100 {
                s.record_latency(Duration::from_millis(1));
            }
            // 10% timeouts — way below the 99.9% goal.
            for _ in 0..11 {
                s.record_latency(Duration::from_millis(50));
            }
            s.end_epoch();
        }
        assert_eq!(s.threshold(), 90); // 100 × 0.90
    }

    #[test]
    fn shard_counts_aggregate_like_one_batch() {
        // Two schedulers fed the same epoch — one as a single batch,
        // one as per-shard counts — must adapt identically.
        let mut merged = sched(20, 100);
        let mut single = sched(20, 100);
        for _ in 0..3 {
            merged.record_shards([(400, 400), (100, 150), (0, 50)]);
            single.record_batch(500, 600);
            merged.end_epoch();
            single.end_epoch();
        }
        assert_eq!(merged.threshold(), single.threshold());
        assert_eq!(merged.threshold(), 90, "2/12 misses ⇒ decrease");
    }

    #[test]
    fn adjustment_cadence_is_every_n_epochs() {
        let mut s = sched(20, 100);
        s.record_latency(Duration::from_millis(1));
        s.end_epoch();
        s.end_epoch();
        assert_eq!(s.threshold(), 100, "no adjustment before 3 epochs");
        s.end_epoch();
        assert_eq!(s.threshold(), 101);
    }

    #[test]
    fn threshold_is_capped() {
        let mut s = sched(20, 100);
        for _ in 0..30_000 {
            s.record_latency(Duration::from_millis(1));
            s.end_epoch();
        }
        assert!(s.threshold() <= SchedulerConfig::default().max_threshold);
    }

    #[test]
    fn threshold_floor_is_one() {
        let mut s = sched(20, 1);
        for _ in 0..30 {
            s.record_latency(Duration::from_secs(1)); // all timeouts
            s.end_epoch();
        }
        assert_eq!(s.threshold(), 1);
    }
}
