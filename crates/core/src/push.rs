//! Push-mode incremental propagation with **Hybrid Parallel Mode**
//! (§3.2).
//!
//! Propagation starts from a sparse frontier of activated vertices and
//! relaxes their out-edges (plus in-edges for undirected algorithms)
//! until no value improves. Three execution strategies:
//!
//! * **sequential** — when the frontier carries few edges (the common
//!   per-update case: affected areas are tiny, §7), a plain worklist
//!   avoids every parallelization overhead;
//! * **vertex-parallel** — workers claim chunks of frontier vertices;
//! * **edge-parallel** — the concatenated edge ranges of the frontier
//!   are split evenly, which wins on skewed frontiers dominated by hubs
//!   (Figure 7's top-left region).
//!
//! The per-iteration choice between the two parallel modes is made by
//! the linear classifier; callers can force a mode to reproduce the
//! Figure 13 ablation.
//!
//! Propagation only ever runs inside the epoch loop's *serial* unsafe
//! phase (or during loads/recovery), never concurrently with the
//! sharded safe phase: safe updates are exactly those that provably
//! need no propagation, which is why shard executors can mutate the
//! structure through [`crate::engine::Engine::try_apply_safe`] while
//! no `PushCtx` is live.

use parking_lot::Mutex;
use risgraph_algorithms::Monotonic;
use risgraph_common::ids::{Edge, VertexId, Weight};
use risgraph_storage::DynamicGraph;

use crate::classifier::{LinearClassifier, PushMode};
use crate::pool::WorkerPool;
use crate::tree::{TreeStore, Value, VertexState};

/// Tuning knobs for propagation.
#[derive(Debug, Clone)]
pub struct PushConfig {
    /// Frontier out-edge budget below which propagation stays
    /// sequential.
    pub sequential_grain: usize,
    /// Chunk size handed to pool workers.
    pub parallel_grain: usize,
    /// The vertex-/edge-parallel decision boundary.
    pub classifier: LinearClassifier,
    /// Force a mode (Figure 13 ablations); `None` = hybrid.
    pub forced_mode: Option<PushMode>,
    /// Switch to pull mode (converting the frontier to a bitmap, §5)
    /// when the frontier holds more than this fraction of all vertices.
    /// Pull wins on very dense frontiers (initial whole-graph loads);
    /// `1.0` disables it.
    pub pull_threshold: f64,
}

impl Default for PushConfig {
    fn default() -> Self {
        PushConfig {
            sequential_grain: 4096,
            parallel_grain: 128,
            classifier: LinearClassifier::default(),
            forced_mode: None,
            pull_threshold: 0.25,
        }
    }
}

/// Everything a propagation run needs. Generic over the storage
/// backend: propagation only touches the [`DynamicGraph`] scan surface,
/// so every backend (IA, IO, OOC) runs the same push machinery.
pub(crate) struct PushCtx<'a, G: DynamicGraph> {
    pub store: &'a G,
    pub alg: &'a dyn Monotonic<Value = Value>,
    pub tree: &'a TreeStore,
    pub pool: &'a WorkerPool,
    pub config: &'a PushConfig,
    /// Update epoch for exact first-change capture.
    pub epoch: u64,
}

/// Outcome of a propagation run.
#[derive(Debug, Default)]
pub(crate) struct PushResult {
    /// `(vertex, pre-update state)` for every vertex first modified
    /// during this update (includes modifications made by the caller
    /// before propagation only if the caller merges them itself).
    pub changed: Vec<(VertexId, VertexState)>,
    /// Parallel iterations executed (0 when fully sequential).
    pub iterations: usize,
    /// Edges relaxed (diagnostics; drives Figure 7 sample collection).
    pub edges_relaxed: u64,
}

struct WorkerBuf {
    next: Vec<VertexId>,
    changed: Vec<(VertexId, VertexState)>,
    edges: u64,
}

impl<'a, G: DynamicGraph> PushCtx<'a, G> {
    #[inline]
    fn undirected(&self) -> bool {
        self.alg.undirected()
    }

    /// Relax one edge `v --w--> d` given the source value; activate `d`
    /// on improvement.
    #[inline]
    fn relax(
        &self,
        v: VertexId,
        d: VertexId,
        w: Weight,
        src_val: Value,
        next: &mut Vec<VertexId>,
        changed: &mut Vec<(VertexId, VertexState)>,
    ) {
        let cand = self.alg.gen_next(Edge::new(v, d, w), src_val);
        if let Some((old, first)) = self.tree.try_update(d, Some((v, w)), self.epoch, |cur| {
            self.alg.need_upd(d, cur, cand).then_some(cand)
        }) {
            if first {
                changed.push((d, old));
            }
            next.push(d);
        }
    }

    /// Relax every neighbour of `v` (out-edges; plus in-edges when the
    /// algorithm is undirected).
    fn relax_from(
        &self,
        v: VertexId,
        next: &mut Vec<VertexId>,
        changed: &mut Vec<(VertexId, VertexState)>,
    ) -> u64 {
        let val = self.tree.value(v);
        let mut relaxed = 0u64;
        {
            let (next_ref, changed_ref, relaxed_ref) = (&mut *next, &mut *changed, &mut relaxed);
            self.store.scan_out(v, &mut |d, w, _| {
                self.relax(v, d, w, val, next_ref, changed_ref);
                *relaxed_ref += 1;
            });
        }
        if self.undirected() {
            // In-list entries of v are (x, w) for stored edges x→v;
            // undirected propagation pushes v's value to x.
            let (next_ref, changed_ref, relaxed_ref) = (&mut *next, &mut *changed, &mut relaxed);
            self.store.scan_in(v, &mut |x, w, _| {
                self.relax(v, x, w, val, next_ref, changed_ref);
                *relaxed_ref += 1;
            });
        }
        relaxed
    }

    /// Frontier edge mass: scan-position counts (backends may include
    /// tombstones — they bound the scan work, which is what load
    /// balancing needs). Stops counting once the sum exceeds `cap`:
    /// on backends without positional scans, `out_slots` itself costs
    /// a degree scan, and past the sequential-grain threshold the
    /// exact number no longer influences any decision there.
    fn frontier_slots(&self, frontier: &[VertexId], cap: usize) -> usize {
        let mut total = 0usize;
        for &v in frontier {
            total += self.store.out_slots(v);
            if self.undirected() {
                total += self.store.in_slots(v);
            }
            if total > cap {
                return total;
            }
        }
        total
    }

    /// Fully sequential worklist propagation.
    fn run_sequential(&self, mut work: Vec<VertexId>, result: &mut PushResult) {
        let mut changed = std::mem::take(&mut result.changed);
        while let Some(v) = work.pop() {
            result.edges_relaxed += self.relax_from(v, &mut work, &mut changed);
        }
        result.changed = changed;
    }

    fn run_vertex_parallel(&self, frontier: &[VertexId], bufs: &[Mutex<WorkerBuf>]) {
        self.pool
            .run_ranges(frontier.len(), self.config.parallel_grain, |w, range| {
                let mut buf = bufs[w].lock();
                let WorkerBuf {
                    next,
                    changed,
                    edges,
                } = &mut *buf;
                for &v in &frontier[range] {
                    *edges += self.relax_from(v, next, changed);
                }
            });
    }

    fn run_edge_parallel(&self, frontier: &[VertexId], bufs: &[Mutex<WorkerBuf>]) {
        // Prefix sums over per-vertex scan-position counts so a global
        // edge index maps to (vertex, local position). Positions are
        // stable: the push phases never mutate graph structure.
        let mut prefix = Vec::with_capacity(frontier.len() + 1);
        prefix.push(0usize);
        let mut total = 0usize;
        let mut out_lens = Vec::with_capacity(frontier.len());
        for &v in frontier {
            let out_n = self.store.out_slots(v);
            out_lens.push(out_n);
            let mut n = out_n;
            if self.undirected() {
                n += self.store.in_slots(v);
            }
            total += n;
            prefix.push(total);
        }
        let grain = self.config.parallel_grain.max(16);
        self.pool.run_ranges(total, grain, |w, range| {
            let mut buf = bufs[w].lock();
            let WorkerBuf {
                next,
                changed,
                edges,
            } = &mut *buf;
            // First vertex whose position range intersects `range`.
            let mut vi = prefix.partition_point(|&p| p <= range.start) - 1;
            let mut pos = range.start;
            while pos < range.end && vi < frontier.len() {
                let v = frontier[vi];
                let v_start = prefix[vi];
                let v_end = prefix[vi + 1];
                let lo = pos - v_start;
                let hi = (range.end.min(v_end)) - v_start;
                if lo < hi {
                    let val = self.tree.value(v);
                    let out_len = out_lens[vi];
                    // Out-position portion of [lo, hi).
                    let out_hi = hi.min(out_len);
                    if lo < out_hi {
                        let (next_ref, changed_ref) = (&mut *next, &mut *changed);
                        self.store.scan_out_range(v, lo, out_hi, &mut |d, w, _| {
                            self.relax(v, d, w, val, next_ref, changed_ref);
                        });
                        *edges += (out_hi - lo) as u64;
                    }
                    // In-position portion (undirected only).
                    if self.undirected() && hi > out_len {
                        let ilo = lo.max(out_len) - out_len;
                        let ihi = hi - out_len;
                        let (next_ref, changed_ref) = (&mut *next, &mut *changed);
                        self.store.scan_in_range(v, ilo, ihi, &mut |x, w, _| {
                            self.relax(v, x, w, val, next_ref, changed_ref);
                        });
                        *edges += (ihi - ilo) as u64;
                    }
                }
                pos = v_end;
                vi += 1;
            }
        });
    }

    /// One pull-mode iteration: the frontier becomes a bitmap ("RisGraph
    /// … converts them to bitmaps only when performing pull operations",
    /// §5) and every live vertex checks its *incoming* edges for
    /// frontier sources. Wins on very dense frontiers because each
    /// destination is written once and the frontier test is O(1).
    fn run_pull_iteration(&self, frontier: &[VertexId], bufs: &[Mutex<WorkerBuf>]) {
        let cap = self.store.capacity();
        let in_frontier = risgraph_common::bitmap::AtomicBitmap::new(cap);
        for &v in frontier {
            in_frontier.set(v);
        }
        let undirected = self.undirected();
        self.pool
            .run_ranges(cap, self.config.parallel_grain.max(256), |w, range| {
                let mut buf = bufs[w].lock();
                let WorkerBuf {
                    next,
                    changed,
                    edges,
                } = &mut *buf;
                for v in range.start as u64..range.end as u64 {
                    if !self.store.vertex_exists(v) {
                        continue;
                    }
                    {
                        let (next_ref, changed_ref, edges_ref) =
                            (&mut *next, &mut *changed, &mut *edges);
                        self.store.scan_in(v, &mut |x, w, _| {
                            *edges_ref += 1;
                            if in_frontier.get(x) {
                                let sv = self.tree.value(x);
                                self.relax(x, v, w, sv, next_ref, changed_ref);
                            }
                        });
                    }
                    if undirected {
                        let (next_ref, changed_ref, edges_ref) =
                            (&mut *next, &mut *changed, &mut *edges);
                        self.store.scan_out(v, &mut |x, w, _| {
                            *edges_ref += 1;
                            if in_frontier.get(x) {
                                let sv = self.tree.value(x);
                                self.relax(x, v, w, sv, next_ref, changed_ref);
                            }
                        });
                    }
                }
            });
    }

    /// Run propagation to fixpoint from `frontier`.
    pub(crate) fn propagate(&self, frontier: Vec<VertexId>) -> PushResult {
        let mut result = PushResult::default();
        self.propagate_into(frontier, &mut result);
        result
    }

    /// Like [`Self::propagate`] but appends into an existing result
    /// (deletion recovery seeds `changed` with reset records first).
    pub(crate) fn propagate_into(&self, mut frontier: Vec<VertexId>, result: &mut PushResult) {
        loop {
            if frontier.is_empty() {
                return;
            }
            // Dense-frontier fast path: pull (skipped under forced push
            // modes so the Figure 13 ablations measure pure push).
            let cap = self.store.capacity().max(1);
            if self.config.forced_mode.is_none()
                && frontier.len() as f64 > self.config.pull_threshold * cap as f64
            {
                let threads = self.pool.threads();
                let mut bufs: Vec<Mutex<WorkerBuf>> = Vec::with_capacity(threads);
                for _ in 0..threads {
                    bufs.push(Mutex::new(WorkerBuf {
                        next: Vec::new(),
                        changed: Vec::new(),
                        edges: 0,
                    }));
                }
                self.run_pull_iteration(&frontier, &bufs);
                result.iterations += 1;
                let mut next = Vec::new();
                for buf in bufs {
                    let buf = buf.into_inner();
                    next.extend(buf.next);
                    result.changed.extend(buf.changed);
                    result.edges_relaxed += buf.edges;
                }
                next.sort_unstable();
                next.dedup();
                frontier = next;
                continue;
            }
            // Positional backends count slots in O(1) per vertex — take
            // the exact mass for the classifier. Others pay a degree
            // scan per vertex, and their mode is pinned to
            // vertex-parallel anyway, so counting stops at the
            // sequential-grain threshold.
            let count_cap = if self.store.has_positional_scans() {
                usize::MAX
            } else {
                self.config.sequential_grain
            };
            let slots = self.frontier_slots(&frontier, count_cap);
            if slots <= self.config.sequential_grain {
                self.run_sequential(frontier, result);
                return;
            }
            let mode = self.config.forced_mode.unwrap_or_else(|| {
                // Edge-parallel partitions positional sub-ranges of each
                // vertex's edges; on backends without O(range) positional
                // scans (IO_*, OOC) every chunk would rescan the whole
                // adjacency, so the hybrid choice stays vertex-parallel
                // there. Forced modes (Figure 13 ablations, tests) are
                // honoured — the range scans are correct, just slower.
                if self.store.has_positional_scans() {
                    self.config.classifier.choose(frontier.len(), slots)
                } else {
                    PushMode::VertexParallel
                }
            });
            let threads = self.pool.threads();
            let mut bufs: Vec<Mutex<WorkerBuf>> = Vec::with_capacity(threads);
            for _ in 0..threads {
                bufs.push(Mutex::new(WorkerBuf {
                    next: Vec::new(),
                    changed: Vec::new(),
                    edges: 0,
                }));
            }
            match mode {
                PushMode::VertexParallel => self.run_vertex_parallel(&frontier, &bufs),
                PushMode::EdgeParallel => self.run_edge_parallel(&frontier, &bufs),
            }
            result.iterations += 1;
            let mut next = Vec::new();
            for buf in bufs {
                let buf = buf.into_inner();
                next.extend(buf.next);
                result.changed.extend(buf.changed);
                result.edges_relaxed += buf.edges;
            }
            // Duplicate activations across workers are possible (a vertex
            // improved twice in one iteration lands in two buffers).
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risgraph_algorithms::{Bfs, Sssp, Wcc};
    use risgraph_common::ids::Edge as E;
    use risgraph_storage::{GraphStore, HashIndex, IndexOnlyStore};
    use std::sync::Arc;

    // The helpers are generic over `G: DynamicGraph`, exactly like the
    // production engine: push-mode correctness is checked through the
    // trait on both an IA and an IO backend, so no test can silently
    // depend on GraphStore-only behaviour.

    fn fill<G: DynamicGraph>(store: &G, edges: &[(u64, u64, u64)]) {
        for &(s, d, w) in edges {
            store.insert_edge(E::new(s, d, w)).unwrap();
        }
    }

    fn run_push<G: DynamicGraph>(
        store: &G,
        alg: &dyn Monotonic<Value = u64>,
        tree: &TreeStore,
        pool: &WorkerPool,
        config: &PushConfig,
        frontier: Vec<u64>,
    ) -> PushResult {
        let ctx = PushCtx {
            store,
            alg,
            tree,
            pool,
            config,
            epoch: 1,
        };
        ctx.propagate(frontier)
    }

    fn full_compute<G: DynamicGraph>(
        store: &G,
        alg: &dyn Monotonic<Value = u64>,
        tree: &TreeStore,
        pool: &WorkerPool,
        config: &PushConfig,
    ) {
        let mut seeds = Vec::new();
        store.for_each_vertex(&mut |v| seeds.push(v));
        run_push(store, alg, tree, pool, config, seeds);
    }

    fn random_graph(n: u64, m: usize, seed: u64) -> Vec<(u64, u64, u64)> {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|_| {
                (
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(1..10u64),
                )
            })
            .collect()
    }

    fn check_alg<G: DynamicGraph, A: Monotonic<Value = u64> + Copy>(
        alg: A,
        mode: Option<PushMode>,
        sequential_grain: usize,
        edges: &[(u64, u64, u64)],
        n: u64,
        store: &G,
        pool: &WorkerPool,
    ) {
        let config = PushConfig {
            sequential_grain,
            parallel_grain: 16,
            forced_mode: mode,
            ..PushConfig::default()
        };
        let tree = TreeStore::new(n as usize, move |v| alg.init_val(v));
        full_compute(store, &alg, &tree, pool, &config);
        let want = risgraph_algorithms::reference::compute(&alg, n as usize, edges);
        for v in 0..n {
            assert_eq!(
                tree.value(v),
                want[v as usize],
                "{} {} mode={mode:?} vertex {v}",
                store.backend_name(),
                alg.name()
            );
        }
    }

    fn check_mode_on<G: DynamicGraph>(
        store: &G,
        pool: &WorkerPool,
        edges: &[(u64, u64, u64)],
        n: u64,
        mode: Option<PushMode>,
        sequential_grain: usize,
    ) {
        check_alg(Bfs::new(0), mode, sequential_grain, edges, n, store, pool);
        check_alg(Sssp::new(0), mode, sequential_grain, edges, n, store, pool);
        check_alg(Wcc::new(), mode, sequential_grain, edges, n, store, pool);
    }

    fn check_mode(mode: Option<PushMode>, sequential_grain: usize) {
        let n = 300u64;
        let edges = random_graph(n, 2000, 42);
        let pool = WorkerPool::new(4);
        let ia: GraphStore<HashIndex> = GraphStore::with_capacity(n as usize);
        fill(&ia, &edges);
        check_mode_on(&ia, &pool, &edges, n, mode, sequential_grain);
        let io: IndexOnlyStore<HashIndex> = IndexOnlyStore::with_capacity(n as usize);
        fill(&io, &edges);
        check_mode_on(&io, &pool, &edges, n, mode, sequential_grain);
    }

    #[test]
    fn sequential_matches_oracle() {
        check_mode(None, usize::MAX); // grain huge → always sequential
    }

    #[test]
    fn vertex_parallel_matches_oracle() {
        check_mode(Some(PushMode::VertexParallel), 0);
    }

    #[test]
    fn edge_parallel_matches_oracle() {
        check_mode(Some(PushMode::EdgeParallel), 0);
    }

    #[test]
    fn hybrid_matches_oracle() {
        check_mode(None, 64);
    }

    #[test]
    fn parent_pointers_certify_values_after_push() {
        let n = 200u64;
        let edges = random_graph(n, 1200, 7);
        let store: GraphStore<HashIndex> = GraphStore::with_capacity(n as usize);
        fill(&store, &edges);
        let pool = Arc::new(WorkerPool::new(4));
        let config = PushConfig::default();
        let alg = Sssp::new(0);
        let tree = TreeStore::new(n as usize, move |v| alg.init_val(v));
        full_compute(&store, &alg, &tree, &pool, &config);
        // Every vertex with a parent must satisfy
        // value(v) == gen_next(parent_edge, value(parent)).
        for v in 0..n {
            if let Some(pe) = tree.parent(v) {
                assert_eq!(
                    tree.value(v),
                    alg.gen_next(pe, tree.value(pe.src)),
                    "vertex {v} not certified by its parent edge"
                );
                assert!(store.contains_edge(pe), "parent edge {pe:?} not in graph");
            }
        }
    }

    #[test]
    fn changed_records_capture_pre_update_values() {
        // Graph 0→1→2; frontier from fresh init state must record every
        // reached vertex exactly once with its init value as `old`.
        let store: GraphStore<HashIndex> = GraphStore::with_capacity(4);
        fill(&store, &[(0, 1, 0), (1, 2, 0)]);
        let pool = Arc::new(WorkerPool::new(4));
        let alg = Bfs::new(0);
        let tree = TreeStore::new(4, move |v| alg.init_val(v));
        let config = PushConfig::default();
        let result = run_push(&store, &alg, &tree, &pool, &config, vec![0]);
        let mut changed = result.changed.clone();
        changed.sort_by_key(|c| c.0);
        assert_eq!(changed.len(), 2);
        assert_eq!(changed[0].0, 1);
        assert_eq!(changed[0].1.value, u64::MAX);
        assert_eq!(changed[1].0, 2);
        assert_eq!(changed[1].1.value, u64::MAX);
    }

    #[test]
    fn empty_frontier_is_noop() {
        let store: IndexOnlyStore<HashIndex> = IndexOnlyStore::with_capacity(4);
        fill(&store, &[(0, 1, 0)]);
        let pool = Arc::new(WorkerPool::new(4));
        let alg = Bfs::new(0);
        let tree = TreeStore::new(4, move |v| alg.init_val(v));
        let result = run_push(&store, &alg, &tree, &pool, &PushConfig::default(), vec![]);
        assert!(result.changed.is_empty());
        assert_eq!(result.edges_relaxed, 0);
    }
}

#[cfg(test)]
mod pull_tests {
    use super::*;
    use risgraph_algorithms::{Bfs, Wcc};
    use risgraph_common::ids::Edge as E;
    use risgraph_storage::{GraphStore, HashIndex};
    use std::sync::Arc;

    #[test]
    fn pull_mode_matches_oracle_on_dense_frontier() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let n = 256u64;
        let edges: Vec<(u64, u64, u64)> = (0..3000)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n), 0))
            .collect();
        let store = GraphStore::<HashIndex>::with_capacity(n as usize);
        for &(s, d, w) in &edges {
            store.insert_edge(E::new(s, d, w)).unwrap();
        }
        let pool = Arc::new(WorkerPool::new(4));
        for undirected in [false, true] {
            let config = PushConfig {
                pull_threshold: 0.01, // force pull immediately
                ..PushConfig::default()
            };
            if undirected {
                let alg = Wcc::new();
                let tree = TreeStore::new(n as usize, move |v| alg.init_val(v));
                let ctx = PushCtx {
                    store: &store,
                    alg: &alg,
                    tree: &tree,
                    pool: &pool,
                    config: &config,
                    epoch: 1,
                };
                let mut seeds = Vec::new();
                store.for_each_vertex(|v| seeds.push(v));
                let result = ctx.propagate(seeds);
                assert!(result.iterations > 0, "pull iterations must run");
                let want = risgraph_algorithms::reference::compute(&alg, n as usize, &edges);
                for v in 0..n {
                    assert_eq!(tree.value(v), want[v as usize], "wcc vertex {v}");
                }
            } else {
                let alg = Bfs::new(0);
                let tree = TreeStore::new(n as usize, move |v| alg.init_val(v));
                let ctx = PushCtx {
                    store: &store,
                    alg: &alg,
                    tree: &tree,
                    pool: &pool,
                    config: &config,
                    epoch: 1,
                };
                let mut seeds = Vec::new();
                store.for_each_vertex(|v| seeds.push(v));
                ctx.propagate(seeds);
                let want = risgraph_algorithms::reference::compute(&alg, n as usize, &edges);
                for v in 0..n {
                    assert_eq!(tree.value(v), want[v as usize], "bfs vertex {v}");
                }
            }
        }
    }

    #[test]
    fn pull_disabled_when_threshold_is_one() {
        let store = GraphStore::<HashIndex>::with_capacity(8);
        store.insert_edge(E::new(0, 1, 0)).unwrap();
        let pool = Arc::new(WorkerPool::new(2));
        let alg = Bfs::new(0);
        let tree = TreeStore::new(8, move |v| alg.init_val(v));
        let config = PushConfig {
            pull_threshold: 1.0,
            sequential_grain: usize::MAX,
            ..PushConfig::default()
        };
        let ctx = PushCtx {
            store: &store,
            alg: &alg,
            tree: &tree,
            pool: &pool,
            config: &config,
            epoch: 1,
        };
        let result = ctx.propagate(vec![0, 1]);
        assert_eq!(
            result.iterations, 0,
            "fully sequential: no parallel iterations"
        );
        assert_eq!(tree.value(1), 1);
    }
}
