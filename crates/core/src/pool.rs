//! A small persistent worker pool.
//!
//! Per-update analysis cannot afford to spawn threads per push iteration
//! (the affected area is often a handful of vertices — §7), so the
//! engine keeps a fixed pool alive and dispatches closures to it. The
//! pool is deliberately minimal: `run` executes one job object on all
//! workers and blocks until every worker finishes — exactly the
//! fork-join shape of vertex-/edge-parallel push phases and of the
//! epoch loop's parallel safe phase.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

type Job = Arc<dyn Fn(usize) + Send + Sync>;

enum Msg {
    Run(Job, Sender<()>),
    Stop,
}

/// A fixed-size fork-join worker pool.
pub struct WorkerPool {
    senders: Vec<Sender<Msg>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for worker_id in 0..threads {
            let (tx, rx): (Sender<Msg>, Receiver<Msg>) = unbounded();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("risgraph-worker-{worker_id}"))
                    .spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                Msg::Run(job, done) => {
                                    job(worker_id);
                                    let _ = done.send(());
                                }
                                Msg::Stop => break,
                            }
                        }
                    })
                    .expect("spawn worker"),
            );
        }
        WorkerPool { senders, handles }
    }

    /// A pool sized to the machine (the paper uses all hardware threads).
    pub fn with_default_size() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }

    /// Number of workers.
    #[inline]
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Run `job(worker_id)` on every worker; blocks until all complete.
    pub fn run(&self, job: impl Fn(usize) + Send + Sync) {
        // Erase the closure's lifetime: `run` blocks until every worker
        // has finished, so the borrow cannot outlive the call. This is
        // the same contract as `crossbeam::scope`, enforced by the
        // completion channel below.
        let job: Arc<dyn Fn(usize) + Send + Sync> = unsafe {
            std::mem::transmute::<Arc<dyn Fn(usize) + Send + Sync + '_>, Job>(
                Arc::new(job) as Arc<dyn Fn(usize) + Send + Sync + '_>
            )
        };
        let (done_tx, done_rx) = bounded(self.senders.len());
        for tx in &self.senders {
            tx.send(Msg::Run(Arc::clone(&job), done_tx.clone()))
                .expect("worker alive");
        }
        for _ in 0..self.senders.len() {
            done_rx.recv().expect("worker completed");
        }
    }

    /// Split `total` items into contiguous chunks and hand each worker a
    /// stream of chunk ranges via an atomic cursor (dynamic load
    /// balancing — important for skewed frontiers). The closure receives
    /// `(worker_id, range)` so callers can keep per-worker buffers.
    pub fn run_ranges(
        &self,
        total: usize,
        grain: usize,
        f: impl Fn(usize, std::ops::Range<usize>) + Send + Sync,
    ) {
        if total == 0 {
            return;
        }
        let grain = grain.max(1);
        let cursor = AtomicUsize::new(0);
        self.run(|worker| loop {
            let start = cursor.fetch_add(grain, Ordering::Relaxed);
            if start >= total {
                break;
            }
            let end = (start + grain).min(total);
            f(worker, start..end);
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn all_workers_run() {
        let pool = WorkerPool::new(4);
        let seen = AtomicU64::new(0);
        pool.run(|id| {
            seen.fetch_or(1 << id, Ordering::SeqCst);
        });
        assert_eq!(seen.load(Ordering::SeqCst), 0b1111);
    }

    #[test]
    fn run_blocks_until_complete() {
        let pool = WorkerPool::new(3);
        let counter = AtomicU64::new(0);
        for _ in 0..10 {
            pool.run(|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 30);
    }

    #[test]
    fn run_ranges_covers_everything_once() {
        let pool = WorkerPool::new(4);
        let total = 10_007;
        let hits: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
        pool.run_ranges(total, 64, |_, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn run_ranges_empty_is_noop() {
        let pool = WorkerPool::new(2);
        pool.run_ranges(0, 16, |_, _| panic!("must not be called"));
    }

    #[test]
    fn borrows_local_state() {
        let pool = WorkerPool::new(2);
        let local = [AtomicU64::new(0), AtomicU64::new(0)];
        pool.run(|id| {
            local[id % 2].fetch_add(1, Ordering::SeqCst);
        });
        let sum: u64 = local.iter().map(|a| a.load(Ordering::SeqCst)).sum();
        assert_eq!(sum, 2);
    }

    #[test]
    fn min_one_thread() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        pool.run(|_| {});
    }
}
