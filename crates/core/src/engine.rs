//! The localized execution engine (§2, §3): graph updating + graph
//! computing, with safe/unsafe classification (§4).
//!
//! [`Engine`] owns the graph store and one tree & value store per
//! maintained algorithm. Its responsibilities:
//!
//! * apply structural updates to the Indexed Adjacency Lists;
//! * incrementally repair every algorithm's values and dependency tree
//!   (insert → relax + push propagation; tree-edge delete → subtree
//!   invalidation, trimmed approximation, push propagation);
//! * classify updates as **safe** (provably result-preserving, §4's
//!   three rules) or **unsafe**, and *revalidate* safe updates at
//!   execution time so the epoch loop's parallel phase stays correct;
//! * expose per-update change records (vertex, old value, new value)
//!   for the history store.
//!
//! Concurrency contract: `try_apply_safe` may be called from many
//! threads at once (no results change by construction) — the sharded
//! epoch loop's shard executors all enter here through `&self` during
//! the parallel safe phase; `apply_unsafe` must be called from one
//! thread at a time, with no concurrent safe applications — exactly
//! the phase discipline the epoch loop's shard barrier enforces. The
//! one sanctioned relaxation is [`Engine::apply_unsafe_sequential`]:
//! calls whose affected areas (see [`crate::affected::footprint`]) are
//! pairwise-disjoint vertex sets may run concurrently, because every
//! structure touched — per-vertex tree slots, store stripes, atomic
//! counters — is safe under disjoint-vertex concurrency and the
//! sequential push mode never shares the worker pool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use risgraph_algorithms::Monotonic;
use risgraph_common::hash::FxHashSet;
use risgraph_common::ids::{Edge, Update, VertexId};
use risgraph_common::Result;
use risgraph_storage::adjacency::DeleteOutcome;
use risgraph_storage::index::EdgeIndex;
use risgraph_storage::{DefaultStore, DynamicGraph, GraphStore, StoreConfig};

use crate::pool::WorkerPool;
use crate::push::{PushConfig, PushCtx, PushResult};
use crate::tree::{TreeStore, Value, VertexState};

/// A type-erased monotonic algorithm over the engine's value type.
pub type DynAlgorithm = Arc<dyn Monotonic<Value = Value>>;

/// Engine construction parameters.
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads for intra-update parallelism.
    pub threads: usize,
    /// Degree threshold for per-vertex edge indexes (§5: 512).
    pub index_threshold: usize,
    /// Push-propagation tuning (Hybrid Parallel Mode).
    pub push: PushConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            index_threshold: risgraph_storage::DEFAULT_INDEX_THRESHOLD,
            push: PushConfig::default(),
        }
    }
}

/// §4's classification of an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Safety {
    /// Provably cannot modify any result or dependency tree: may run in
    /// the parallel phase.
    Safe,
    /// May modify results: runs serially with intra-update parallelism.
    Unsafe,
}

/// Result of attempting a safe-phase application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SafeApply {
    /// Applied; no result changed.
    Applied,
    /// Revalidation failed (a concurrent safe update consumed the last
    /// duplicate, or the original classification is stale): the caller
    /// must requeue this update as unsafe.
    Demoted,
}

/// One vertex's result change within one update, for one algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChangeRecord {
    /// The modified vertex.
    pub vertex: VertexId,
    /// Value before the update.
    pub old: Value,
    /// Value after the update.
    pub new: Value,
    /// Dependency-tree parent edge before the update.
    pub old_parent: Option<Edge>,
    /// Dependency-tree parent edge after the update.
    pub new_parent: Option<Edge>,
}

impl ChangeRecord {
    /// Whether the *result value* changed (Table 4 counts these; a
    /// record may also exist because only the tree rewired).
    pub fn value_changed(&self) -> bool {
        self.old != self.new
    }
}

/// All result changes of one update, grouped by algorithm index.
#[derive(Debug, Clone, Default)]
pub struct ChangeSet {
    /// `per_algo[i]` lists the changes of algorithm `i`.
    pub per_algo: Vec<Vec<ChangeRecord>>,
}

impl ChangeSet {
    /// True when no algorithm's results changed.
    pub fn is_empty(&self) -> bool {
        self.per_algo.iter().all(|c| c.is_empty())
    }

    /// Total change records across algorithms.
    pub fn len(&self) -> usize {
        self.per_algo.iter().map(|c| c.len()).sum()
    }
}

/// Wall-time and count statistics, feeding Figure 11b's breakdown.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Updates applied through the unsafe path.
    pub unsafe_applied: AtomicU64,
    /// Updates applied through the safe path.
    pub safe_applied: AtomicU64,
    /// Safe applications demoted at revalidation.
    pub demoted: AtomicU64,
    /// Nanoseconds in the graph updating engine (structure mutation).
    pub update_ns: AtomicU64,
    /// Nanoseconds in the graph computing engine (propagation).
    pub compute_ns: AtomicU64,
    /// Nanoseconds classifying updates (the CC module).
    pub classify_ns: AtomicU64,
    /// Edges relaxed by propagation.
    pub edges_relaxed: AtomicU64,
}

impl EngineStats {
    fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }
}

struct AlgoState {
    alg: DynAlgorithm,
    tree: TreeStore,
}

struct CoreState<G: DynamicGraph> {
    store: G,
    algos: Vec<AlgoState>,
}

/// The RisGraph execution engine, generic over the storage backend
/// (`G: DynamicGraph`; the paper-default Indexed Adjacency Lists with
/// hash indexes — Table 8's IA_Hash — unless specified).
///
/// Use [`Engine::new`] for an IA store, or [`Engine::from_store`] to
/// drive any backend (index-only, out-of-core, or a runtime-selected
/// [`risgraph_storage::AnyStore`]).
pub struct Engine<G: DynamicGraph = DefaultStore> {
    state: RwLock<CoreState<G>>,
    pool: Arc<WorkerPool>,
    config: EngineConfig,
    epoch: AtomicU64,
    stats: EngineStats,
}

impl<I: EdgeIndex> Engine<GraphStore<I>> {
    /// Create an engine maintaining `algorithms` over an empty Indexed
    /// Adjacency Lists store with vertex capacity `capacity`.
    pub fn new(algorithms: Vec<DynAlgorithm>, capacity: usize, config: EngineConfig) -> Self {
        let store = GraphStore::with_config(
            capacity,
            StoreConfig {
                index_threshold: config.index_threshold,
                auto_create_vertices: true,
            },
        );
        Self::from_store(store, algorithms, config)
    }

    /// Convenience: single algorithm over the IA store.
    pub fn with_algorithm(alg: impl Monotonic<Value = Value>, capacity: usize) -> Self {
        Self::new(vec![Arc::new(alg)], capacity, EngineConfig::default())
    }
}

impl<G: DynamicGraph> Engine<G> {
    /// Create an engine maintaining `algorithms` over a caller-built
    /// storage backend. The tree stores size themselves to the store's
    /// current capacity and grow with it.
    pub fn from_store(store: G, algorithms: Vec<DynAlgorithm>, config: EngineConfig) -> Self {
        assert!(!algorithms.is_empty(), "need at least one algorithm");
        let capacity = store.capacity();
        let algos = algorithms
            .into_iter()
            .map(|alg| {
                let init_alg = Arc::clone(&alg);
                AlgoState {
                    tree: TreeStore::new(capacity, move |v| init_alg.init_val(v)),
                    alg,
                }
            })
            .collect();
        let pool = Arc::new(WorkerPool::new(config.threads));
        Engine {
            state: RwLock::new(CoreState { store, algos }),
            pool,
            config,
            epoch: AtomicU64::new(1),
            stats: EngineStats::default(),
        }
    }

    /// Number of maintained algorithms.
    pub fn num_algorithms(&self) -> usize {
        self.state.read().algos.len()
    }

    /// Name of algorithm `i`.
    pub fn algorithm_name(&self, i: usize) -> &'static str {
        self.state.read().algos[i].alg.name()
    }

    /// The worker pool (shared with the epoch loop).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Statistics counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Grow vertex capacity (epoch-boundary only; takes the write lock).
    pub fn ensure_capacity(&self, n: usize) {
        let mut st = self.state.write();
        st.store.ensure_capacity(n);
        for a in &mut st.algos {
            a.tree.ensure_capacity(n);
        }
    }

    /// Current vertex capacity.
    pub fn capacity(&self) -> usize {
        self.state.read().store.capacity()
    }

    /// Live vertex count.
    pub fn num_vertices(&self) -> u64 {
        self.state.read().store.num_vertices()
    }

    /// Live edge count (duplicates included).
    pub fn num_edges(&self) -> u64 {
        self.state.read().store.num_edges()
    }

    /// Current value of `v` under algorithm `algo`.
    pub fn value(&self, algo: usize, v: VertexId) -> Value {
        self.state.read().algos[algo].tree.value(v)
    }

    /// Current dependency-tree parent edge of `v` under algorithm `algo`.
    pub fn parent(&self, algo: usize, v: VertexId) -> Option<Edge> {
        self.state.read().algos[algo].tree.parent(v)
    }

    /// Snapshot all values of algorithm `algo` for `0..n`.
    pub fn values_snapshot(&self, algo: usize, n: usize) -> Vec<Value> {
        let st = self.state.read();
        (0..n as u64)
            .map(|v| st.algos[algo].tree.value(v))
            .collect()
    }

    /// Run `f` with the underlying store (read phase).
    pub fn with_store<R>(&self, f: impl FnOnce(&G) -> R) -> R {
        f(&self.state.read().store)
    }

    /// The storage backend's display label.
    pub fn backend_name(&self) -> &'static str {
        self.state.read().store.backend_name()
    }

    /// Export the live structure as a synthetic update batch — an
    /// `InsVertex` per live vertex (so isolated vertices survive),
    /// then every edge repeated by its multiplicity, in vertex order —
    /// such that applying it to an empty store reproduces the graph on
    /// any backend. Checkpoint capture; call at an epoch boundary.
    pub fn export_structure(&self) -> Vec<Update> {
        let st = self.state.read();
        let mut verts = Vec::new();
        st.store.for_each_vertex(&mut |v| verts.push(v));
        verts.sort_unstable();
        let mut out = Vec::with_capacity(verts.len());
        for &v in &verts {
            out.push(Update::InsVertex(v));
        }
        for &v in &verts {
            st.store.scan_out(v, &mut |d, w, c| {
                for _ in 0..c {
                    out.push(Update::InsEdge(Edge::new(v, d, w)));
                }
            });
        }
        out
    }

    /// Export every algorithm's dependency-tree state for vertices
    /// `0..n` (checkpoint capture; call at an epoch boundary).
    pub fn results_snapshot(&self, n: usize) -> Vec<Vec<VertexState>> {
        let st = self.state.read();
        st.algos
            .iter()
            .map(|a| (0..n as u64).map(|v| a.tree.get(v)).collect())
            .collect()
    }

    /// Install previously exported result states (checkpoint restore).
    /// The matching structure must already be applied and capacity
    /// ensured; skips silently past states beyond current capacity.
    pub fn restore_results(&self, per_algo: &[Vec<VertexState>]) {
        let st = self.state.read();
        assert_eq!(
            per_algo.len(),
            st.algos.len(),
            "result snapshot algorithm count mismatch"
        );
        for (a, states) in st.algos.iter().zip(per_algo) {
            let n = states.len().min(a.tree.capacity());
            for (v, s) in states.iter().take(n).enumerate() {
                a.tree.restore(v as u64, *s);
            }
        }
    }

    fn next_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Bulk-load edges and compute initial results for every algorithm.
    pub fn load_edges(&self, edges: &[(VertexId, VertexId, u64)]) {
        let max_v = edges
            .iter()
            .map(|&(s, d, _)| s.max(d) + 1)
            .max()
            .unwrap_or(0);
        self.ensure_capacity(max_v as usize);
        let st = self.state.read();
        // Parallel ingest: the store's per-vertex locks make this safe.
        self.pool.run_ranges(edges.len(), 1024, |_, range| {
            for &(s, d, w) in &edges[range] {
                st.store
                    .insert_edge(Edge::new(s, d, w))
                    .expect("capacity ensured");
            }
        });
        drop(st);
        self.recompute_all();
    }

    /// Recompute every algorithm from scratch (initial load; also the
    /// recovery path after WAL replay).
    pub fn recompute_all(&self) {
        let st = self.state.read();
        let mut seeds = Vec::new();
        st.store.for_each_vertex(&mut |v| seeds.push(v));
        let epoch = self.next_epoch();
        for a in &st.algos {
            // Reset to initial values first so recompute is idempotent.
            for &v in &seeds {
                a.tree.reset(v, epoch);
            }
            let ctx = PushCtx {
                store: &st.store,
                alg: a.alg.as_ref(),
                tree: &a.tree,
                pool: &self.pool,
                config: &self.config.push,
                epoch,
            };
            ctx.propagate(seeds.clone());
        }
    }

    // ------------------------------------------------------------------
    // Classification (§4)
    // ------------------------------------------------------------------

    fn insert_is_safe(a: &AlgoState, e: Edge) -> bool {
        let cand = a.alg.gen_next(e, a.tree.value(e.src));
        if a.alg.need_upd(e.dst, a.tree.value(e.dst), cand) {
            return false;
        }
        if a.alg.undirected() {
            let r = e.reversed();
            let cand = a.alg.gen_next(r, a.tree.value(r.src));
            if a.alg.need_upd(r.dst, a.tree.value(r.dst), cand) {
                return false;
            }
        }
        true
    }

    fn delete_touches_tree(a: &AlgoState, e: Edge) -> bool {
        a.tree.is_tree_edge(e) || (a.alg.undirected() && a.tree.is_tree_edge(e.reversed()))
    }

    /// Classify an update per §4: vertex ops are safe; a deletion is
    /// safe when a duplicate remains or the edge is off-tree for every
    /// algorithm; an insertion is safe when it improves no destination
    /// under any algorithm. O(#algorithms), no scanning.
    pub fn classify(&self, u: &Update) -> Safety {
        let t0 = std::time::Instant::now();
        let st = self.state.read();
        let safety = match u {
            Update::InsVertex(_) | Update::DelVertex(_) => Safety::Safe,
            Update::InsEdge(e) => {
                if e.src as usize >= st.store.capacity() || e.dst as usize >= st.store.capacity() {
                    // Will be executed after a capacity grow; values of
                    // fresh vertices are initial, so insertion safety
                    // must be judged then. Conservatively unsafe.
                    Safety::Unsafe
                } else if st.algos.iter().all(|a| Self::insert_is_safe(a, *e)) {
                    Safety::Safe
                } else {
                    Safety::Unsafe
                }
            }
            Update::DelEdge(e) => {
                if e.src as usize >= st.store.capacity() || e.dst as usize >= st.store.capacity() {
                    Safety::Safe // nonexistent edge: fails fast, no results touched
                } else {
                    let count = st.store.edge_count(*e);
                    if count == 0 || count > 1 {
                        Safety::Safe
                    } else if st.algos.iter().any(|a| Self::delete_touches_tree(a, *e)) {
                        Safety::Unsafe
                    } else {
                        Safety::Safe
                    }
                }
            }
        };
        EngineStats::add(&self.stats.classify_ns, t0.elapsed().as_nanos() as u64);
        safety
    }

    /// Classify a write-only transaction: safe iff every constituent
    /// update is safe (§4 "Supporting Transactions").
    pub fn classify_txn(&self, updates: &[Update]) -> Safety {
        if updates.iter().all(|u| self.classify(u) == Safety::Safe) {
            Safety::Safe
        } else {
            Safety::Unsafe
        }
    }

    // ------------------------------------------------------------------
    // Safe path (parallel phase)
    // ------------------------------------------------------------------

    /// Apply a safe-classified update, revalidating under the adjacency
    /// locks. May be called concurrently from many threads — this is
    /// the safe-path entry point the epoch loop's shard executors drive
    /// over `&G` during the parallel phase. Returns
    /// [`SafeApply::Demoted`] when the update can no longer be proven
    /// safe and must be retried on the unsafe path.
    pub fn try_apply_safe(&self, u: &Update) -> Result<SafeApply> {
        let scratch = AtomicU64::new(0);
        self.try_apply_safe_seq(u, &scratch).map(|(o, _)| o)
    }

    /// [`Self::try_apply_safe`] that additionally draws a WAL sequence
    /// stamp from `seq` for applied updates — *inside* the store
    /// synchronization that serializes same-edge operations for edge
    /// updates (see [`DynamicGraph::insert_edge_seq`]), and under the
    /// vertex-lifecycle reservation for vertex updates (see
    /// [`DynamicGraph::insert_vertex_seq`]). The epoch loop orders
    /// its merged per-epoch WAL record by these stamps so replay
    /// reproduces the cross-shard application order exactly, closing
    /// the same-edge count-race linearization caveat. Returns the stamp
    /// (`None` when nothing was applied).
    pub fn try_apply_safe_seq(
        &self,
        u: &Update,
        seq: &AtomicU64,
    ) -> Result<(SafeApply, Option<u64>)> {
        let t0 = std::time::Instant::now();
        let st = self.state.read();
        let (outcome, stamp) = match u {
            Update::InsVertex(v) => {
                let stamp = st.store.insert_vertex_seq(*v, seq)?;
                (SafeApply::Applied, Some(stamp))
            }
            Update::DelVertex(v) => {
                let stamp = st.store.delete_vertex_seq(*v, seq)?;
                (SafeApply::Applied, Some(stamp))
            }
            Update::InsEdge(e) => {
                // Values are frozen during the safe phase, so the
                // improvement check is stable; only re-check it in case
                // classification happened in an earlier epoch.
                if st.algos.iter().all(|a| Self::insert_is_safe(a, *e)) {
                    let (_, stamp) = st.store.insert_edge_seq(*e, seq)?;
                    (SafeApply::Applied, Some(stamp))
                } else {
                    (SafeApply::Demoted, None)
                }
            }
            Update::DelEdge(e) => {
                // Count-dependent safety must be revalidated atomically:
                // a concurrent safe delete may consume the last
                // duplicate.
                let algos = &st.algos;
                match st.store.delete_edge_if_seq(
                    *e,
                    &mut |count| {
                        count > 1 || !algos.iter().any(|a| Self::delete_touches_tree(a, *e))
                    },
                    seq,
                )? {
                    Some((_, stamp)) => (SafeApply::Applied, Some(stamp)),
                    None => (SafeApply::Demoted, None),
                }
            }
        };
        match outcome {
            SafeApply::Applied => EngineStats::add(&self.stats.safe_applied, 1),
            SafeApply::Demoted => EngineStats::add(&self.stats.demoted, 1),
        }
        EngineStats::add(&self.stats.update_ns, t0.elapsed().as_nanos() as u64);
        Ok((outcome, stamp))
    }

    // ------------------------------------------------------------------
    // Unsafe path (serial phase, intra-update parallel)
    // ------------------------------------------------------------------

    /// Apply any update with full incremental recomputation, using the
    /// configured (possibly pool-parallel) push propagation. Must not
    /// run concurrently with other applications (single-writer phase).
    pub fn apply_unsafe(&self, u: &Update) -> Result<ChangeSet> {
        self.apply_unsafe_inner(u, &self.config.push)
    }

    /// [`Self::apply_unsafe`] with strictly sequential propagation:
    /// the push config is pinned so push propagation never enters
    /// pull mode or the shared worker pool. Unlike
    /// `apply_unsafe`, concurrent calls are permitted **iff** their
    /// affected areas (see [`crate::affected::footprint`]) are
    /// pairwise-disjoint vertex sets: per-vertex tree slots, store
    /// stripes and atomic epoch/stat counters make disjoint-vertex
    /// execution race-free. The server's parallel unsafe phase is the
    /// caller that discharges that obligation.
    pub fn apply_unsafe_sequential(&self, u: &Update) -> Result<ChangeSet> {
        let push = PushConfig {
            sequential_grain: usize::MAX,
            pull_threshold: 1.0,
            forced_mode: None,
            ..self.config.push.clone()
        };
        self.apply_unsafe_inner(u, &push)
    }

    fn apply_unsafe_inner(&self, u: &Update, push: &PushConfig) -> Result<ChangeSet> {
        let st = self.state.read();
        let epoch = self.next_epoch();
        let t0 = std::time::Instant::now();
        let mut changes = ChangeSet {
            per_algo: vec![Vec::new(); st.algos.len()],
        };
        match u {
            Update::InsVertex(v) => {
                st.store.insert_vertex(*v)?;
                EngineStats::add(&self.stats.update_ns, t0.elapsed().as_nanos() as u64);
            }
            Update::DelVertex(v) => {
                st.store.delete_vertex(*v)?;
                EngineStats::add(&self.stats.update_ns, t0.elapsed().as_nanos() as u64);
            }
            Update::InsEdge(e) => {
                st.store.insert_edge(*e)?;
                EngineStats::add(&self.stats.update_ns, t0.elapsed().as_nanos() as u64);
                let tc = std::time::Instant::now();
                for (i, a) in st.algos.iter().enumerate() {
                    changes.per_algo[i] = self.algo_on_insert(&st, a, *e, epoch, push);
                }
                EngineStats::add(&self.stats.compute_ns, tc.elapsed().as_nanos() as u64);
            }
            Update::DelEdge(e) => {
                let outcome = st.store.delete_edge(*e)?;
                EngineStats::add(&self.stats.update_ns, t0.elapsed().as_nanos() as u64);
                if outcome == DeleteOutcome::Removed {
                    let tc = std::time::Instant::now();
                    for (i, a) in st.algos.iter().enumerate() {
                        changes.per_algo[i] = self.algo_on_delete(&st, a, *e, epoch, push);
                    }
                    EngineStats::add(&self.stats.compute_ns, tc.elapsed().as_nanos() as u64);
                }
            }
        }
        EngineStats::add(&self.stats.unsafe_applied, 1);
        Ok(changes)
    }

    /// Apply an update to the graph structure only, without touching any
    /// algorithm state. Used by WAL replay (followed by one
    /// [`Self::recompute_all`]) and by bulk loaders.
    pub fn apply_structure(&self, u: &Update) -> Result<()> {
        let st = self.state.read();
        match u {
            Update::InsVertex(v) => st.store.insert_vertex(*v).map(|_| ()),
            Update::DelVertex(v) => st.store.delete_vertex(*v),
            Update::InsEdge(e) => st.store.insert_edge(*e).map(|_| ()),
            Update::DelEdge(e) => st.store.delete_edge(*e).map(|_| ()),
        }
    }

    /// Convenience entry point: grow capacity as needed, classify, and
    /// run the matching path. Returns the classification and changes.
    /// Not for concurrent use — the epoch loop drives the two paths
    /// explicitly.
    pub fn apply(&self, u: &Update) -> Result<(Safety, ChangeSet)> {
        let need = match u {
            Update::InsEdge(e) | Update::DelEdge(e) => e.src.max(e.dst) + 1,
            Update::InsVertex(v) | Update::DelVertex(v) => v + 1,
        };
        if need as usize > self.capacity() {
            self.ensure_capacity(need as usize);
        }
        match self.classify(u) {
            Safety::Safe => match self.try_apply_safe(u)? {
                SafeApply::Applied => Ok((
                    Safety::Safe,
                    ChangeSet {
                        per_algo: vec![Vec::new(); self.num_algorithms()],
                    },
                )),
                SafeApply::Demoted => Ok((Safety::Unsafe, self.apply_unsafe(u)?)),
            },
            Safety::Unsafe => Ok((Safety::Unsafe, self.apply_unsafe(u)?)),
        }
    }

    fn push_ctx<'a>(
        &'a self,
        st: &'a CoreState<G>,
        a: &'a AlgoState,
        epoch: u64,
        push: &'a PushConfig,
    ) -> PushCtx<'a, G> {
        PushCtx {
            store: &st.store,
            alg: a.alg.as_ref(),
            tree: &a.tree,
            pool: &self.pool,
            config: push,
            epoch,
        }
    }

    fn collect_changes(a: &AlgoState, raw: Vec<(VertexId, VertexState)>) -> Vec<ChangeRecord> {
        raw.into_iter()
            .filter_map(|(v, old)| {
                let new = a.tree.get(v);
                let rec = ChangeRecord {
                    vertex: v,
                    old: old.value,
                    new: new.value,
                    old_parent: old.parent_edge(v),
                    new_parent: new.parent_edge(v),
                };
                (rec.old != rec.new || rec.old_parent != rec.new_parent).then_some(rec)
            })
            .collect()
    }

    /// Insertion repair: relax the new edge; on improvement, propagate.
    fn algo_on_insert(
        &self,
        st: &CoreState<G>,
        a: &AlgoState,
        e: Edge,
        epoch: u64,
        push: &PushConfig,
    ) -> Vec<ChangeRecord> {
        let ctx = self.push_ctx(st, a, epoch, push);
        let mut result = PushResult::default();
        let mut frontier = Vec::new();
        for edge in Self::orientations(a, e) {
            let cand = a.alg.gen_next(edge, a.tree.value(edge.src));
            if let Some((old, first)) =
                a.tree
                    .try_update(edge.dst, Some((edge.src, edge.data)), epoch, |cur| {
                        a.alg.need_upd(edge.dst, cur, cand).then_some(cand)
                    })
            {
                if first {
                    result.changed.push((edge.dst, old));
                }
                frontier.push(edge.dst);
            }
        }
        ctx.propagate_into(frontier, &mut result);
        EngineStats::add(&self.stats.edges_relaxed, result.edges_relaxed);
        Self::collect_changes(a, result.changed)
    }

    fn orientations(a: &AlgoState, e: Edge) -> Vec<Edge> {
        if a.alg.undirected() && e.src != e.dst {
            vec![e, e.reversed()]
        } else {
            vec![e]
        }
    }

    /// Deletion repair (§2): if the deleted edge was a dependency-tree
    /// edge, invalidate the subtree below it, re-seed invalidated
    /// vertices from their unaffected in-neighbours (trimmed
    /// approximation), and propagate to fixpoint.
    fn algo_on_delete(
        &self,
        st: &CoreState<G>,
        a: &AlgoState,
        e: Edge,
        epoch: u64,
        push: &PushConfig,
    ) -> Vec<ChangeRecord> {
        let mut roots = Vec::new();
        if a.tree.is_tree_edge(e) {
            roots.push(e.dst);
        }
        if a.alg.undirected() && a.tree.is_tree_edge(e.reversed()) {
            roots.push(e.src);
        }
        if roots.is_empty() {
            return Vec::new(); // §4 rule 2: off-tree deletions change nothing
        }

        // 1. Collect the invalidated subtree. Children of `v` are exactly
        //    the adjacent vertices whose parent pointer is (v, weight) —
        //    discoverable from v's own adjacency, keeping this localized.
        let undirected = a.alg.undirected();
        let mut in_sub: FxHashSet<VertexId> = FxHashSet::default();
        let mut stack = roots.clone();
        let mut sub = Vec::new();
        for &r in &roots {
            in_sub.insert(r);
        }
        while let Some(v) = stack.pop() {
            sub.push(v);
            {
                let (stack_ref, in_sub_ref) = (&mut stack, &mut in_sub);
                st.store.scan_out(v, &mut |d, w, _| {
                    if a.tree.is_tree_edge(Edge::new(v, d, w)) && in_sub_ref.insert(d) {
                        stack_ref.push(d);
                    }
                });
            }
            if undirected {
                let (stack_ref, in_sub_ref) = (&mut stack, &mut in_sub);
                st.store.scan_in(v, &mut |d, w, _| {
                    if a.tree.is_tree_edge(Edge::new(v, d, w)) && in_sub_ref.insert(d) {
                        stack_ref.push(d);
                    }
                });
            }
        }

        // 2. Reset the subtree to initial values (recording pre-update
        //    states exactly once per vertex via the epoch stamp).
        let mut result = PushResult::default();
        for &v in &sub {
            let (old, first) = a.tree.reset(v, epoch);
            if first {
                result.changed.push((v, old));
            }
        }

        // 3. Trimmed approximation: seed each invalidated vertex with its
        //    best candidate from current neighbour values (unaffected
        //    neighbours hold correct values; affected ones hold inits and
        //    simply produce non-improving candidates).
        for &v in &sub {
            st.store.scan_in(v, &mut |x, w, _| {
                // stored edge x → v
                let cand = a.alg.gen_next(Edge::new(x, v, w), a.tree.value(x));
                a.tree.try_update(v, Some((x, w)), epoch, |cur| {
                    a.alg.need_upd(v, cur, cand).then_some(cand)
                });
            });
            if undirected {
                st.store.scan_out(v, &mut |x, w, _| {
                    let cand = a.alg.gen_next(Edge::new(x, v, w), a.tree.value(x));
                    a.tree.try_update(v, Some((x, w)), epoch, |cur| {
                        a.alg.need_upd(v, cur, cand).then_some(cand)
                    });
                });
            }
        }

        // 4. Propagate to fixpoint, seeding the whole invalidated set:
        //    even a vertex still at its initial value can be a
        //    propagation source (WCC — a reset vertex's own label may be
        //    the new component minimum), and any vertex improved later
        //    re-enters the frontier through `try_update`.
        let frontier = sub.clone();
        let ctx = self.push_ctx(st, a, epoch, push);
        ctx.propagate_into(frontier, &mut result);
        EngineStats::add(&self.stats.edges_relaxed, result.edges_relaxed);
        Self::collect_changes(a, result.changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risgraph_algorithms::{reference, Bfs, Reachability, Sssp, Sswp, Wcc};
    use risgraph_common::ids::Edge as E;

    fn eng<A: Monotonic<Value = u64>>(alg: A, cap: usize) -> Engine {
        let mut config = EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        };
        config.push.sequential_grain = 32; // force parallel paths in tests
        config.push.parallel_grain = 8;
        Engine::new(vec![Arc::new(alg)], cap, config)
    }

    #[test]
    fn insert_updates_results_incrementally() {
        let e = eng(Bfs::new(0), 8);
        e.load_edges(&[(0, 1, 0)]);
        assert_eq!(e.value(0, 1), 1);
        let (safety, ch) = e.apply(&Update::InsEdge(E::new(1, 2, 0))).unwrap();
        assert_eq!(safety, Safety::Unsafe);
        assert_eq!(ch.per_algo[0].len(), 1);
        assert_eq!(
            ch.per_algo[0][0],
            ChangeRecord {
                vertex: 2,
                old: u64::MAX,
                new: 2,
                old_parent: None,
                new_parent: Some(E::new(1, 2, 0)),
            }
        );
        assert_eq!(e.value(0, 2), 2);
    }

    #[test]
    fn non_improving_insert_is_safe_and_changes_nothing() {
        let e = eng(Bfs::new(0), 8);
        e.load_edges(&[(0, 1, 0), (1, 2, 0)]);
        // 0→2 would give dist 1 (better) → unsafe; 2→1 gives 3 (worse) → safe.
        assert_eq!(e.classify(&Update::InsEdge(E::new(2, 1, 0))), Safety::Safe);
        assert_eq!(
            e.classify(&Update::InsEdge(E::new(0, 2, 0))),
            Safety::Unsafe
        );
        let (safety, ch) = e.apply(&Update::InsEdge(E::new(2, 1, 0))).unwrap();
        assert_eq!(safety, Safety::Safe);
        assert!(ch.is_empty());
        assert_eq!(e.value(0, 1), 1);
    }

    #[test]
    fn non_tree_deletion_is_safe() {
        let e = eng(Bfs::new(0), 8);
        e.load_edges(&[(0, 1, 0), (0, 2, 0), (2, 1, 0)]);
        // 2→1 cannot be the tree edge of 1 (0→1 is shorter).
        assert_eq!(e.classify(&Update::DelEdge(E::new(2, 1, 0))), Safety::Safe);
        let (s, ch) = e.apply(&Update::DelEdge(E::new(2, 1, 0))).unwrap();
        assert_eq!(s, Safety::Safe);
        assert!(ch.is_empty());
        assert_eq!(e.value(0, 1), 1);
    }

    #[test]
    fn tree_edge_deletion_invalidates_and_recovers() {
        let e = eng(Bfs::new(0), 8);
        // 0→1→2 plus alternate 0→3→3→2 path of length 3.
        e.load_edges(&[(0, 1, 0), (1, 2, 0), (0, 3, 0), (3, 4, 0), (4, 2, 0)]);
        assert_eq!(e.value(0, 2), 2);
        assert_eq!(
            e.classify(&Update::DelEdge(E::new(1, 2, 0))),
            Safety::Unsafe
        );
        let (_, ch) = e.apply(&Update::DelEdge(E::new(1, 2, 0))).unwrap();
        assert_eq!(e.value(0, 2), 3, "recovered via 0→3→4→2");
        assert_eq!(
            ch.per_algo[0],
            vec![ChangeRecord {
                vertex: 2,
                old: 2,
                new: 3,
                old_parent: Some(E::new(1, 2, 0)),
                new_parent: Some(E::new(4, 2, 0)),
            }]
        );
    }

    #[test]
    fn deletion_disconnects_subtree() {
        let e = eng(Bfs::new(0), 8);
        e.load_edges(&[(0, 1, 0), (1, 2, 0), (2, 3, 0)]);
        e.apply(&Update::DelEdge(E::new(0, 1, 0))).unwrap();
        assert_eq!(e.value(0, 1), u64::MAX);
        assert_eq!(e.value(0, 2), u64::MAX);
        assert_eq!(e.value(0, 3), u64::MAX);
        assert_eq!(e.value(0, 0), 0);
        assert_eq!(e.parent(0, 1), None);
    }

    #[test]
    fn duplicate_tree_edge_deletion_is_safe() {
        let e = eng(Bfs::new(0), 8);
        e.load_edges(&[(0, 1, 0), (0, 1, 0)]);
        assert_eq!(e.value(0, 1), 1);
        assert_eq!(e.classify(&Update::DelEdge(E::new(0, 1, 0))), Safety::Safe);
        let (s, _) = e.apply(&Update::DelEdge(E::new(0, 1, 0))).unwrap();
        assert_eq!(s, Safety::Safe);
        assert_eq!(e.value(0, 1), 1, "one copy remains");
        // Second deletion removes the tree edge → unsafe.
        assert_eq!(
            e.classify(&Update::DelEdge(E::new(0, 1, 0))),
            Safety::Unsafe
        );
        e.apply(&Update::DelEdge(E::new(0, 1, 0))).unwrap();
        assert_eq!(e.value(0, 1), u64::MAX);
    }

    #[test]
    fn wcc_undirected_insert_and_delete() {
        let e = eng(Wcc::new(), 8);
        e.load_edges(&[(1, 2, 0), (3, 4, 0)]);
        assert_eq!(e.value(0, 2), 1);
        assert_eq!(e.value(0, 4), 3);
        // Directed edge 4→1 merges the components (undirected semantics).
        e.apply(&Update::InsEdge(E::new(4, 1, 0))).unwrap();
        for v in [1, 2, 3, 4] {
            assert_eq!(e.value(0, v), 1, "vertex {v}");
        }
        // Remove it again: components split back.
        e.apply(&Update::DelEdge(E::new(4, 1, 0))).unwrap();
        assert_eq!(e.value(0, 2), 1);
        assert_eq!(e.value(0, 3), 3);
        assert_eq!(e.value(0, 4), 3);
    }

    #[test]
    fn vertex_ops_are_safe_and_isolated_only() {
        let e = eng(Bfs::new(0), 8);
        e.load_edges(&[(0, 1, 0)]);
        assert_eq!(e.classify(&Update::InsVertex(5)), Safety::Safe);
        let (s, ch) = e.apply(&Update::InsVertex(5)).unwrap();
        assert_eq!(s, Safety::Safe);
        assert!(ch.is_empty());
        assert!(e.apply(&Update::DelVertex(1)).is_err(), "not isolated");
        e.apply(&Update::DelEdge(E::new(0, 1, 0))).unwrap();
        e.apply(&Update::DelVertex(1)).unwrap();
    }

    #[test]
    fn txn_classification_requires_all_safe() {
        let e = eng(Bfs::new(0), 8);
        e.load_edges(&[(0, 1, 0), (1, 2, 0)]);
        let safe = Update::InsEdge(E::new(2, 1, 0));
        let unsafe_u = Update::InsEdge(E::new(0, 2, 0));
        assert_eq!(e.classify_txn(&[safe, safe]), Safety::Safe);
        assert_eq!(e.classify_txn(&[safe, unsafe_u]), Safety::Unsafe);
        assert_eq!(e.classify_txn(&[]), Safety::Safe);
    }

    #[test]
    fn multi_algorithm_classification_is_conjunctive() {
        let config = EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        };
        let e: Engine = Engine::new(
            vec![Arc::new(Bfs::new(0)), Arc::new(Sswp::new(0))],
            8,
            config,
        );
        e.load_edges(&[(0, 1, 5), (1, 2, 5)]);
        assert_eq!(e.num_algorithms(), 2);
        // A wider 0→2 edge improves SSWP but BFS too (dist 1 < 2) → unsafe.
        assert_eq!(
            e.classify(&Update::InsEdge(E::new(0, 2, 9))),
            Safety::Unsafe
        );
        // 2→1 with tiny capacity: improves neither.
        assert_eq!(e.classify(&Update::InsEdge(E::new(2, 1, 1))), Safety::Safe);
        e.apply(&Update::InsEdge(E::new(0, 2, 9))).unwrap();
        assert_eq!(e.value(0, 2), 1, "BFS updated");
        assert_eq!(e.value(1, 2), 9, "SSWP updated");
    }

    #[test]
    fn safe_apply_demotes_when_classification_goes_stale() {
        let e = eng(Bfs::new(0), 8);
        e.load_edges(&[(0, 1, 0), (0, 1, 0)]); // duplicate tree edge
        let del = Update::DelEdge(E::new(0, 1, 0));
        assert_eq!(e.classify(&del), Safety::Safe);
        // Consume the duplicate through the unsafe path (simulating a
        // concurrent session), then revalidate the stale-safe delete.
        e.apply_unsafe(&del).unwrap();
        assert_eq!(e.try_apply_safe(&del).unwrap(), SafeApply::Demoted);
        assert_eq!(e.value(0, 1), 1, "nothing applied on demotion");
        assert_eq!(e.stats().demoted.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn capacity_grows_transparently_through_apply() {
        let e = eng(Bfs::new(0), 4);
        e.load_edges(&[(0, 1, 0)]);
        e.apply(&Update::InsEdge(E::new(1, 1000, 0))).unwrap();
        assert_eq!(e.value(0, 1000), 2);
    }

    /// The big one: random interleaved insert/delete streams, engine vs
    /// reference oracle, all five algorithms.
    #[test]
    fn randomized_differential_all_algorithms() {
        use rand::{rngs::StdRng, Rng, SeedableRng};

        fn run<A: Monotonic<Value = u64> + Copy>(alg: A, seed: u64) {
            let n: u64 = 60;
            let mut rng = StdRng::seed_from_u64(seed);
            let e = eng(alg, n as usize);
            // Weighted initial graph.
            let mut live: Vec<(u64, u64, u64)> = (0..150)
                .map(|_| {
                    (
                        rng.gen_range(0..n),
                        rng.gen_range(0..n),
                        rng.gen_range(1..8u64),
                    )
                })
                .collect();
            e.load_edges(&live);
            for step in 0..400 {
                if !live.is_empty() && rng.gen_bool(0.45) {
                    let i = rng.gen_range(0..live.len());
                    let (s, d, w) = live.swap_remove(i);
                    e.apply(&Update::DelEdge(E::new(s, d, w))).unwrap();
                } else {
                    let t = (
                        rng.gen_range(0..n),
                        rng.gen_range(0..n),
                        rng.gen_range(1..8u64),
                    );
                    live.push(t);
                    e.apply(&Update::InsEdge(E::new(t.0, t.1, t.2))).unwrap();
                }
                if step % 50 == 49 {
                    let want = reference::compute(&alg, n as usize, &live);
                    for v in 0..n {
                        assert_eq!(
                            e.value(0, v),
                            want[v as usize],
                            "{} seed {seed} step {step} vertex {v}",
                            alg.name()
                        );
                    }
                }
            }
            let want = reference::compute(&alg, n as usize, &live);
            for v in 0..n {
                assert_eq!(e.value(0, v), want[v as usize]);
            }
        }

        for seed in [1u64, 2, 3] {
            run(Bfs::new(0), seed);
            run(Sssp::new(0), seed);
            run(Sswp::new(0), seed);
            run(Wcc::new(), seed * 7);
            run(Reachability::new(0), seed * 13);
        }
    }

    /// Safe updates must never change any value (checked exhaustively on
    /// a random stream by snapshotting).
    #[test]
    fn safe_updates_never_change_results() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let n: u64 = 40;
        let mut rng = StdRng::seed_from_u64(99);
        let alg = Sssp::new(0);
        let e = eng(alg, n as usize);
        let mut live: Vec<(u64, u64, u64)> = (0..120)
            .map(|_| {
                (
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(1..6),
                )
            })
            .collect();
        e.load_edges(&live);
        let mut checked_safe = 0;
        for _ in 0..300 {
            let del = !live.is_empty() && rng.gen_bool(0.5);
            let u = if del {
                let i = rng.gen_range(0..live.len());
                let t = live[i];
                Update::DelEdge(E::new(t.0, t.1, t.2))
            } else {
                let t = (
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(1..6),
                );
                Update::InsEdge(E::new(t.0, t.1, t.2))
            };
            if e.classify(&u) == Safety::Safe {
                let before = e.values_snapshot(0, n as usize);
                let (_, ch) = e.apply(&u).unwrap();
                let after = e.values_snapshot(0, n as usize);
                assert_eq!(before, after, "safe update {u:?} changed values");
                assert!(ch.is_empty());
                checked_safe += 1;
            } else {
                e.apply(&u).unwrap();
            }
            match u {
                Update::DelEdge(d) => {
                    if let Some(p) = live
                        .iter()
                        .position(|&(s, dd, w)| s == d.src && dd == d.dst && w == d.data)
                    {
                        live.swap_remove(p);
                    }
                }
                Update::InsEdge(i) => live.push((i.src, i.dst, i.data)),
                _ => {}
            }
        }
        assert!(
            checked_safe > 20,
            "exercised only {checked_safe} safe updates"
        );
        let want = reference::compute(&alg, n as usize, &live);
        for v in 0..n {
            assert_eq!(e.value(0, v), want[v as usize]);
        }
    }

    /// Table 4's phenomenon: on power-law-ish graphs most random updates
    /// are safe.
    #[test]
    fn most_updates_are_safe_on_skewed_graphs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let n: u64 = 500;
        let mut rng = StdRng::seed_from_u64(5);
        // Zipf-ish: half the edges attach to low-id hubs.
        let pick = |rng: &mut StdRng| -> u64 {
            if rng.gen_bool(0.5) {
                rng.gen_range(0..10)
            } else {
                rng.gen_range(0..n)
            }
        };
        let edges: Vec<(u64, u64, u64)> = (0..5000)
            .map(|_| (pick(&mut rng), pick(&mut rng), 0))
            .collect();
        let e = eng(Bfs::new(0), n as usize);
        e.load_edges(&edges);
        let mut safe = 0;
        let total = 500;
        for _ in 0..total {
            let u = Update::InsEdge(E::new(pick(&mut rng), pick(&mut rng), 0));
            if e.classify(&u) == Safety::Safe {
                safe += 1;
            }
            e.apply(&u).unwrap();
        }
        assert!(
            safe * 10 >= total * 5,
            "expected most inserts safe, got {safe}/{total}"
        );
    }

    #[test]
    fn stats_accumulate() {
        let e = eng(Bfs::new(0), 8);
        e.load_edges(&[(0, 1, 0)]);
        e.apply(&Update::InsEdge(E::new(1, 2, 0))).unwrap();
        e.apply(&Update::InsEdge(E::new(2, 1, 0))).unwrap(); // safe
        let s = e.stats();
        assert!(s.unsafe_applied.load(Ordering::Relaxed) >= 1);
        assert!(s.safe_applied.load(Ordering::Relaxed) >= 1);
        assert!(s.update_ns.load(Ordering::Relaxed) > 0);
        assert!(s.compute_ns.load(Ordering::Relaxed) > 0);
        assert!(s.classify_ns.load(Ordering::Relaxed) > 0);
    }
}
