//! Affected-area (AFF) analysis — §7 "Affected Areas Could Be Small".
//!
//! The paper models per-update computing cost with the *affected area*:
//! for a uniformly sampled edge `e = (i, j)`,
//!
//! * `AFFV_e = 𝟙[e ∈ E_T] · |T_j|` bounds the vertices whose results an
//!   update to `e` can modify (the subtree below `j`), and
//! * `AFFE_e = 𝟙[e ∈ E_T] · Σ_{k ∈ T_j} d_k` bounds the edges inspected
//!   while repairing them;
//!
//! with the closed forms `mean AFFV = (1/|E|) Σ_{v∈V_T} (dep_v + 1) ≤
//! (D_T + 1)/d̄` and `mean AFFE = (1/|E|) Σ_{v∈V_T} (dep_v + 1)·d_v ≤
//! 2(D_T + 1)`, where `dep_v` is tree depth, `D_T` the tree diameter
//! (depth), and `d̄` the mean degree.
//!
//! [`analyze`] computes both the exact sums and the closed-form bounds
//! on a live engine, so the `sec8_affected_area` harness can verify the
//! §7 claim empirically: on power-law graphs both stay tiny, which is
//! *why* per-update analysis sustains millions of ops/s.

use risgraph_common::hash::FxHashSet;
use risgraph_common::ids::{Update, VertexId};
use risgraph_storage::DynamicGraph;

use crate::engine::Engine;

/// The §7 quantities for one algorithm's dependency forest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffectedAreaReport {
    /// Exact mean `AFFV` over uniformly sampled edges.
    pub mean_affv: f64,
    /// Exact mean `AFFE`.
    pub mean_affe: f64,
    /// The closed-form bound `(D_T + 1) / d̄`.
    pub affv_bound: f64,
    /// The closed-form bound `2 (D_T + 1)`.
    pub affe_bound: f64,
    /// Tree height `D_T` (max depth over all tree vertices).
    pub tree_depth: u64,
    /// Vertices that currently have a parent (|V_T| minus roots).
    pub tree_vertices: u64,
    /// Mean total degree `d̄ = 2|E| / |V|` (0 when empty).
    pub mean_degree: f64,
}

/// Compute the exact AFF sums and their §7 bounds for algorithm `algo`.
///
/// Cost: O(|V| + |E|) — a diagnostics pass, not a hot path. Depths are
/// memoized by path-chasing with an explicit stack (the forest can be
/// deep on road networks).
pub fn analyze<G: DynamicGraph>(engine: &Engine<G>, algo: usize) -> AffectedAreaReport {
    let n = engine.capacity() as u64;
    let num_edges = engine.num_edges().max(1);
    let num_vertices = engine.num_vertices().max(1);

    // dep[v] = depth in the dependency forest (0 for roots/isolated).
    const UNKNOWN: u64 = u64::MAX;
    let mut dep = vec![UNKNOWN; n as usize];
    let mut stack = Vec::new();
    for v0 in 0..n {
        if dep[v0 as usize] != UNKNOWN {
            continue;
        }
        // Walk up until a vertex with known depth or a root.
        let mut v = v0;
        loop {
            match engine.parent(algo, v) {
                Some(pe) if dep[pe.src as usize] == UNKNOWN => {
                    stack.push(v);
                    v = pe.src;
                    // Defensive: a corrupt tree with a cycle would hang;
                    // the engine's invariants forbid it, but fail fast.
                    debug_assert!(stack.len() <= n as usize + 1, "parent cycle");
                }
                Some(pe) => {
                    dep[v as usize] = dep[pe.src as usize] + 1;
                    break;
                }
                None => {
                    dep[v as usize] = 0;
                    break;
                }
            }
        }
        while let Some(w) = stack.pop() {
            let pe = engine.parent(algo, w).expect("pushed only with parent");
            dep[w as usize] = dep[pe.src as usize] + 1;
        }
    }

    let mut sum_affv = 0.0f64;
    let mut sum_affe = 0.0f64;
    let mut tree_vertices = 0u64;
    let mut tree_depth = 0u64;
    for v in 0..n {
        if engine.parent(algo, v).is_some() {
            tree_vertices += 1;
            let d = dep[v as usize];
            tree_depth = tree_depth.max(d);
            let degree = engine.with_store(|s| s.total_degree(v)) as f64;
            sum_affv += (d + 1) as f64;
            sum_affe += (d + 1) as f64 * degree;
        }
    }
    let mean_degree = 2.0 * num_edges as f64 / num_vertices as f64;
    AffectedAreaReport {
        mean_affv: sum_affv / num_edges as f64,
        mean_affe: sum_affe / num_edges as f64,
        affv_bound: (tree_depth + 1) as f64 / mean_degree.max(1.0),
        affe_bound: 2.0 * (tree_depth + 1) as f64,
        tree_depth,
        tree_vertices,
        mean_degree,
    }
}

/// A capped over-approximation of the affected area of a batch of
/// updates: the union of the weakly-connected components (in the
/// *current* structure) of every vertex the updates mention, walked
/// breadth-first over both adjacency directions.
///
/// Why this is a sound footprint for [`Engine::apply_unsafe`]: every
/// read and write of an unsafe application — insertion relax +
/// propagation, tree-edge deletion's subtree collection, trimmed
/// re-seeding and propagation, vertex creation/removal, and the
/// compensating inverses of a rolled-back transaction — stays within
/// the weakly-connected components of the update's endpoints, and a
/// completed walk is closed under adjacency, so applying any sequence
/// of updates whose endpoints all seed the walk cannot escape the
/// returned set (insertions only merge seeded components; deletions
/// only shrink them).
///
/// Returns the touched vertices, or `None` when the walk exceeds
/// `cap` — the caller must treat that update as potentially
/// overlapping everything (serial fallback). Cost is O(cap) in the
/// worst case: a bounded probe, not the O(|V|+|E|) [`analyze`] pass.
pub fn footprint<G: DynamicGraph>(
    engine: &Engine<G>,
    updates: &[Update],
    cap: usize,
) -> Option<Vec<VertexId>> {
    let n = engine.capacity() as u64;
    let mut seen: FxHashSet<VertexId> = FxHashSet::default();
    let mut stack: Vec<VertexId> = Vec::new();
    for u in updates {
        let (a, b) = match u {
            Update::InsEdge(e) | Update::DelEdge(e) => (e.src, Some(e.dst)),
            Update::InsVertex(v) | Update::DelVertex(v) => (*v, None),
        };
        for v in std::iter::once(a).chain(b) {
            if seen.insert(v) {
                stack.push(v);
            }
        }
    }
    if seen.len() > cap {
        return None;
    }
    let complete = engine.with_store(|store| {
        while let Some(v) = stack.pop() {
            if v >= n {
                continue; // beyond capacity: no adjacency yet
            }
            let (seen_ref, stack_ref) = (&mut seen, &mut stack);
            let mut visit = |d: VertexId, _w: u64, _c: u32| {
                if seen_ref.insert(d) {
                    stack_ref.push(d);
                }
            };
            store.scan_out(v, &mut visit);
            store.scan_in(v, &mut visit);
            if seen.len() > cap {
                return false;
            }
        }
        true
    });
    complete.then(|| {
        let mut vs: Vec<VertexId> = seen.into_iter().collect();
        vs.sort_unstable();
        vs
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use risgraph_algorithms::Bfs;
    use risgraph_common::ids::Edge;

    #[test]
    fn chain_graph_depths() {
        // 0→1→2→3: dep = 0,1,2,3; |E|=3.
        let engine: Engine = Engine::with_algorithm(Bfs::new(0), 8);
        engine.load_edges(&[(0, 1, 0), (1, 2, 0), (2, 3, 0)]);
        let r = analyze(&engine, 0);
        assert_eq!(r.tree_depth, 3);
        assert_eq!(r.tree_vertices, 3); // 1, 2, 3 have parents
                                        // Σ(dep+1) over tree vertices = 2+3+4 = 9; /|E|=3 → 3.
        assert!((r.mean_affv - 3.0).abs() < 1e-9);
        // Each vertex degree: d(1)=2, d(2)=2, d(3)=1 ⇒ Σ(dep+1)d = 4+6+4 = 14; /3.
        assert!((r.mean_affe - 14.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn star_graph_is_shallow() {
        // Hub 0 with 50 spokes: depth 1 everywhere, AFFV small.
        let edges: Vec<(u64, u64, u64)> = (1..=50).map(|i| (0, i, 0)).collect();
        let engine: Engine = Engine::with_algorithm(Bfs::new(0), 64);
        engine.load_edges(&edges);
        let r = analyze(&engine, 0);
        assert_eq!(r.tree_depth, 1);
        // Σ(dep+1) = 50·2 = 100, /50 edges = 2.
        assert!((r.mean_affv - 2.0).abs() < 1e-9);
        assert!(r.mean_affe <= r.affe_bound + 1e-9);
    }

    #[test]
    fn bounds_hold_on_random_graphs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let n = 300u64;
        let edges: Vec<(u64, u64, u64)> = (0..2000)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n), 0))
            .collect();
        let engine: Engine = Engine::with_algorithm(Bfs::new(0), n as usize);
        engine.load_edges(&edges);
        let r = analyze(&engine, 0);
        // The paper's inequalities, with slack for the |V_T| ≤ |V| step.
        assert!(
            r.mean_affv <= (r.tree_depth + 1) as f64 * n as f64 / engine.num_edges() as f64 + 1e-9,
            "AFFV {} exceeds its derivation",
            r.mean_affv
        );
        assert!(r.mean_affe <= r.affe_bound + 1e-9, "AFFE bound violated");
        assert!(r.tree_depth < n);
    }

    #[test]
    fn empty_graph() {
        let engine: Engine = Engine::with_algorithm(Bfs::new(0), 8);
        let r = analyze(&engine, 0);
        assert_eq!(r.mean_affv, 0.0);
        assert_eq!(r.tree_vertices, 0);
    }

    #[test]
    fn footprint_covers_the_component() {
        // Two components: 0→1→2 and 4→5. A probe seeded inside one
        // must return exactly that component, in both edge directions.
        let engine: Engine = Engine::with_algorithm(Bfs::new(0), 8);
        engine.load_edges(&[(0, 1, 0), (1, 2, 0), (4, 5, 0)]);
        let fp = footprint(&engine, &[Update::DelEdge(Edge::new(1, 2, 0))], 100).unwrap();
        assert_eq!(fp, vec![0, 1, 2]);
        let fp = footprint(&engine, &[Update::InsEdge(Edge::new(5, 6, 0))], 100).unwrap();
        assert_eq!(fp, vec![4, 5, 6]);
    }

    #[test]
    fn footprint_unions_all_updates_of_a_batch() {
        let engine: Engine = Engine::with_algorithm(Bfs::new(0), 8);
        engine.load_edges(&[(0, 1, 0), (4, 5, 0)]);
        let batch = [
            Update::InsEdge(Edge::new(0, 1, 0)),
            Update::DelVertex(5),
            Update::InsVertex(7),
        ];
        let fp = footprint(&engine, &batch, 100).unwrap();
        assert_eq!(fp, vec![0, 1, 4, 5, 7]);
    }

    #[test]
    fn footprint_cap_returns_none() {
        // A 20-chain: any probe from inside it needs 20 slots.
        let edges: Vec<(u64, u64, u64)> = (0..19).map(|i| (i, i + 1, 0)).collect();
        let engine: Engine = Engine::with_algorithm(Bfs::new(0), 20);
        engine.load_edges(&edges);
        let u = [Update::DelEdge(Edge::new(9, 10, 0))];
        assert!(footprint(&engine, &u, 5).is_none());
        assert_eq!(footprint(&engine, &u, 20).unwrap().len(), 20);
    }

    #[test]
    fn footprint_of_beyond_capacity_vertex_is_itself() {
        let engine: Engine = Engine::with_algorithm(Bfs::new(0), 4);
        let fp = footprint(&engine, &[Update::InsVertex(9)], 10).unwrap();
        assert_eq!(fp, vec![9]);
    }
}
