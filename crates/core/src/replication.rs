//! Leader → follower WAL-shipping replication.
//!
//! PR 3 made the merged epoch WAL record **byte-exact** under
//! cross-shard races: every applied update draws a global
//! application-order stamp inside the store lock that serializes
//! same-edge operations, and the record is sorted by it. That is
//! precisely the property that makes log shipping correct — a follower
//! replaying the records in order reproduces the leader's store
//! byte-for-byte. This module adds the two halves that turn the record
//! stream into read replicas:
//!
//! * [`ReplicationFeed`] — the leader's in-memory, index-addressed
//!   retention of every published [`FeedRecord`]. The coordinator
//!   appends one record (or, for oversized epochs, a chunked run of
//!   records split at version-group boundaries) per epoch *after* the
//!   WAL append, and a recovered WAL prefix is re-published as
//!   `bootstrap` records so a fresh follower can always catch up from
//!   index 0. Appending never blocks on followers: a slow follower
//!   lags behind the feed, it cannot wedge the epoch loop (its
//!   connection throttles on its own bounded writer budget in
//!   `crates/net`).
//! * [`Replica`] — the follower-side state: an [`Engine`] over any
//!   backend plus its own [`HistoryStore`]s and version counter,
//!   applying records through the *existing* replay primitives —
//!   [`Engine::apply_structure`] for the commuting safe phase (which
//!   provably changed no results on the leader) and
//!   [`Engine::apply_unsafe`] for each serial version group (which
//!   recomputes the same incremental change sets the leader recorded).
//!   Because every safe version precedes every unsafe version within an
//!   epoch (the shard barrier orders the `fetch_add`s), the replica's
//!   version numbering — and therefore every `get_value` /
//!   `get_parent` / `get_modified_vertices` answer at every version —
//!   matches the leader's exactly. `tests/replication_differential.rs`
//!   proves it on IA_Hash and ooc-mmap at shards 1 and 4, under
//!   injected frame faults.
//!
//! Record application is **idempotent by index**: a duplicate record
//! (index below the applied watermark) is skipped, a gap is a protocol
//! error that makes the follower resubscribe from its watermark — the
//! two properties that make kill-and-reconnect catch-up safe.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use risgraph_common::ids::{Update, VersionId, VertexId};
use risgraph_common::metrics::{Gauge, Registry};
use risgraph_common::protocol::FeedRecord;
use risgraph_common::{Error, Result};
use risgraph_storage::{AnyStore, BackendKind, StoreConfig};

use crate::engine::{ChangeSet, DynAlgorithm, Engine, EngineConfig};
use crate::history::HistoryStore;
use crate::server::merge_changesets;
use crate::tree::Value;

/// Upper bound on updates per published record: epochs above it are
/// chunked (at version-group boundaries) so every record encodes far
/// below the response frame limit.
pub const MAX_RECORD_UPDATES: usize = 16_384;

/// Retained records plus the retention bookkeeping, under one lock:
/// eviction decisions must see a consistent (records, watermarks,
/// checkpoint-cut) triple.
struct FeedBuf {
    /// Feed index of `records.front()` — the retention floor. Indexes
    /// below it have been evicted (covered by the checkpoint snapshot
    /// and already streamed to every registered follower).
    base: u64,
    records: VecDeque<std::sync::Arc<FeedRecord>>,
    /// Per-registered-follower next-needed index; a record below every
    /// watermark has been delivered everywhere.
    watermarks: HashMap<u64, u64>,
    next_slot: u64,
    /// The latest checkpoint cut `(feed index, leader version)`: the
    /// on-disk snapshot covers all records below the index, so they
    /// may be evicted once every follower has passed them. `None`
    /// until the first checkpoint ⇒ nothing is ever evicted.
    cut: Option<(u64, u64)>,
}

impl FeedBuf {
    fn len(&self) -> u64 {
        self.base + self.records.len() as u64
    }

    /// Drop every record below the checkpoint cut that all registered
    /// followers have already passed.
    fn evict(&mut self) {
        let Some((cut, _)) = self.cut else { return };
        let floor = self.watermarks.values().copied().fold(cut, u64::min);
        while self.base < floor {
            self.records.pop_front();
            self.base += 1;
        }
    }
}

/// The leader's replication feed: the published [`FeedRecord`]s,
/// addressed by dense index and retained until a checkpoint covers
/// them *and* every registered follower's watermark has passed them,
/// plus the follower registration slots (`max_followers`).
pub struct ReplicationFeed {
    buf: StdMutex<FeedBuf>,
    grew: Condvar,
    max_followers: usize,
    metrics: std::sync::OnceLock<FeedGauges>,
}

/// The feed's registered gauges, published after every mutation while
/// the buffer lock is still held (three relaxed stores).
struct FeedGauges {
    records: std::sync::Arc<Gauge>,
    resident: std::sync::Arc<Gauge>,
    followers: std::sync::Arc<Gauge>,
}

impl ReplicationFeed {
    /// An empty feed admitting at most `max_followers` subscribers.
    pub fn new(max_followers: usize) -> Self {
        ReplicationFeed {
            buf: StdMutex::new(FeedBuf {
                base: 0,
                records: VecDeque::new(),
                watermarks: HashMap::new(),
                next_slot: 0,
                cut: None,
            }),
            grew: Condvar::new(),
            max_followers,
            metrics: std::sync::OnceLock::new(),
        }
    }

    /// Self-register the feed's gauges (`replication.feed.records` /
    /// `.resident` / `.followers`) in `registry`; they track every
    /// mutation from then on. Idempotent — a second call is a no-op.
    pub fn register_metrics(&self, registry: &Registry) {
        let gauges = FeedGauges {
            records: registry.gauge("replication.feed.records"),
            resident: registry.gauge("replication.feed.resident"),
            followers: registry.gauge("replication.feed.followers"),
        };
        let _ = self.metrics.set(gauges);
        self.publish_gauges(&self.buf.lock().unwrap());
    }

    fn publish_gauges(&self, buf: &FeedBuf) {
        if let Some(g) = self.metrics.get() {
            g.records.store(buf.len(), Ordering::Relaxed);
            g.resident
                .store(buf.records.len() as u64, Ordering::Relaxed);
            g.followers
                .store(buf.watermarks.len() as u64, Ordering::Relaxed);
        }
    }

    /// The configured follower limit.
    pub fn max_followers(&self) -> usize {
        self.max_followers
    }

    /// Currently registered followers.
    pub fn followers(&self) -> usize {
        self.buf.lock().unwrap().watermarks.len()
    }

    /// Claim a follower slot whose first needed record is `from`;
    /// `None` when the limit is reached. The slot's watermark pins the
    /// retention floor at `from` until advanced via
    /// [`ReplicationFeed::set_watermark`].
    pub fn try_register(&self, from: u64) -> Option<u64> {
        let mut buf = self.buf.lock().unwrap();
        if buf.watermarks.len() >= self.max_followers {
            return None;
        }
        let slot = buf.next_slot;
        buf.next_slot += 1;
        buf.watermarks.insert(slot, from);
        self.publish_gauges(&buf);
        Some(slot)
    }

    /// Release a slot claimed by [`ReplicationFeed::try_register`],
    /// evicting whatever only it was pinning.
    pub fn unregister(&self, slot: u64) {
        let mut buf = self.buf.lock().unwrap();
        buf.watermarks.remove(&slot);
        buf.evict();
        self.publish_gauges(&buf);
    }

    /// Advance a follower's watermark to `next` (the index it needs
    /// next — everything below has been delivered), evicting records
    /// every follower and the checkpoint have passed. Watermarks are
    /// monotone; stale values are ignored.
    pub fn set_watermark(&self, slot: u64, next: u64) {
        let mut buf = self.buf.lock().unwrap();
        if let Some(w) = buf.watermarks.get_mut(&slot) {
            if next > *w {
                *w = next;
                buf.evict();
                self.publish_gauges(&buf);
            }
        }
    }

    /// Record a checkpoint cut: the durable snapshot now covers every
    /// record below `index`, captured at leader version `version` —
    /// the resume coordinates a snapshot-bootstrapped follower starts
    /// from. Unblocks eviction up to the cut.
    pub fn set_checkpoint(&self, index: u64, version: u64) {
        let mut buf = self.buf.lock().unwrap();
        buf.cut = Some((index, version));
        buf.evict();
        self.publish_gauges(&buf);
    }

    /// The latest checkpoint cut `(feed index, leader version)`.
    pub fn checkpoint_cut(&self) -> Option<(u64, u64)> {
        self.buf.lock().unwrap().cut
    }

    /// Records published so far (including evicted ones — indexes are
    /// dense over the feed's whole history).
    pub fn len(&self) -> u64 {
        self.buf.lock().unwrap().len()
    }

    /// First retained index — the retention floor. A subscribe below
    /// it must bootstrap from the checkpoint snapshot.
    pub fn base(&self) -> u64 {
        self.buf.lock().unwrap().base
    }

    /// Records currently resident in memory (the soak-test bound).
    pub fn resident(&self) -> u64 {
        self.buf.lock().unwrap().records.len() as u64
    }

    /// `true` when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The record at `index`: `None` when not yet published *or*
    /// already evicted (callers distinguish via
    /// [`ReplicationFeed::base`]).
    pub fn get(&self, index: u64) -> Option<std::sync::Arc<FeedRecord>> {
        let buf = self.buf.lock().unwrap();
        index
            .checked_sub(buf.base)
            .and_then(|i| buf.records.get(i as usize))
            .cloned()
    }

    /// Block until the feed holds a record at `index` (returning the new
    /// length) or `timeout` elapses (returning the current length).
    pub fn wait_beyond(&self, index: u64, timeout: Duration) -> u64 {
        let guard = self.buf.lock().unwrap();
        if guard.len() > index {
            return guard.len();
        }
        let (guard, _) = self
            .grew
            .wait_timeout_while(guard, timeout, |b| b.len() <= index)
            .unwrap();
        guard.len()
    }

    fn push_all(&self, mut records: Vec<FeedRecord>) {
        if records.is_empty() {
            return;
        }
        let mut guard = self.buf.lock().unwrap();
        for mut rec in records.drain(..) {
            rec.index = guard.len();
            guard.records.push_back(std::sync::Arc::new(rec));
        }
        self.publish_gauges(&guard);
        drop(guard);
        self.grew.notify_all();
    }

    /// Publish a recovered WAL prefix as structure-only bootstrap
    /// records (the leader restarts at version 0 after recovery, so
    /// they carry no version bumps; a follower recomputes results once
    /// the bootstrap prefix ends).
    pub fn append_bootstrap(&self, updates: Vec<Update>) {
        let records = updates
            .chunks(MAX_RECORD_UPDATES)
            .map(|chunk| FeedRecord {
                index: 0, // assigned at push
                bootstrap: true,
                safe_versions: 0,
                safe_updates: chunk.to_vec(),
                unsafe_groups: Vec::new(),
            })
            .collect();
        self.push_all(records);
    }

    /// Publish one epoch: the stamp-sorted safe updates with their
    /// version-bump count, then the serial unsafe version groups in
    /// order. Oversized epochs are split at version-group boundaries
    /// into consecutive records; the safe version bumps ride the last
    /// safe chunk so a follower's numbering advances only after all the
    /// epoch's safe structure is in place.
    pub fn append_epoch(
        &self,
        safe_updates: Vec<Update>,
        safe_versions: u64,
        unsafe_groups: Vec<Vec<Update>>,
    ) {
        if safe_versions == 0 && safe_updates.is_empty() && unsafe_groups.is_empty() {
            return;
        }
        let mut records: Vec<FeedRecord> = Vec::new();
        let blank = |bootstrap: bool| FeedRecord {
            index: 0,
            bootstrap,
            safe_versions: 0,
            safe_updates: Vec::new(),
            unsafe_groups: Vec::new(),
        };
        // Safe chunks.
        if safe_updates.len() > MAX_RECORD_UPDATES {
            for chunk in safe_updates.chunks(MAX_RECORD_UPDATES) {
                let mut rec = blank(false);
                rec.safe_updates = chunk.to_vec();
                records.push(rec);
            }
        } else {
            let mut rec = blank(false);
            rec.safe_updates = safe_updates;
            records.push(rec);
        }
        records
            .last_mut()
            .expect("at least one safe chunk")
            .safe_versions = safe_versions;
        // Unsafe groups, greedily packed onto the tail record. A group
        // is never split (it is one atomic version bump); a group above
        // the chunk limit simply becomes its own oversized record —
        // still far below the response frame limit for any transaction
        // that fit in a request frame.
        for group in unsafe_groups {
            let tail = records.last_mut().expect("non-empty");
            if tail.update_count() + group.len() > MAX_RECORD_UPDATES && tail.update_count() > 0 {
                let mut rec = blank(false);
                rec.unsafe_groups.push(group);
                records.push(rec);
            } else {
                tail.unsafe_groups.push(group);
            }
        }
        self.push_all(records);
    }
}

/// Follower-side state: the engine, per-algorithm history, and the
/// version/record watermarks. See the module docs for the apply
/// contract; wire plumbing (subscribe, reconnect) lives in
/// `risgraph_net::ReplicaServer`.
pub struct Replica {
    engine: Engine<AnyStore>,
    history: Vec<Mutex<HistoryStore>>,
    version: AtomicU64,
    applied_records: AtomicU64,
    leader_version: AtomicU64,
    needs_recompute: AtomicBool,
    /// Held exclusively while a record is applied, so point-in-time
    /// queries never observe a half-applied version group — the
    /// follower twin of the leader's unsafe-phase query gate.
    gate: RwLock<()>,
    /// Growth ceiling, mirroring `ServerConfig::max_capacity`: a feed
    /// record naming a vertex beyond it is corrupt/hostile and is
    /// rejected instead of driving `ensure_capacity` into an
    /// allocation the process cannot survive.
    max_capacity: usize,
}

impl Replica {
    /// A fresh replica maintaining `algorithms` over `backend`.
    /// `max_capacity` bounds on-demand growth exactly like
    /// `ServerConfig::max_capacity` does on the leader.
    pub fn new(
        algorithms: Vec<DynAlgorithm>,
        capacity: usize,
        backend: &BackendKind,
        engine_config: EngineConfig,
        max_capacity: usize,
    ) -> Result<Self> {
        let num_algos = algorithms.len();
        let store = AnyStore::open(
            backend,
            capacity,
            StoreConfig {
                index_threshold: engine_config.index_threshold,
                auto_create_vertices: true,
            },
        )?;
        let engine = Engine::from_store(store, algorithms, engine_config);
        Ok(Replica {
            engine,
            history: (0..num_algos)
                .map(|_| Mutex::new(HistoryStore::new(capacity)))
                .collect(),
            version: AtomicU64::new(0),
            applied_records: AtomicU64::new(0),
            leader_version: AtomicU64::new(0),
            needs_recompute: AtomicBool::new(false),
            gate: RwLock::new(()),
            max_capacity,
        })
    }

    /// Run the deferred post-bootstrap recomputation if one is
    /// pending. Bootstrap records (a leader's recovered WAL prefix)
    /// apply structure only; results are recomputed once — either here
    /// (first query) or when the first live record arrives — instead
    /// of once per bootstrap chunk.
    fn ensure_recomputed(&self) {
        if self.needs_recompute.load(Ordering::Acquire) {
            let _gate = self.gate.write();
            if self.needs_recompute.swap(false, Ordering::AcqRel) {
                self.engine.recompute_all();
            }
        }
    }

    /// The underlying engine (fingerprinting, diagnostics).
    pub fn engine(&self) -> &Engine<AnyStore> {
        &self.engine
    }

    /// Bulk-load the same dataset the leader loaded. Bulk loads are not
    /// WAL-logged on the leader (and therefore not fed), so preload
    /// parity is the deployer's contract — exactly as it is for the
    /// leader's own WAL recovery.
    pub fn load_edges(&self, edges: &[(VertexId, VertexId, u64)]) {
        let _gate = self.gate.write();
        self.engine.load_edges(edges);
    }

    /// Feed records applied so far — the index of the next record this
    /// replica needs, i.e. the `from` of its next subscribe.
    pub fn applied_records(&self) -> u64 {
        self.applied_records.load(Ordering::Acquire)
    }

    /// `get_current_version()` at the applied watermark.
    pub fn current_version(&self) -> VersionId {
        self.version.load(Ordering::Acquire)
    }

    /// Latest leader result version learned from the stream.
    pub fn leader_version(&self) -> u64 {
        self.leader_version.load(Ordering::Acquire)
    }

    /// Record a leader version watermark (heartbeats; monotone).
    pub fn note_leader_version(&self, v: u64) {
        self.leader_version.fetch_max(v, Ordering::AcqRel);
    }

    /// Replication lag in result versions: how far the applied
    /// watermark trails the last leader version heard of.
    pub fn lag(&self) -> u64 {
        self.leader_version().saturating_sub(self.current_version())
    }

    /// Apply one feed record. Returns `Ok(false)` for an
    /// already-applied duplicate (skipped idempotently), `Ok(true)`
    /// when applied; a record *ahead* of the watermark means frames
    /// were lost and surfaces as [`Error::Protocol`] so the follower
    /// resubscribes from [`Replica::applied_records`].
    pub fn apply_record(&self, rec: &FeedRecord) -> Result<bool> {
        let next = self.applied_records.load(Ordering::Acquire);
        if rec.index < next {
            return Ok(false);
        }
        if rec.index > next {
            return Err(Error::Protocol(format!(
                "replication feed gap: expected record {next}, got {}",
                rec.index
            )));
        }
        let _gate = self.gate.write();
        let need = record_capacity(rec);
        if need as usize > self.engine.capacity() {
            // The ceiling gates *growth*, not addressing — exactly the
            // leader's `max_capacity` rule. The leader never publishes
            // such a record (it rejects the update first), so hitting
            // this means the stream is corrupt or hostile.
            if need as usize > self.max_capacity {
                return Err(Error::Corruption(format!(
                    "feed record names vertex {} beyond the replica's max_capacity {}",
                    need - 1,
                    self.max_capacity
                )));
            }
            self.engine.ensure_capacity(need as usize);
        }
        if rec.bootstrap {
            // The leader's own recovery path: structure only, result
            // recomputation deferred to the end of the prefix.
            for u in rec
                .safe_updates
                .iter()
                .chain(rec.unsafe_groups.iter().flatten())
            {
                let _ = self.engine.apply_structure(u);
            }
            self.needs_recompute.store(true, Ordering::Release);
        } else {
            if self.needs_recompute.swap(false, Ordering::AcqRel) {
                self.engine.recompute_all();
            }
            for u in &rec.safe_updates {
                // The leader applied this exact update; failure here
                // means the replica diverged.
                self.engine.apply_structure(u).map_err(|e| {
                    Error::Corruption(format!("replica diverged applying safe {u:?}: {e}"))
                })?;
            }
            let mut version = self.version.load(Ordering::Acquire);
            version += rec.safe_versions;
            let num_algos = self.engine.num_algorithms();
            for group in &rec.unsafe_groups {
                let mut sets: Vec<ChangeSet> = Vec::with_capacity(group.len());
                for u in group {
                    sets.push(self.engine.apply_unsafe(u).map_err(|e| {
                        Error::Corruption(format!("replica diverged applying {u:?}: {e}"))
                    })?);
                }
                version += 1;
                let merged = merge_changesets(sets, num_algos);
                if !merged.is_empty() {
                    for (algo, changes) in merged.per_algo.iter().enumerate() {
                        if !changes.is_empty() {
                            self.history[algo].lock().record(version, changes);
                        }
                    }
                }
            }
            self.version.store(version, Ordering::Release);
        }
        self.applied_records.store(rec.index + 1, Ordering::Release);
        self.note_leader_version(self.version.load(Ordering::Acquire));
        Ok(true)
    }

    /// Install a leader checkpoint snapshot on a **fresh** replica: a
    /// cold follower whose subscribe offset fell below the feed's
    /// retention floor receives the snapshot's structure plus the
    /// resume coordinates `(resume_index, resume_version)` — the feed
    /// index and leader version the snapshot corresponds to — and
    /// continues live from there. The caller buffers the streamed
    /// chunks and installs them in one shot, so a connection lost
    /// mid-bootstrap leaves the replica untouched (still fresh, still
    /// able to resubscribe from 0). A non-fresh replica rejects the
    /// install: its state would double-apply under the snapshot.
    pub fn install_snapshot(
        &self,
        updates: &[Update],
        resume_index: u64,
        resume_version: u64,
    ) -> Result<()> {
        let _gate = self.gate.write();
        if self.applied_records.load(Ordering::Acquire) != 0 {
            return Err(Error::Protocol(
                "snapshot bootstrap on a non-fresh replica".into(),
            ));
        }
        let need = updates
            .iter()
            .map(|u| match u {
                Update::InsEdge(e) | Update::DelEdge(e) => e.src.max(e.dst),
                Update::InsVertex(v) | Update::DelVertex(v) => *v,
            })
            .max()
            .map_or(0, |v| v.saturating_add(1));
        if need as usize > self.engine.capacity() {
            if need as usize > self.max_capacity {
                return Err(Error::Corruption(format!(
                    "snapshot names vertex {} beyond the replica's max_capacity {}",
                    need - 1,
                    self.max_capacity
                )));
            }
            self.engine.ensure_capacity(need as usize);
        }
        for u in updates {
            let _ = self.engine.apply_structure(u);
        }
        self.needs_recompute.store(true, Ordering::Release);
        self.version.store(resume_version, Ordering::Release);
        self.applied_records.store(resume_index, Ordering::Release);
        self.note_leader_version(resume_version);
        Ok(())
    }

    /// Reset this replica to **fresh** state: empty structure, empty
    /// history, version and applied-record watermarks back to 0 — as
    /// if it had just been constructed. The recovery path for a
    /// follower whose subscribe offset fell below the leader feed's
    /// retention floor (`Error::FeedTruncated`): nothing below the
    /// floor will ever be streamed again, so the only way forward is
    /// to re-subscribe at offset 0 and take the snapshot bootstrap —
    /// which [`Replica::install_snapshot`] only permits on a fresh
    /// replica. Edges are removed structure-only (fast path); vertices
    /// go through the incremental unsafe path so every algorithm's
    /// result state is reset alongside the structure.
    pub fn reset(&self) -> Result<()> {
        let _gate = self.gate.write();
        self.needs_recompute.store(false, Ordering::Release);
        // Export order is vertices-then-edges; undo in reverse so
        // every vertex is isolated by the time it is deleted.
        for u in self.engine.export_structure().iter().rev() {
            match u {
                Update::InsEdge(e) => {
                    self.engine.apply_structure(&Update::DelEdge(*e))?;
                }
                Update::InsVertex(v) => {
                    self.engine.apply_unsafe(&Update::DelVertex(*v))?;
                }
                other => {
                    return Err(Error::Corruption(format!(
                        "structure export produced a non-insert update {other:?}"
                    )));
                }
            }
        }
        let capacity = self.engine.capacity();
        for h in &self.history {
            *h.lock() = HistoryStore::new(capacity);
        }
        self.version.store(0, Ordering::Release);
        self.applied_records.store(0, Ordering::Release);
        Ok(())
    }

    fn check_version(&self, version: VersionId) -> Result<()> {
        if version > self.version.load(Ordering::Acquire) {
            return Err(Error::VersionNotFound(version));
        }
        Ok(())
    }

    fn check_vertex(&self, v: VertexId) -> Result<()> {
        if v as usize >= self.engine.capacity() {
            return Err(Error::VertexNotFound(v));
        }
        Ok(())
    }

    /// `get_value(version_id, vertex_id)` at the applied watermark.
    pub fn get_value(&self, algo: usize, version: VersionId, v: VertexId) -> Result<Value> {
        self.ensure_recomputed();
        let _gate = self.gate.read();
        self.check_vertex(v)?;
        self.check_version(version)?;
        let current = self.engine.value(algo, v);
        self.history[algo].lock().value_at(version, v, current)
    }

    /// `get_parent(version_id, vertex_id)` at the applied watermark.
    pub fn get_parent(
        &self,
        algo: usize,
        version: VersionId,
        v: VertexId,
    ) -> Result<Option<risgraph_common::ids::Edge>> {
        self.ensure_recomputed();
        let _gate = self.gate.read();
        self.check_vertex(v)?;
        self.check_version(version)?;
        let current = self.engine.parent(algo, v);
        self.history[algo].lock().parent_at(version, v, current)
    }

    /// `get_modified_vertices(version_id)` at the applied watermark.
    pub fn get_modified_vertices(&self, algo: usize, version: VersionId) -> Result<Vec<VertexId>> {
        self.ensure_recomputed();
        let _gate = self.gate.read();
        self.check_version(version)?;
        self.history[algo].lock().modified_vertices(version)
    }
}

/// One-past the highest vertex id a record touches.
fn record_capacity(rec: &FeedRecord) -> u64 {
    rec.safe_updates
        .iter()
        .chain(rec.unsafe_groups.iter().flatten())
        .map(|u| match u {
            Update::InsEdge(e) | Update::DelEdge(e) => e.src.max(e.dst),
            Update::InsVertex(v) | Update::DelVertex(v) => *v,
        })
        .max()
        .map_or(0, |v| v.saturating_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use risgraph_algorithms::Bfs;
    use risgraph_common::ids::Edge;
    use std::sync::Arc;

    #[test]
    fn feed_indexes_are_dense_and_waitable() {
        let feed = ReplicationFeed::new(2);
        assert!(feed.is_empty());
        feed.append_epoch(vec![Update::InsVertex(1)], 1, vec![]);
        feed.append_epoch(vec![], 0, vec![vec![Update::InsVertex(2)]]);
        assert_eq!(feed.len(), 2);
        assert_eq!(feed.get(0).unwrap().index, 0);
        assert_eq!(feed.get(1).unwrap().index, 1);
        assert!(feed.get(2).is_none());
        assert_eq!(feed.wait_beyond(1, Duration::from_millis(1)), 2);
        assert_eq!(feed.wait_beyond(5, Duration::from_millis(1)), 2);
    }

    #[test]
    fn feed_skips_empty_epochs() {
        let feed = ReplicationFeed::new(1);
        feed.append_epoch(vec![], 0, vec![]);
        assert!(feed.is_empty());
        // An empty transaction still bumps the version and must ship.
        feed.append_epoch(vec![], 0, vec![vec![]]);
        assert_eq!(feed.len(), 1);
        assert_eq!(feed.get(0).unwrap().version_bumps(), 1);
    }

    #[test]
    fn follower_slots_are_bounded() {
        let feed = ReplicationFeed::new(2);
        let a = feed.try_register(0).unwrap();
        let _b = feed.try_register(0).unwrap();
        assert!(feed.try_register(0).is_none());
        feed.unregister(a);
        assert!(feed.try_register(0).is_some());
        assert_eq!(feed.followers(), 2);
    }

    /// Before the first checkpoint nothing is ever evicted (a cold
    /// follower must be able to catch up from index 0); after one,
    /// records below the cut go as soon as no follower pins them.
    #[test]
    fn checkpoint_cut_evicts_passed_records() {
        let feed = ReplicationFeed::new(2);
        for i in 0..4 {
            feed.append_epoch(vec![Update::InsVertex(i)], 1, vec![]);
        }
        assert_eq!((feed.len(), feed.base(), feed.resident()), (4, 0, 4));
        // No followers: the cut alone sets the retention floor.
        feed.set_checkpoint(3, 3);
        assert_eq!((feed.len(), feed.base(), feed.resident()), (4, 3, 1));
        assert!(feed.get(2).is_none(), "evicted");
        assert_eq!(feed.get(3).unwrap().index, 3, "post-cut record retained");
        assert_eq!(feed.checkpoint_cut(), Some((3, 3)));
        // Indexes stay dense across eviction.
        feed.append_epoch(vec![Update::InsVertex(9)], 1, vec![]);
        assert_eq!(feed.get(4).unwrap().index, 4);
    }

    #[test]
    fn follower_watermark_pins_retention() {
        let feed = ReplicationFeed::new(2);
        for i in 0..6 {
            feed.append_epoch(vec![Update::InsVertex(i)], 1, vec![]);
        }
        let slot = feed.try_register(0).unwrap();
        feed.set_checkpoint(5, 5);
        // The registered follower still needs record 0: nothing goes.
        assert_eq!((feed.base(), feed.resident()), (0, 6));
        feed.set_watermark(slot, 4);
        assert_eq!(
            (feed.base(), feed.resident()),
            (4, 2),
            "evicted to min(watermark, cut)"
        );
        // Watermarks are monotone: a stale value cannot resurrect.
        feed.set_watermark(slot, 2);
        assert_eq!(feed.base(), 4);
        // Dropping the follower releases its pin up to the cut.
        feed.unregister(slot);
        assert_eq!((feed.base(), feed.resident()), (5, 1));
    }

    #[test]
    fn oversized_epochs_chunk_at_group_boundaries() {
        let feed = ReplicationFeed::new(1);
        let safe: Vec<Update> = (0..MAX_RECORD_UPDATES as u64 + 10)
            .map(Update::InsVertex)
            .collect();
        let groups: Vec<Vec<Update>> = (0..3)
            .map(|g| vec![Update::InsEdge(Edge::new(g, g + 1, 0)); MAX_RECORD_UPDATES / 2])
            .collect();
        feed.append_epoch(safe.clone(), 7, groups.clone());
        let n = feed.len();
        assert!(n >= 3, "epoch must have been chunked, got {n} records");
        // Reassemble and verify nothing was lost or reordered.
        let mut got_safe = Vec::new();
        let mut got_groups = Vec::new();
        let mut got_versions = 0;
        for i in 0..n {
            let rec = feed.get(i).unwrap();
            assert_eq!(rec.index, i);
            assert!(!rec.bootstrap);
            assert!(
                rec.update_count() <= MAX_RECORD_UPDATES.max(groups[0].len()),
                "record {i} oversized: {}",
                rec.update_count()
            );
            // Safe chunks precede every unsafe group.
            if !rec.safe_updates.is_empty() {
                assert!(got_groups.is_empty(), "safe updates after an unsafe group");
            }
            got_safe.extend(rec.safe_updates.iter().copied());
            got_groups.extend(rec.unsafe_groups.iter().cloned());
            got_versions += rec.safe_versions;
        }
        assert_eq!(got_safe, safe);
        assert_eq!(got_groups, groups);
        assert_eq!(got_versions, 7);
    }

    /// Pump a leader's feed into a replica by hand (no sockets): the
    /// replica's versions, values and per-version history must match
    /// the leader's exactly, and re-applying records must be a no-op.
    #[test]
    fn replica_applies_feed_records_version_exactly() {
        let mut config = crate::server::ServerConfig::default();
        config.engine.threads = 1;
        config.shards = 1;
        config.backend = BackendKind::IaHash;
        config.max_followers = 1;
        let leader =
            crate::server::Server::start(vec![Arc::new(Bfs::new(0)) as DynAlgorithm], 32, config)
                .unwrap();
        let session = leader.session();
        let mut observed: Vec<u64> = Vec::new();
        for u in [
            Update::InsEdge(Edge::new(0, 1, 0)), // unsafe: extends the tree
            Update::InsEdge(Edge::new(1, 2, 0)), // unsafe
            Update::InsEdge(Edge::new(2, 0, 0)), // safe back edge
            Update::InsEdge(Edge::new(0, 2, 0)), // unsafe shortcut
            Update::DelEdge(Edge::new(1, 2, 0)), // unsafe tree delete
        ] {
            let r = session.submit_update(&u);
            assert!(r.outcome.is_ok(), "{u:?}");
            observed.push(r.version);
        }
        let r = session.txn_updates(vec![]);
        assert!(r.outcome.is_ok(), "empty txn bumps the version");
        observed.push(r.version);

        let replica = Replica::new(
            vec![Arc::new(Bfs::new(0)) as DynAlgorithm],
            32,
            &BackendKind::IaHash,
            EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
            1 << 26,
        )
        .unwrap();
        let feed = leader.feed().expect("feed enabled").clone();
        // Replies land before the epoch-end feed publish: wait until
        // the feed covers every version the sessions observed.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let bumps: u64 = (0..feed.len())
                .map(|i| feed.get(i).unwrap().version_bumps())
                .sum();
            if bumps == leader.current_version() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "feed never caught up: {bumps} of {}",
                leader.current_version()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        for i in 0..feed.len() {
            let rec = feed.get(i).unwrap();
            assert!(replica.apply_record(&rec).unwrap());
            assert!(!replica.apply_record(&rec).unwrap(), "duplicate skipped");
        }
        // A gap is a protocol error.
        let gap = FeedRecord {
            index: feed.len() + 5,
            ..FeedRecord::default()
        };
        assert!(matches!(
            replica.apply_record(&gap),
            Err(Error::Protocol(_))
        ));

        assert_eq!(replica.current_version(), leader.current_version());
        assert_eq!(replica.lag(), 0);
        let q = leader.session();
        for &ver in &observed {
            for v in 0..4u64 {
                assert_eq!(
                    replica.get_value(0, ver, v).unwrap(),
                    q.get_value(0, ver, v).unwrap(),
                    "value of {v} at version {ver}"
                );
                assert_eq!(
                    replica.get_parent(0, ver, v).unwrap(),
                    q.get_parent(0, ver, v).unwrap(),
                    "parent of {v} at version {ver}"
                );
            }
            let mut lm = q.get_modified_vertices(0, ver).unwrap();
            let mut rm = replica.get_modified_vertices(0, ver).unwrap();
            lm.sort_unstable();
            rm.sort_unstable();
            assert_eq!(lm, rm, "modified set at version {ver}");
        }
        assert!(matches!(
            replica.get_value(0, replica.current_version() + 1, 0),
            Err(Error::VersionNotFound(_))
        ));
        leader.shutdown();
    }

    /// A bootstrap-only prefix (a WAL-recovered idle leader) must still
    /// serve *recomputed* results: the deferred recompute fires on the
    /// first query, not only on the first live record.
    #[test]
    fn bootstrap_prefix_recomputes_on_first_query() {
        let replica = Replica::new(
            vec![Arc::new(Bfs::new(0)) as DynAlgorithm],
            16,
            &BackendKind::IaHash,
            EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
            1 << 26,
        )
        .unwrap();
        let rec = FeedRecord {
            index: 0,
            bootstrap: true,
            safe_versions: 0,
            safe_updates: vec![
                Update::InsEdge(Edge::new(0, 1, 0)),
                Update::InsEdge(Edge::new(1, 2, 0)),
            ],
            unsafe_groups: vec![],
        };
        assert!(replica.apply_record(&rec).unwrap());
        assert_eq!(replica.current_version(), 0, "bootstrap bumps nothing");
        // No live record ever arrives; the query itself must trigger
        // the recompute.
        assert_eq!(replica.get_value(0, 0, 2).unwrap(), 2, "BFS distance");
        assert_eq!(
            replica.get_parent(0, 0, 2).unwrap(),
            Some(Edge::new(1, 2, 0))
        );
    }

    /// A record naming an absurd vertex id must be rejected as
    /// corruption, not grow the engine into an unsurvivable allocation.
    #[test]
    fn absurd_record_capacity_is_corruption_not_growth() {
        let replica = Replica::new(
            vec![Arc::new(Bfs::new(0)) as DynAlgorithm],
            16,
            &BackendKind::IaHash,
            EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
            1 << 20,
        )
        .unwrap();
        let rec = FeedRecord {
            index: 0,
            bootstrap: false,
            safe_versions: 0,
            safe_updates: vec![],
            unsafe_groups: vec![vec![Update::InsEdge(Edge::new(1 << 60, 0, 0))]],
        };
        assert!(matches!(
            replica.apply_record(&rec),
            Err(Error::Corruption(_))
        ));
        assert_eq!(replica.applied_records(), 0, "nothing applied");
        assert!(replica.engine().capacity() <= 1 << 20, "no runaway growth");
    }
}
