//! The Hybrid Parallel Mode linear classifier (§3.2, Figure 7).
//!
//! Per push iteration the engine chooses between **vertex-parallel**
//! (each worker takes whole active vertices) and **edge-parallel** (the
//! concatenated out-edge ranges of the frontier are split evenly). The
//! paper plots which mode wins as a function of (#active vertices,
//! #out-edges of active vertices) in log-log space and fits a straight
//! line by linear regression; edge-parallel wins above the line (few
//! vertices, many edges — skewed frontiers dominated by hubs).
//!
//! The shipped default parameters mirror the paper's fixed-parameter
//! choice ("we train the classifier based on UK-2007 … and it works well
//! on other graphs"); [`LinearClassifier::fit`] reproduces the training
//! procedure and is exercised by the Figure 7 harness.

/// Parallel mode for one push iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushMode {
    /// One frontier vertex per work item.
    VertexParallel,
    /// Edge ranges split evenly across workers.
    EdgeParallel,
}

/// `edge-parallel ⇔ ln(E) > slope·ln(V) + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearClassifier {
    /// Coefficient on `ln(active_vertices + 1)`.
    pub slope: f64,
    /// Constant offset (natural-log space).
    pub intercept: f64,
}

impl Default for LinearClassifier {
    fn default() -> Self {
        // Edge-parallel when the frontier's average out-degree exceeds
        // ~32 — i.e. few active vertices carrying hub-heavy edge mass,
        // the top-left region of Figure 7.
        LinearClassifier {
            slope: 1.0,
            intercept: (32f64).ln(),
        }
    }
}

impl LinearClassifier {
    /// Decide the mode for a frontier with `active_vertices` members
    /// whose live out-degrees sum to `active_edges`.
    #[inline]
    pub fn choose(&self, active_vertices: usize, active_edges: usize) -> PushMode {
        let lv = ((active_vertices + 1) as f64).ln();
        let le = ((active_edges + 1) as f64).ln();
        if le > self.slope * lv + self.intercept {
            PushMode::EdgeParallel
        } else {
            PushMode::VertexParallel
        }
    }

    /// Fit a separating line by least squares on labelled samples
    /// `(active_vertices, active_edges, edge_parallel_won)` — the
    /// paper's "trained by linear regression".
    ///
    /// We regress `ln(E)` on `ln(V)` separately for the points where
    /// each mode won and place the boundary halfway between the two
    /// fitted lines, which is the standard two-class least-squares
    /// discriminant for this 1-D-per-class setup.
    pub fn fit(samples: &[(usize, usize, bool)]) -> Option<Self> {
        let fit_line = |pts: Vec<(f64, f64)>| -> Option<(f64, f64)> {
            let n = pts.len() as f64;
            if pts.len() < 2 {
                return None;
            }
            let sx: f64 = pts.iter().map(|p| p.0).sum();
            let sy: f64 = pts.iter().map(|p| p.1).sum();
            let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
            let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
            let denom = n * sxx - sx * sx;
            if denom.abs() < 1e-12 {
                return None;
            }
            let slope = (n * sxy - sx * sy) / denom;
            let intercept = (sy - slope * sx) / n;
            Some((slope, intercept))
        };
        let to_log =
            |&(v, e, _): &(usize, usize, bool)| (((v + 1) as f64).ln(), ((e + 1) as f64).ln());
        let edge_pts: Vec<_> = samples.iter().filter(|s| s.2).map(to_log).collect();
        let vert_pts: Vec<_> = samples.iter().filter(|s| !s.2).map(to_log).collect();
        let (es, ei) = fit_line(edge_pts)?;
        let (vs, vi) = fit_line(vert_pts)?;
        Some(LinearClassifier {
            slope: (es + vs) / 2.0,
            intercept: (ei + vi) / 2.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_prefers_vertex_parallel_for_flat_frontiers() {
        let c = LinearClassifier::default();
        // 10K active vertices, avg degree 4 → vertex-parallel.
        assert_eq!(c.choose(10_000, 40_000), PushMode::VertexParallel);
    }

    #[test]
    fn default_prefers_edge_parallel_for_hub_frontiers() {
        let c = LinearClassifier::default();
        // 10 active vertices carrying 1M edges (a hub) → edge-parallel.
        assert_eq!(c.choose(10, 1_000_000), PushMode::EdgeParallel);
    }

    #[test]
    fn empty_frontier_is_vertex_parallel() {
        let c = LinearClassifier::default();
        assert_eq!(c.choose(0, 0), PushMode::VertexParallel);
    }

    #[test]
    fn fit_recovers_a_separating_line() {
        // Synthetic ground truth: edge-parallel wins iff E > 64·V.
        let mut samples = Vec::new();
        for i in 1..200usize {
            let v = i * 50;
            samples.push((v, v * 200, true)); // above: edge wins
            samples.push((v, v * 8, false)); // below: vertex wins
        }
        let c = LinearClassifier::fit(&samples).unwrap();
        // The fitted boundary must classify clearly-separated points
        // correctly.
        assert_eq!(c.choose(1_000, 1_000 * 500), PushMode::EdgeParallel);
        assert_eq!(c.choose(1_000, 1_000 * 2), PushMode::VertexParallel);
    }

    #[test]
    fn fit_requires_both_classes() {
        assert!(LinearClassifier::fit(&[(1, 1, true), (2, 2, true)]).is_none());
        assert!(LinearClassifier::fit(&[]).is_none());
    }
}
