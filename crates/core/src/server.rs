//! The interactive server: sessions, the **epoch loop schema** (§4,
//! Figure 9), the scheduler, history versioning and WAL integration.
//!
//! Architecture (Figure 1, top three tiers):
//!
//! * **Sessions** ([`Session`]) emulate the paper's synchronous users:
//!   each submits one update (or transaction) and waits for the reply
//!   carrying a result-view version id.
//! * The **coordinator thread** runs epoch loops: it gathers pending
//!   updates, classifies each session's queue prefix (stopping at the
//!   first unsafe update — everything behind it is *next-epoch*, §4),
//!   executes all safe updates **in parallel across shards**, then
//!   executes unsafe updates **one by one** (each internally parallel),
//!   consulting the [`Scheduler`] to bound tail latency.
//! * The **sharded safe phase** ([`ServerConfig::shards`]): sessions
//!   are hash-partitioned over `shards` executors (shard 0 is the
//!   coordinator itself; shards `1..N` are dedicated worker threads).
//!   Safe updates commute by construction — they provably change no
//!   result — so each shard drains its partition of the epoch's safe
//!   prefix concurrently with the others, preserving per-session order
//!   because a session maps to exactly one shard. A **barrier** (the
//!   coordinator collects every dispatched shard's outcome) separates
//!   the parallel safe phase from the serial unsafe phase, so the
//!   engine's phase discipline is unchanged. Durability, history,
//!   scheduling and sessions stay centralized on the coordinator:
//!   shards report applied updates and latency counts, the coordinator
//!   merges them into one WAL group-commit record per epoch and one
//!   aggregated scheduler batch.
//! * Per-session order is preserved and each session observes
//!   sequentially consistent behaviour: a session's updates execute in
//!   submission order, and a demoted safe update re-enters its session's
//!   queue front.
//!
//! Durability: every update applied in an epoch — across all shards and
//! the unsafe phase — is appended as **one merged WAL record** at epoch
//! end and fsynced on the group-commit cadence. Each safe-phase update
//! carries a **global application-order stamp** drawn inside the store
//! lock that serializes same-edge operations; the record is the
//! stamp-sorted safe log followed by the serial unsafe groups (whose
//! execution order *is* their record order, every safe stamp preceding
//! them via the shard barrier) — so replay reproduces the cross-shard
//! execution order byte-exactly, even for same-edge count-races across
//! sessions within one epoch. When [`ServerConfig::max_followers`]
//! `> 0`, the same per-epoch record — enriched with its version shape
//! (safe bump count + unsafe version groups) — is also published to
//! the [`ReplicationFeed`] for streaming replicas
//! ([`crate::replication`]). History: every result-changing update records
//! its per-vertex deltas (serial phase only — safe updates change no
//! results); GC runs on released-version watermarks every
//! `gc_interval` (§5: every second).

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use risgraph_common::hash::FxHashMap;
use risgraph_common::ids::{Edge, Update, VersionId, VertexId};
use risgraph_common::metrics::{
    slow_epoch_threshold_from_env, Counter, EpochTracer, Gauge, Phase, Registry, PHASE_COUNT,
};
use risgraph_common::stats::AtomicHistogram;
use risgraph_common::{Error, Result};
use risgraph_storage::{AnyStore, BackendKind, DynamicGraph, StoreConfig};

use crate::engine::{
    ChangeRecord, ChangeSet, DynAlgorithm, Engine, EngineConfig, SafeApply, Safety,
};
use crate::history::HistoryStore;
use crate::replication::ReplicationFeed;
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::tree::{Value, VertexState};
use crate::wal::{read_snapshot, write_snapshot, ResultState, Snapshot, WalWriter};

/// Server construction parameters.
#[derive(Clone)]
pub struct ServerConfig {
    /// Engine tuning.
    pub engine: EngineConfig,
    /// Storage backend (§6.3's comparison matrix): the server
    /// enum-dispatches over [`AnyStore`] so sessions, the WAL and the
    /// history store stay non-generic while any Table 8/9 layout — or
    /// either out-of-core store — serves the same traffic. Defaults to
    /// the `RISGRAPH_STORE` environment variable (any CLI spelling,
    /// e.g. `ooc-mmap`) when set, else IA_Hash.
    pub backend: BackendKind,
    /// Scheduler tuning (latency limit etc.).
    pub scheduler: SchedulerConfig,
    /// Shard executors for the epoch loop's safe phase. `1` keeps the
    /// fully serial coordinator; `N > 1` spawns `N - 1` shard worker
    /// threads and hash-partitions sessions across all `N` executors
    /// (the coordinator drains shard 0 itself). Defaults to the
    /// `RISGRAPH_SHARDS` environment variable when set, else the
    /// machine's available parallelism.
    pub shards: usize,
    /// Enable the write-ahead log at this path (replayed on startup).
    pub wal_path: Option<PathBuf>,
    /// Maintain the history store (versioned snapshots).
    pub enable_history: bool,
    /// History GC cadence (§5: every second).
    pub gc_interval: Duration,
    /// Opt-in periodic history release (§5 fidelity): every interval,
    /// advance every live session's release floor to the version the
    /// server had assigned as of the *previous* tick, so snapshots
    /// older than roughly two intervals become collectable even when
    /// clients never call `release_history` themselves. Sessions must
    /// tolerate `VersionNotFound` for versions older than that window.
    /// `None` (the default) keeps release fully client-driven.
    pub history_release_interval: Option<Duration>,
    /// Coordinator poll timeout while idle.
    pub idle_poll: Duration,
    /// Minimum interval between WAL fsyncs. Group commit batches all
    /// updates applied since the last sync; a per-epoch fsync would
    /// dominate wall time when epochs are small (buffered appends still
    /// happen every epoch — only the `fsync` is paced).
    pub wal_sync_interval: Duration,
    /// Upper bound on safe updates gathered per epoch (backpressure).
    pub max_epoch_updates: usize,
    /// Hard ceiling on the vertex range on-demand capacity growth may
    /// reach: an update addressing a vertex id at or beyond this is
    /// rejected with `VertexNotFound` instead of growing the engine.
    /// Without it, one update naming vertex `2^60` — trivially
    /// craftable over the wire — would drive `ensure_capacity` into a
    /// capacity-overflow panic on the coordinator and take the whole
    /// server down. Bulk loads (`Server::load_edges`) are not subject
    /// to this limit.
    pub max_capacity: usize,
    /// Executors for the epoch loop's unsafe phase. `1` (the default)
    /// keeps the fully serial paper discipline. `N > 1` enables the
    /// optimistic parallel unsafe phase: before executing, every
    /// pending unsafe operation's affected area is probed (a capped
    /// component walk, see `crate::affected::footprint`), the
    /// operations are partitioned into footprint-disjoint conflict
    /// groups, and disjoint groups execute concurrently on the shard
    /// executor threads — with version numbers, replies, history and
    /// the WAL record still assigned in arrival order, so everything
    /// observable (including replication replay) is identical to the
    /// serial phase. Any probe overflow or full-overlap partition
    /// falls back to the serial path for that epoch. Defaults to the
    /// `RISGRAPH_UNSAFE_WORKERS` environment variable when set, else 1.
    pub unsafe_workers: usize,
    /// Probe budget for the parallel unsafe phase: an operation whose
    /// affected-area walk exceeds this many vertices is treated as
    /// conflicting with everything (serial fallback). §7: affected
    /// areas on power-law graphs are tiny, so a small cap admits the
    /// common case while bounding probe cost.
    pub unsafe_footprint_cap: usize,
    /// Replication follower slots. `0` (the default) disables the
    /// replication feed entirely — no records are retained and
    /// `SUBSCRIBE` is refused. `N > 0` publishes every epoch's merged,
    /// stamp-sorted record to an in-memory [`ReplicationFeed`] that up
    /// to `N` followers may stream (`crates/net`'s `SUBSCRIBE` path).
    /// Appending to the feed never blocks on followers, so a slow
    /// follower lags without wedging the epoch loop. Defaults to the
    /// `RISGRAPH_MAX_FOLLOWERS` environment variable when set, else 0.
    pub max_followers: usize,
    /// Rotate the WAL to a fresh segment once the active one reaches
    /// this many bytes. `0` (the default) disables rotation and keeps
    /// the pre-segmentation single-file behaviour; `> 0` also arms the
    /// checkpoint-pressure trigger (a checkpoint fires once enough
    /// sealed segments pile up, pg_walrus's `max_wal_size`
    /// discipline), which truncates segments older than the snapshot.
    /// Defaults to the `RISGRAPH_MAX_WAL_SEGMENT` environment variable
    /// when set, else 0.
    pub max_wal_segment_bytes: u64,
    /// Periodic checkpoint cadence: every interval the coordinator
    /// rotates the log, persists a structure + results snapshot,
    /// truncates pre-snapshot segments and cuts the replication feed's
    /// retention floor. `None` (the default) leaves checkpointing to
    /// the pressure trigger alone (or disables it entirely when
    /// `max_wal_segment_bytes` is also 0). Defaults to the
    /// `RISGRAPH_CHECKPOINT_INTERVAL_MS` environment variable when
    /// set, else `None`.
    pub checkpoint_interval: Option<Duration>,
    /// Slow-epoch tracing threshold: an epoch whose total execution
    /// time (post-gather) reaches this duration is flagged by the
    /// [`EpochTracer`] and retained in the flagged ring with its full
    /// per-phase breakdown, retrievable after the fact via
    /// [`Server::tracer`]. `Duration::ZERO` flags every traced epoch.
    /// Defaults to the `RISGRAPH_TRACE_SLOW_EPOCH_MS` environment
    /// variable when set, else 1000 ms.
    pub trace_slow_epoch: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            engine: EngineConfig::default(),
            backend: BackendKind::from_env(),
            scheduler: SchedulerConfig::default(),
            shards: std::env::var("RISGRAPH_SHARDS")
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|&n: &usize| n >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(4)
                }),
            wal_path: None,
            enable_history: true,
            gc_interval: Duration::from_secs(1),
            history_release_interval: None,
            idle_poll: Duration::from_micros(200),
            wal_sync_interval: Duration::from_millis(2),
            max_epoch_updates: 1 << 16,
            max_capacity: 1 << 26,
            unsafe_workers: std::env::var("RISGRAPH_UNSAFE_WORKERS")
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|&n: &usize| n >= 1)
                .unwrap_or(1),
            unsafe_footprint_cap: 4096,
            max_followers: std::env::var("RISGRAPH_MAX_FOLLOWERS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0),
            max_wal_segment_bytes: std::env::var("RISGRAPH_MAX_WAL_SEGMENT")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0),
            checkpoint_interval: std::env::var("RISGRAPH_CHECKPOINT_INTERVAL_MS")
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|&ms: &u64| ms > 0)
                .map(Duration::from_millis),
            trace_slow_epoch: slow_epoch_threshold_from_env(),
        }
    }
}

/// A submitted operation: one update, or an atomic batch (`txn_updates`).
#[derive(Debug, Clone)]
pub enum Op {
    /// A single vertex/edge update.
    Single(Update),
    /// A write-only transaction: all-or-nothing (§4 "Supporting
    /// Transactions").
    Txn(Vec<Update>),
}

impl Op {
    fn updates(&self) -> &[Update] {
        match self {
            Op::Single(u) => std::slice::from_ref(u),
            Op::Txn(us) => us,
        }
    }

    fn max_vertex(&self) -> u64 {
        max_vertex_of(self.updates())
    }
}

/// One-past the highest vertex id a batch touches (0 when empty) — the
/// capacity the engine must have before applying it.
fn max_vertex_of(updates: &[Update]) -> u64 {
    updates
        .iter()
        .map(|u| match u {
            Update::InsEdge(e) | Update::DelEdge(e) => e.src.max(e.dst),
            Update::InsVertex(v) | Update::DelVertex(v) => *v,
        })
        .max()
        .map_or(0, |v| v.saturating_add(1))
}

/// Apply one replayed record (or the snapshot's structure batch) to
/// the engine: one capacity check per record — an epoch-merged record
/// can hold tens of thousands of updates — then raw structure
/// application. Individual errors (e.g. an update that had failed
/// originally) are skipped.
fn apply_replayed_batch(engine: &Engine<AnyStore>, batch: &[Update]) {
    let need = max_vertex_of(batch);
    if need as usize > engine.capacity() {
        engine.ensure_capacity(need as usize);
    }
    for u in batch {
        let _ = engine.apply_structure(u);
    }
}

/// Engine result state → snapshot wire form (field-for-field; the two
/// structs exist so `crates/core::wal` needn't depend on `tree`).
fn results_to_snapshot(per_algo: Vec<Vec<VertexState>>) -> Vec<Vec<ResultState>> {
    per_algo
        .into_iter()
        .map(|states| {
            states
                .into_iter()
                .map(|s| ResultState {
                    value: s.value,
                    parent_src: s.parent_src,
                    parent_data: s.parent_data,
                })
                .collect()
        })
        .collect()
}

/// Snapshot wire form → engine result state.
fn results_from_snapshot(per_algo: &[Vec<ResultState>]) -> Vec<Vec<VertexState>> {
    per_algo
        .iter()
        .map(|states| {
            states
                .iter()
                .map(|s| VertexState {
                    value: s.value,
                    parent_src: s.parent_src,
                    parent_data: s.parent_data,
                })
                .collect()
        })
        .collect()
}

/// Take a checkpoint: rotate the log onto a fresh segment, persist a
/// snapshot of the full store structure plus per-algorithm results
/// (with the replication-feed cut it corresponds to), truncate every
/// pre-snapshot segment, and move the feed's retention floor to the
/// cut. Crash-safe at every step: until the snapshot rename lands,
/// recovery uses the previous snapshot plus the still-retained
/// segments; once it lands, the older segments are dead weight whether
/// or not the truncation completed.
fn perform_checkpoint(
    shared: &Shared,
    wal: &mut WalWriter,
    feed: Option<&ReplicationFeed>,
) -> Result<()> {
    let start_seg = wal.rotate()?;
    // The cut is taken after this epoch's feed publish (and before any
    // later one — the coordinator is the only publisher), so the
    // exported structure reflects exactly the records below it.
    let (cut_index, cut_version) = match feed {
        Some(f) => (f.len(), shared.version.load(Ordering::Acquire)),
        None => (0, 0),
    };
    let upper_bound = shared.engine.capacity() as u64;
    let snap = Snapshot {
        start_seg,
        cut_index,
        cut_version,
        upper_bound,
        updates: shared.engine.export_structure(),
        results: results_to_snapshot(shared.engine.results_snapshot(upper_bound as usize)),
    };
    write_snapshot(wal.base(), &snap)?;
    wal.truncate_to(start_seg)?;
    if let Some(f) = feed {
        f.set_checkpoint(cut_index, cut_version);
    }
    shared.stats.wal_checkpoints.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Sealed-segment backlog that forces a pressure checkpoint when
/// rotation is enabled — pg_walrus's `max_wal_size` discipline: disk
/// never holds more than about this many segments beyond the snapshot.
const CHECKPOINT_SEGMENT_LAG: u64 = 4;

/// Information returned with every successful update.
#[derive(Debug, Clone, Copy)]
pub struct Applied {
    /// How the update was executed.
    pub safety: Safety,
    /// Number of per-vertex result changes (across all algorithms).
    pub result_changes: usize,
}

/// The reply to a submitted operation.
#[derive(Debug)]
pub struct Reply {
    /// Version id of the result view after this operation.
    pub version: VersionId,
    /// Outcome (errors carry no version semantics: the view is the
    /// version preceding the failed operation).
    pub outcome: Result<Applied>,
}

/// A callback fired after a reply lands in a session's channel, so a
/// reactor-style consumer that cannot park on `recv()` (it is busy in
/// `epoll_wait`) learns there is something to drain. Installed per
/// session via [`Session::set_reply_waker`]; must be cheap and
/// non-blocking (it runs on the epoch loop).
pub type ReplyWaker = Arc<dyn Fn() + Send + Sync>;

struct Envelope {
    session: u64,
    /// Caller-chosen correlation tag, echoed with the reply. The
    /// synchronous [`Session`] API uses 0 (one outstanding op, nothing
    /// to correlate); pipelined callers (the network tier) thread their
    /// request ids through so replies can be matched out of band.
    tag: u64,
    op: Op,
    enqueued: Instant,
    reply: Sender<(u64, Reply)>,
    /// Snapshot of the session's reply waker at submission time, fired
    /// after the reply is sent.
    waker: Option<ReplyWaker>,
}

/// Coordinator-visible counters, sampled by the Figure 11b/12 harnesses.
///
/// Every field is an [`Arc`] handle into the server's metrics
/// [`Registry`] (see [`ServerStats::registered`]), so the same cells
/// back both this struct's named accessors (the byte-compatible
/// `StatsReport` view on the wire) and the schema-less registry
/// snapshot behind the `METRICS` opcode — no double accounting, no
/// field threading. `Arc<Counter>`/`Arc<Gauge>` deref to the same
/// `fetch_add`/`load`/`store` surface as the `AtomicU64`s they
/// replaced, so call sites are unchanged.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Epoch loops completed.
    pub epochs: Arc<Counter>,
    /// Updates executed on the parallel safe path.
    pub safe_executed: Arc<Counter>,
    /// Updates executed on the serial unsafe path.
    pub unsafe_executed: Arc<Counter>,
    /// Safe-phase demotions (revalidation failures).
    pub demotions: Arc<Counter>,
    /// Current scheduler threshold (Figure 12's trace).
    pub threshold: Arc<Gauge>,
    /// Nanoseconds spent in the scheduler/classification bookkeeping.
    pub sched_ns: Arc<Counter>,
    /// Nanoseconds recording history.
    pub history_ns: Arc<Counter>,
    /// Nanoseconds appending + syncing the WAL.
    pub wal_ns: Arc<Counter>,
    /// Nanoseconds envelopes spent queued before execution ("network"
    /// tier in the Figure 11b breakdown).
    pub queue_ns: Arc<Counter>,
    /// Log-bucketed histogram of per-update completion latency
    /// (submission → reply sent), across both safety classes — the
    /// paper's headline metric, queryable as P50/P99/P999 via
    /// [`ServerStats::latency_percentiles_ns`], the CLI `stats`
    /// command, and the wire protocol's STATS opcode.
    pub update_latency: Arc<AtomicHistogram>,
    /// Histogram of unsafe-update waits (submission → start of serial
    /// execution). Its max is the scheduler's side of the latency
    /// contract: bounded by the limit plus at most one epoch.
    pub unsafe_wait: Arc<AtomicHistogram>,
    /// Histogram of whole unsafe-phase durations, one sample per epoch
    /// that executed any unsafe work — the phase-split counterpart of
    /// `update_latency`, and the quantity the parallel unsafe phase
    /// exists to shrink.
    pub unsafe_phase: Arc<AtomicHistogram>,
    /// Conflict groups executed concurrently by the parallel unsafe
    /// phase (0 unless `ServerConfig::unsafe_workers > 1`).
    pub unsafe_parallel_groups: Arc<Counter>,
    /// Epochs where the parallel unsafe phase declined to run — probe
    /// overflow or full overlap — and the serial path executed instead
    /// (counted only when `unsafe_workers > 1` and more than one
    /// unsafe operation was pending, i.e. parallelism was forgone).
    pub unsafe_serial_fallbacks: Arc<Counter>,
    /// Longest epoch execution (post-gather) in nanoseconds — the grace
    /// term in the scheduler's wait bound.
    pub max_epoch_ns: Arc<Gauge>,
    /// Lowest scheduler threshold observed (`u64::MAX` until the first
    /// epoch) — witnesses downward self-adjustment under pressure.
    pub min_threshold: Arc<Gauge>,
    /// WAL records replayed at startup — the restart-cost counter.
    /// With checkpointing active this counts only post-snapshot
    /// records, witnessing that recovery is proportional to the delta
    /// since the last checkpoint rather than to history since genesis.
    pub wal_replayed_records: Arc<Counter>,
    /// Checkpoints taken (snapshot written + old segments truncated +
    /// feed retention cut), including the startup checkpoint after a
    /// recovery.
    pub wal_checkpoints: Arc<Counter>,
}

impl ServerStats {
    /// Stats whose every cell is owned by `registry`, under stable
    /// `core.*` names — the `METRICS` snapshot and the `StatsReport`
    /// wire view read the same memory.
    fn registered(registry: &Registry) -> Self {
        let stats = ServerStats {
            epochs: registry.counter("core.epochs"),
            safe_executed: registry.counter("core.safe_executed"),
            unsafe_executed: registry.counter("core.unsafe_executed"),
            demotions: registry.counter("core.demotions"),
            threshold: registry.gauge("core.threshold"),
            sched_ns: registry.counter("core.sched_ns"),
            history_ns: registry.counter("core.history_ns"),
            wal_ns: registry.counter("core.wal_ns"),
            queue_ns: registry.counter("core.queue_ns"),
            update_latency: registry.histogram("core.update_latency_ns"),
            unsafe_wait: registry.histogram("core.unsafe_wait_ns"),
            unsafe_phase: registry.histogram("core.unsafe_phase_ns"),
            unsafe_parallel_groups: registry.counter("core.unsafe_parallel_groups"),
            unsafe_serial_fallbacks: registry.counter("core.unsafe_serial_fallbacks"),
            max_epoch_ns: registry.gauge("core.max_epoch_ns"),
            min_threshold: registry.gauge("core.min_threshold"),
            wal_replayed_records: registry.counter("wal.replayed_records"),
            wal_checkpoints: registry.counter("wal.checkpoints"),
        };
        stats.min_threshold.store(u64::MAX, Ordering::Relaxed);
        stats
    }

    /// Worst wait (submission → start of execution) of any unsafe
    /// update, in nanoseconds (0 when none executed yet).
    pub fn max_unsafe_wait_ns(&self) -> u64 {
        let max = self.unsafe_wait.max_ns();
        if self.unsafe_wait.count() == 0 {
            0
        } else {
            max
        }
    }

    /// `(p50, p99, p999)` of per-update completion latency in
    /// nanoseconds — read from one snapshot, so the three values are
    /// mutually consistent (monotone) under concurrent recording.
    pub fn latency_percentiles_ns(&self) -> (u64, u64, u64) {
        let snap = self.update_latency.snapshot();
        (
            snap.quantile_ns(0.5),
            snap.quantile_ns(0.99),
            snap.quantile_ns(0.999),
        )
    }

    /// `(p50, p99, p999)` of per-epoch unsafe-phase duration in
    /// nanoseconds, from one snapshot (all zero until an epoch has run
    /// unsafe work).
    pub fn unsafe_phase_percentiles_ns(&self) -> (u64, u64, u64) {
        let snap = self.unsafe_phase.snapshot();
        (
            snap.quantile_ns(0.5),
            snap.quantile_ns(0.99),
            snap.quantile_ns(0.999),
        )
    }
}

struct Shared {
    engine: Engine<AnyStore>,
    history: Vec<Mutex<HistoryStore>>,
    version: AtomicU64,
    injector: Sender<Envelope>,
    shutdown: AtomicBool,
    /// Held exclusively during unsafe execution so point-in-time queries
    /// never observe a half-applied update.
    query_gate: RwLock<()>,
    released: Mutex<FxHashMap<u64, VersionId>>,
    next_session: AtomicU64,
    /// Global application-order stamp for WAL linearization: every
    /// applied update draws one (edge updates inside the store lock
    /// that serializes same-edge operations), and the epoch's merged
    /// WAL record is sorted by it before appending.
    seq: AtomicU64,
    stats: ServerStats,
    /// The unified metrics registry: every `stats` cell, the WAL and
    /// replication-feed gauges, and (via [`Server::metrics`]) whatever
    /// the serving tier registers all live here, snapshot lock-free by
    /// the `METRICS` opcode and the Prometheus exposition.
    metrics: Arc<Registry>,
    /// The epoch-pipeline tracer: per-epoch phase spans in a lock-free
    /// ring, slow epochs flagged and retained separately.
    tracer: Arc<EpochTracer>,
    enable_history: bool,
    /// Set by [`Server::crash`]: exit without the final WAL flush,
    /// simulating power loss of the buffered log tail.
    hard_crash: AtomicBool,
    /// Test hook: force every compensating rollback application to
    /// report failure, so the `Error::Corruption` surfacing path is
    /// exercisable (real inverses essentially never fail).
    #[cfg(test)]
    fail_rollback: AtomicBool,
}

impl Shared {
    fn check_version(&self, version: VersionId) -> Result<()> {
        if version > self.version.load(Ordering::Acquire) {
            return Err(Error::VersionNotFound(version));
        }
        Ok(())
    }
}

/// The RisGraph interactive server.
pub struct Server {
    shared: Arc<Shared>,
    coordinator: Option<std::thread::JoinHandle<()>>,
    shard_workers: Vec<std::thread::JoinHandle<()>>,
    /// The replication feed (present iff `max_followers > 0`).
    feed: Option<Arc<ReplicationFeed>>,
    /// WAL base path, kept for snapshot-bootstrap reads.
    wal_path: Option<PathBuf>,
}

impl Server {
    /// Start a server maintaining `algorithms` with the given capacity.
    /// If a WAL exists at the configured path it is replayed first.
    pub fn start(
        algorithms: Vec<DynAlgorithm>,
        capacity: usize,
        config: ServerConfig,
    ) -> Result<Self> {
        let num_algos = algorithms.len();
        let store = AnyStore::open(
            &config.backend,
            capacity,
            StoreConfig {
                index_threshold: config.engine.index_threshold,
                auto_create_vertices: true,
            },
        )?;
        let engine = Engine::from_store(store, algorithms, config.engine.clone());

        // The registry precedes every subsystem so each can self-register
        // its cells instead of threading fields through by hand.
        let metrics = Arc::new(Registry::new());
        let tracer = Arc::new(EpochTracer::new(config.trace_slow_epoch, &metrics));

        let feed = (config.max_followers > 0)
            .then(|| Arc::new(ReplicationFeed::new(config.max_followers)));
        if let Some(feed) = &feed {
            feed.register_metrics(&metrics);
        }

        let mut wal = None;
        let mut replayed_records: u64 = 0;
        let mut recovered_any = false;
        if let Some(path) = &config.wal_path {
            // Recovery: apply the checkpoint snapshot (structure plus
            // per-algorithm results), replay the retained post-snapshot
            // segments, and recompute only when a tail actually
            // replayed (or the snapshot carried no results). `recover`
            // also physically truncates a torn tail before reopening
            // for append, so records written after this recovery can
            // never land behind leftover garbage.
            let (recovery, writer) = WalWriter::recover(path, config.max_wal_segment_bytes)?;
            replayed_records = recovery.replayed_records;
            let mut bootstrap: Vec<Update> = Vec::new();
            let mut restored_results = false;
            if let Some(snap) = &recovery.snapshot {
                recovered_any = true;
                apply_replayed_batch(&engine, &snap.updates);
                if !snap.results.is_empty() && snap.results.len() == num_algos {
                    engine.restore_results(&results_from_snapshot(&snap.results));
                    restored_results = true;
                }
                bootstrap.extend_from_slice(&snap.updates);
            }
            let had_tail = !recovery.batches.is_empty();
            recovered_any |= had_tail;
            for batch in &recovery.batches {
                apply_replayed_batch(&engine, batch);
            }
            if had_tail || (recovered_any && !restored_results) {
                engine.recompute_all();
            }
            // Re-publish the recovered prefix so a fresh follower can
            // catch up from feed index 0: structure-only bootstrap
            // records (the server itself restarts at version 0 after
            // recovery). The startup checkpoint below immediately cuts
            // these when checkpointing is on, so a snapshot bootstrap
            // replaces the replayed-from-genesis catch-up.
            bootstrap.extend(recovery.batches.into_iter().flatten());
            if !bootstrap.is_empty() {
                if let Some(feed) = &feed {
                    feed.append_bootstrap(bootstrap);
                }
            }
            wal = Some(writer);
        }
        let wal_path = config.wal_path.clone();

        let (tx, rx) = unbounded();
        let shared = Arc::new(Shared {
            engine,
            history: (0..num_algos)
                .map(|_| Mutex::new(HistoryStore::new(capacity)))
                .collect(),
            version: AtomicU64::new(0),
            injector: tx,
            shutdown: AtomicBool::new(false),
            query_gate: RwLock::new(()),
            released: Mutex::new(FxHashMap::default()),
            next_session: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            stats: ServerStats::registered(&metrics),
            metrics,
            tracer,
            enable_history: config.enable_history,
            hard_crash: AtomicBool::new(false),
            #[cfg(test)]
            fail_rollback: AtomicBool::new(false),
        });
        shared
            .stats
            .wal_replayed_records
            .store(replayed_records, Ordering::Relaxed);

        // Startup checkpoint: fold the recovered state into a fresh
        // snapshot so the next restart replays nothing, and cut the
        // feed so the bootstrap records just appended become evictable
        // once followers pass them. Only when checkpointing is on —
        // with it off the log keeps its legacy single-file,
        // replay-from-genesis behaviour byte-for-byte.
        if recovered_any
            && (config.checkpoint_interval.is_some() || config.max_wal_segment_bytes > 0)
        {
            if let Some(w) = wal.as_mut() {
                perform_checkpoint(&shared, w, feed.as_deref())?;
            }
        }

        // Shard executors 1..N; the coordinator itself is executor 0.
        // The safe phase partitions across exactly `config.shards`
        // executors and the parallel unsafe phase across
        // `config.unsafe_workers`, so the pool is sized for the larger
        // of the two — spare workers simply idle during the other
        // phase. Their job senders live in the coordinator, so they
        // exit when the coordinator returns.
        let executors = config.shards.max(1).max(config.unsafe_workers.max(1));
        let mut shards = Vec::new();
        let mut shard_workers = Vec::new();
        for i in 1..executors {
            let (job_tx, job_rx) = unbounded::<ShardJob>();
            let (result_tx, result_rx) = unbounded::<ShardOutcome>();
            let worker_shared = Arc::clone(&shared);
            shard_workers.push(
                std::thread::Builder::new()
                    .name(format!("risgraph-shard-{i}"))
                    .spawn(move || shard_worker_loop(worker_shared, job_rx, result_tx))
                    .expect("spawn shard worker"),
            );
            shards.push(ShardHandle {
                jobs: job_tx,
                results: result_rx,
            });
        }

        let coord_shared = Arc::clone(&shared);
        let coord_feed = feed.clone();
        let coordinator = std::thread::Builder::new()
            .name("risgraph-coordinator".into())
            .spawn(move || coordinator_loop(coord_shared, rx, config, wal, shards, coord_feed))
            .expect("spawn coordinator");
        Ok(Server {
            shared,
            coordinator: Some(coordinator),
            shard_workers,
            feed,
            wal_path,
        })
    }

    /// Bulk-load a graph before serving traffic (initial computation
    /// included). Not logged to the WAL — load from your dataset on
    /// recovery instead.
    pub fn load_edges(&self, edges: &[(VertexId, VertexId, u64)]) {
        self.shared.engine.load_edges(edges);
    }

    /// Open a new session.
    pub fn session(&self) -> Session {
        let id = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
        self.shared.released.lock().insert(id, 0);
        let (reply_tx, reply_rx) = unbounded();
        Session {
            id,
            shared: Arc::clone(&self.shared),
            reply_tx,
            reply_rx,
            waker: Mutex::new(None),
        }
    }

    /// Direct engine access (benchmarks, tests).
    pub fn engine(&self) -> &Engine<AnyStore> {
        &self.shared.engine
    }

    /// Server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// The unified metrics registry — every coordinator/WAL/feed cell,
    /// plus anything outer tiers register (the net tier adds its
    /// per-worker reactor gauges here). Snapshot it for the `METRICS`
    /// opcode or render it for Prometheus exposition.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.shared.metrics
    }

    /// The epoch-pipeline tracer: recent per-epoch phase breakdowns and
    /// the retained slow-epoch ring (threshold
    /// [`ServerConfig::trace_slow_epoch`]).
    pub fn tracer(&self) -> &Arc<EpochTracer> {
        &self.shared.tracer
    }

    /// The replication feed, when enabled
    /// ([`ServerConfig::max_followers`] `> 0`).
    pub fn feed(&self) -> Option<&Arc<ReplicationFeed>> {
        self.feed.as_ref()
    }

    /// The latest checkpoint snapshot, packaged for a fresh follower's
    /// bootstrap: `(structure updates, resume feed index, resume
    /// version)`. Re-reads until the snapshot's embedded feed cut is
    /// at or beyond the feed's retention base — a concurrent
    /// checkpoint atomically replaces the file, so a stale read just
    /// retries against the newer snapshot. `None` when the WAL, the
    /// feed or a snapshot doesn't exist (the caller falls back to
    /// streaming retained feed records).
    pub fn snapshot_for_bootstrap(&self) -> Option<(Vec<Update>, u64, u64)> {
        let path = self.wal_path.as_ref()?;
        let feed = self.feed.as_ref()?;
        for _ in 0..64 {
            let snap = read_snapshot(path).ok()??;
            if snap.cut_index >= feed.base() {
                return Some((snap.updates, snap.cut_index, snap.cut_version));
            }
        }
        None
    }

    /// The latest assigned result version.
    pub fn current_version(&self) -> VersionId {
        self.shared.version.load(Ordering::Acquire)
    }

    /// Memory-resident history deltas across all algorithms: per-vertex
    /// chain entries plus per-version modification lists. The quantity
    /// [`ServerConfig::history_release_interval`] keeps bounded under
    /// churn.
    pub fn history_resident_entries(&self) -> usize {
        self.shared
            .history
            .iter()
            .map(|h| {
                let g = h.lock();
                g.chain_entries() + g.modified_versions()
            })
            .sum()
    }

    /// Stop the coordinator and drain.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    /// Stop the server **without** flushing the buffered WAL tail —
    /// a power-loss simulation for crash-recovery tests. Updates whose
    /// records were still buffered (group commit trades a bounded
    /// durability window for throughput, §5) are lost; replay recovers
    /// the longest clean record prefix.
    pub fn crash(mut self) {
        self.shared.hard_crash.store(true, Ordering::Release);
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.coordinator.take() {
            let _ = h.join();
        }
        // The coordinator's exit dropped the shard job senders, so the
        // workers unblock and return.
        for h in self.shard_workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

/// A client session (an emulated synchronous user, §6.2).
///
/// Two submission disciplines share one reply channel:
///
/// * the **synchronous** Table 1 methods ([`Session::ins_edge`] etc.)
///   submit one op and block for its reply — the paper's emulated
///   synchronous users;
/// * the **pipelined** pair [`Session::submit_tagged`] /
///   [`Session::recv_tagged`] keeps many ops in flight, each stamped
///   with a caller-chosen tag that comes back with its reply. The
///   network tier threads wire request-ids through here. Don't mix the
///   two on one session while tagged ops are in flight — a synchronous
///   call would steal the next tagged reply.
pub struct Session {
    id: u64,
    shared: Arc<Shared>,
    reply_tx: Sender<(u64, Reply)>,
    reply_rx: Receiver<(u64, Reply)>,
    waker: Mutex<Option<ReplyWaker>>,
}

impl Session {
    /// This session's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    fn submit(&self, op: Op) -> Reply {
        if let Err(e) = self.submit_op_tagged(op, 0) {
            return Reply {
                version: self.shared.version.load(Ordering::Acquire),
                outcome: Err(e),
            };
        }
        match self.reply_rx.recv() {
            Ok((_, r)) => r,
            Err(_) => Reply {
                version: self.shared.version.load(Ordering::Acquire),
                outcome: Err(Error::Shutdown),
            },
        }
    }

    /// Enqueue `op` without waiting for its reply. The reply surfaces
    /// through [`Session::recv_tagged`] carrying `tag`; per-session
    /// submission order is preserved by the epoch loop regardless of
    /// how many ops are in flight.
    pub fn submit_op_tagged(&self, op: Op, tag: u64) -> Result<()> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(Error::Shutdown);
        }
        let env = Envelope {
            session: self.id,
            tag,
            op,
            enqueued: Instant::now(),
            reply: self.reply_tx.clone(),
            waker: self.waker.lock().clone(),
        };
        self.shared.injector.send(env).map_err(|_| Error::Shutdown)
    }

    /// [`Session::submit_op_tagged`] for a single update.
    pub fn submit_update_tagged(&self, u: &Update, tag: u64) -> Result<()> {
        self.submit_op_tagged(Op::Single(*u), tag)
    }

    /// Block for the next in-flight reply: `(tag, reply)`.
    pub fn recv_tagged(&self) -> Result<(u64, Reply)> {
        self.reply_rx.recv().map_err(|_| Error::Shutdown)
    }

    /// [`Session::recv_tagged`] with a deadline; `None` on timeout.
    pub fn recv_tagged_timeout(&self, timeout: Duration) -> Option<(u64, Reply)> {
        self.reply_rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking [`Session::recv_tagged`]: `None` when no reply is
    /// ready. The drain half of the waker protocol — see
    /// [`Session::set_reply_waker`].
    pub fn try_recv_tagged(&self) -> Option<(u64, Reply)> {
        self.reply_rx.try_recv().ok()
    }

    /// Install (or clear) this session's [`ReplyWaker`]. Each
    /// subsequent submission snapshots the current waker and fires it
    /// right after its reply is delivered, so an event-loop consumer
    /// can sleep in its poller and drain with
    /// [`Session::try_recv_tagged`] when woken. Wakers may coalesce —
    /// one wake can cover several deliveries — so consumers must drain
    /// until empty.
    pub fn set_reply_waker(&self, waker: Option<ReplyWaker>) {
        *self.waker.lock() = waker;
    }

    /// Submit any [`Update`] through its Table 1 operation — the
    /// one-stop dispatch harnesses use to replay generated streams.
    pub fn submit_update(&self, u: &Update) -> Reply {
        self.submit(Op::Single(*u))
    }

    /// `ins_edge(edge) → version_id` (Table 1).
    pub fn ins_edge(&self, e: Edge) -> Reply {
        self.submit(Op::Single(Update::InsEdge(e)))
    }

    /// `del_edge(edge) → version_id`.
    pub fn del_edge(&self, e: Edge) -> Reply {
        self.submit(Op::Single(Update::DelEdge(e)))
    }

    /// `ins_vertex(vertex_id) → version_id`.
    pub fn ins_vertex(&self, v: VertexId) -> Reply {
        self.submit(Op::Single(Update::InsVertex(v)))
    }

    /// `del_vertex(vertex_id) → version_id`.
    pub fn del_vertex(&self, v: VertexId) -> Reply {
        self.submit(Op::Single(Update::DelVertex(v)))
    }

    /// `txn_updates(updates) → version_id`: an atomic batch.
    pub fn txn_updates(&self, updates: Vec<Update>) -> Reply {
        self.submit(Op::Txn(updates))
    }

    /// `get_value(version_id, vertex_id) → value` for algorithm `algo`.
    pub fn get_value(&self, algo: usize, version: VersionId, v: VertexId) -> Result<Value> {
        let _gate = self.shared.query_gate.read();
        self.check_vertex(v)?;
        self.shared.check_version(version)?;
        let current = self.shared.engine.value(algo, v);
        if !self.shared.enable_history {
            return Ok(current);
        }
        self.shared.history[algo]
            .lock()
            .value_at(version, v, current)
    }

    /// `get_parent(version_id, vertex_id) → edge`.
    pub fn get_parent(&self, algo: usize, version: VersionId, v: VertexId) -> Result<Option<Edge>> {
        let _gate = self.shared.query_gate.read();
        self.check_vertex(v)?;
        self.shared.check_version(version)?;
        let current = self.shared.engine.parent(algo, v);
        if !self.shared.enable_history {
            return Ok(current);
        }
        self.shared.history[algo]
            .lock()
            .parent_at(version, v, current)
    }

    /// Queries address existing state and must never grow it: a vertex
    /// id beyond the engine's range (e.g. probed over the wire) is
    /// simply not found — unchecked engine indexing would panic.
    fn check_vertex(&self, v: VertexId) -> Result<()> {
        if v as usize >= self.shared.engine.capacity() {
            return Err(Error::VertexNotFound(v));
        }
        Ok(())
    }

    /// `get_current_version() → version_id`.
    pub fn get_current_version(&self) -> VersionId {
        self.shared.version.load(Ordering::Acquire)
    }

    /// `get_modified_vertices(version_id) → vertex_ids`.
    pub fn get_modified_vertices(&self, algo: usize, version: VersionId) -> Result<Vec<VertexId>> {
        let _gate = self.shared.query_gate.read();
        self.shared.check_version(version)?;
        self.shared.history[algo].lock().modified_vertices(version)
    }

    /// `release_history(version_id)`: snapshots strictly older than
    /// `version` are no longer needed by this session.
    pub fn release_history(&self, version: VersionId) {
        self.shared.released.lock().insert(self.id, version);
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // A closed session must not hold back GC.
        self.shared.released.lock().remove(&self.id);
    }
}

// ----------------------------------------------------------------------
// Coordinator
// ----------------------------------------------------------------------

pub(crate) fn merge_changesets(sets: Vec<ChangeSet>, num_algos: usize) -> ChangeSet {
    if sets.len() == 1 {
        return sets.into_iter().next().unwrap();
    }
    let mut merged: Vec<FxHashMap<VertexId, ChangeRecord>> =
        (0..num_algos).map(|_| FxHashMap::default()).collect();
    for set in sets {
        for (algo, changes) in set.per_algo.into_iter().enumerate() {
            for c in changes {
                merged[algo]
                    .entry(c.vertex)
                    .and_modify(|prev| {
                        prev.new = c.new;
                        prev.new_parent = c.new_parent;
                    })
                    .or_insert(c);
            }
        }
    }
    ChangeSet {
        per_algo: merged
            .into_iter()
            .map(|m| {
                m.into_values()
                    .filter(|c| c.old != c.new || c.old_parent != c.new_parent)
                    .collect()
            })
            .collect(),
    }
}

fn inverse(u: &Update) -> Update {
    match u {
        Update::InsEdge(e) => Update::DelEdge(*e),
        Update::DelEdge(e) => Update::InsEdge(*e),
        Update::InsVertex(v) => Update::DelVertex(*v),
        Update::DelVertex(v) => Update::InsVertex(*v),
    }
}

struct EpochBuf {
    /// Per-session safe prefixes (executed in-order within a session,
    /// across sessions in parallel).
    safe_groups: Vec<(u64, Vec<Envelope>)>,
    safe_count: usize,
    /// Unsafe updates in arrival order.
    unsafe_queue: VecDeque<Envelope>,
}

/// One unit of work for a shard executor. The coordinator dispatches
/// at most one job per worker per phase and collects exactly one
/// outcome per dispatched job, so the two phases of an epoch (and the
/// two stages of the parallel unsafe phase) never interleave on the
/// channels.
enum ShardJob {
    /// Safe phase: drain a partition of the epoch's safe prefix.
    Safe {
        /// The per-session safe groups this shard owns for the epoch.
        groups: Vec<(u64, Vec<Envelope>)>,
        /// The scheduler's latency limit, for qualified-update counting.
        limit: Duration,
    },
    /// Parallel unsafe phase, stage 1: probe affected areas for a slice
    /// of the pending unsafe operations (read-only store walks).
    Probe {
        /// `(arrival index, the operation's updates)` pairs to probe.
        ops: Vec<(usize, Vec<Update>)>,
        /// The footprint cap ([`ServerConfig::unsafe_footprint_cap`]).
        cap: usize,
    },
    /// Parallel unsafe phase, stage 2: execute whole conflict groups.
    /// Groups on one worker run back-to-back; operations within a group
    /// run in arrival order (they may overlap each other — only
    /// *cross-group* footprints are disjoint).
    Unsafe {
        /// Conflict groups, each a list of `(arrival index, envelope)`
        /// in ascending arrival order.
        groups: Vec<Vec<(usize, Envelope)>>,
    },
}

/// What a shard executor reports at a phase barrier (one per job, same
/// variant).
enum ShardOutcome {
    Safe(SafeOutcome),
    Probe(Vec<(usize, Option<Vec<VertexId>>)>),
    Unsafe(Vec<(usize, UnsafeExec)>),
}

/// One unsafe operation executed by a parallel worker: the envelope
/// travels back so the coordinator can reply in arrival order, with
/// the structural/recompute outcome but **no** version or history side
/// effects — those stay with the coordinator.
struct UnsafeExec {
    env: Envelope,
    result: Result<(Vec<Update>, ChangeSet)>,
}

/// What a shard executor reports for a safe-phase partition.
#[derive(Default)]
struct SafeOutcome {
    /// Updates applied, each with its global application-order stamp
    /// (feeds the epoch's merged, stamp-sorted WAL record).
    applied: Vec<(u64, Update)>,
    /// Operations applied successfully — each bumped the version once
    /// (a safe transaction counts 1 however many updates it carries).
    /// The replication feed ships this as the epoch's safe version-bump
    /// count so a follower's numbering tracks the leader's.
    applied_ops: u64,
    /// Unprocessed per-session suffixes (behind a demotion) to requeue.
    leftovers: Vec<(u64, Vec<Envelope>)>,
    /// Safe updates that completed within the latency limit.
    qualified: u64,
    /// Safe updates served (applied or errored).
    total: u64,
}

/// The coordinator's side of one shard worker: a job channel in, an
/// outcome channel back. Dropping the sender (coordinator exit) stops
/// the worker.
struct ShardHandle {
    jobs: Sender<ShardJob>,
    results: Receiver<ShardOutcome>,
}

fn shard_worker_loop(shared: Arc<Shared>, jobs: Receiver<ShardJob>, results: Sender<ShardOutcome>) {
    while let Ok(job) = jobs.recv() {
        let outcome = run_shard_job(&shared, job);
        if results.send(outcome).is_err() {
            return;
        }
    }
}

/// Execute one dispatched job — shared between the worker threads and
/// the coordinator's own inline slice of each phase.
fn run_shard_job(shared: &Shared, job: ShardJob) -> ShardOutcome {
    match job {
        ShardJob::Safe { groups, limit } => ShardOutcome::Safe(drain_shard(shared, groups, limit)),
        ShardJob::Probe { ops, cap } => ShardOutcome::Probe(
            ops.into_iter()
                .map(|(idx, updates)| {
                    (
                        idx,
                        crate::affected::footprint(&shared.engine, &updates, cap),
                    )
                })
                .collect(),
        ),
        ShardJob::Unsafe { groups } => ShardOutcome::Unsafe(
            groups
                .into_iter()
                .flatten()
                .map(|(idx, env)| {
                    // Sequential propagation: concurrent workers must
                    // never contend for the engine's shared pool, and
                    // disjoint footprints make concurrent sequential
                    // application race-free.
                    let result = apply_unsafe_op(shared, &env, true);
                    (idx, UnsafeExec { env, result })
                })
                .collect(),
        ),
    }
}

/// Serially drain one shard's partition of the epoch's safe prefix.
/// Runs concurrently with the other shards — safe updates commute, and
/// [`Engine::try_apply_safe`] revalidates under the store's own locks —
/// while per-session order holds because a session's whole group lives
/// on one shard. A demotion stops that session's group; the demoted
/// update and the unprocessed suffix go back to the session queue via
/// `leftovers`.
fn drain_shard(shared: &Shared, groups: Vec<(u64, Vec<Envelope>)>, limit: Duration) -> SafeOutcome {
    let mut out = SafeOutcome::default();
    for (sid, group) in groups {
        let mut iter = group.into_iter();
        let mut rest: Vec<Envelope> = Vec::new();
        for env in iter.by_ref() {
            match execute_safe(shared, &env) {
                SafeExec::Applied(updates) => {
                    out.applied.extend(updates);
                    out.applied_ops += 1;
                    let lat = env.enqueued.elapsed();
                    out.total += 1;
                    if lat <= limit {
                        out.qualified += 1;
                    }
                    shared
                        .stats
                        .queue_ns
                        .fetch_add(lat.as_nanos() as u64, Ordering::Relaxed);
                }
                SafeExec::Errored => {
                    out.total += 1;
                }
                SafeExec::Demoted => {
                    shared.stats.demotions.fetch_add(1, Ordering::Relaxed);
                    rest.push(env);
                    break;
                }
            }
        }
        rest.extend(iter);
        if !rest.is_empty() {
            out.leftovers.push((sid, rest));
        }
    }
    out
}

fn coordinator_loop(
    shared: Arc<Shared>,
    rx: Receiver<Envelope>,
    config: ServerConfig,
    mut wal: Option<WalWriter>,
    shards: Vec<ShardHandle>,
    feed: Option<Arc<ReplicationFeed>>,
) {
    run_epochs(&shared, &rx, &config, &mut wal, &shards, feed.as_deref());
    match wal {
        // Power-loss simulation (`Server::crash`): leak the writer so
        // its buffered tail is never flushed; the fd is reclaimed at
        // process exit.
        Some(w) if shared.hard_crash.load(Ordering::Acquire) => std::mem::forget(w),
        // Graceful exit: flush and fsync whatever is still buffered.
        Some(mut w) => {
            let _ = w.sync();
        }
        None => {}
    }
    if !shared.hard_crash.load(Ordering::Acquire) {
        // Graceful drain also flushes the store itself (msync + chain
        // directory on the mmap backend, block writeback on the
        // others) so a clean shutdown leaves no dirty state behind.
        let _ = shared.engine.with_store(|s| s.flush());
    }
}

fn run_epochs(
    shared: &Arc<Shared>,
    rx: &Receiver<Envelope>,
    config: &ServerConfig,
    wal: &mut Option<WalWriter>,
    shards: &[ShardHandle],
    feed: Option<&ReplicationFeed>,
) {
    let mut scheduler = Scheduler::new(config.scheduler.clone());
    // WAL occupancy gauges, refreshed at every epoch end (registered
    // here rather than in `Server::start` because the writer lives on
    // this thread).
    let wal_gauges = wal.as_ref().map(|_| {
        (
            shared.metrics.gauge("wal.active_segment"),
            shared.metrics.gauge("wal.records"),
            shared.metrics.gauge("wal.segment_lag"),
        )
    });
    let mut pending: FxHashMap<u64, VecDeque<Envelope>> = FxHashMap::default();
    let mut last_gc = Instant::now();
    let mut last_wal_sync = Instant::now();
    let mut last_checkpoint = Instant::now();
    // Records in the log at the last checkpoint — a time-triggered
    // checkpoint is skipped while nothing new has been appended.
    let mut records_at_checkpoint = wal.as_ref().map_or(0, |w| w.records());
    let mut last_auto_release = Instant::now();
    // The auto-release floor trails by one tick: versions assigned in
    // the current interval stay readable through the next one.
    let mut auto_release_floor: VersionId = 0;
    shared
        .stats
        .threshold
        .store(scheduler.threshold() as u64, Ordering::Relaxed);

    loop {
        let mut buf = EpochBuf {
            safe_groups: Vec::new(),
            safe_count: 0,
            unsafe_queue: VecDeque::new(),
        };

        // ---- Gather & classify phase -------------------------------
        let mut blocked: std::collections::HashSet<u64> = std::collections::HashSet::new();
        loop {
            // Drain whatever is available without blocking.
            let mut got_any = false;
            while let Ok(env) = rx.try_recv() {
                pending.entry(env.session).or_default().push_back(env);
                got_any = true;
            }

            // Classify session queue prefixes.
            let t_sched = Instant::now();
            for (sid, queue) in pending.iter_mut() {
                if blocked.contains(sid) {
                    continue;
                }
                while let Some(front) = queue.front() {
                    let need = front.op.max_vertex();
                    // The ceiling gates *growth*, not addressing: ids
                    // the engine already has capacity for (a larger
                    // Server::start capacity, a bulk load) stay valid.
                    if need > config.max_capacity as u64 && need as usize > shared.engine.capacity()
                    {
                        // Reject instead of growing: a wire client can
                        // name any vertex id, and unbounded growth is a
                        // coordinator-killing allocation.
                        let env = queue.pop_front().unwrap();
                        send_reply(
                            shared,
                            &env,
                            Reply {
                                version: shared.version.load(Ordering::Acquire),
                                outcome: Err(Error::VertexNotFound(need.saturating_sub(1))),
                            },
                        );
                        continue;
                    }
                    if need as usize > shared.engine.capacity() {
                        shared.engine.ensure_capacity(need as usize);
                    }
                    let safety = match &front.op {
                        Op::Single(u) => shared.engine.classify(u),
                        Op::Txn(us) => shared.engine.classify_txn(us),
                    };
                    match safety {
                        Safety::Safe => {
                            let env = queue.pop_front().unwrap();
                            match buf.safe_groups.iter_mut().find(|(s, _)| s == sid) {
                                Some((_, g)) => g.push(env),
                                None => buf.safe_groups.push((*sid, vec![env])),
                            }
                            buf.safe_count += 1;
                        }
                        Safety::Unsafe => {
                            // First unsafe blocks the session: everything
                            // behind it is next-epoch (§4, Figure 9).
                            buf.unsafe_queue.push_back(queue.pop_front().unwrap());
                            blocked.insert(*sid);
                            break;
                        }
                    }
                }
            }
            shared
                .stats
                .sched_ns
                .fetch_add(t_sched.elapsed().as_nanos() as u64, Ordering::Relaxed);

            let oldest_wait = buf.unsafe_queue.front().map(|e| e.enqueued.elapsed());
            if scheduler.should_flush(oldest_wait, buf.unsafe_queue.len())
                || buf.safe_count >= config.max_epoch_updates
            {
                break;
            }
            if buf.safe_count > 0 || !buf.unsafe_queue.is_empty() {
                // Work gathered and nothing more immediately available:
                // run the epoch rather than idle-wait.
                if !got_any {
                    break;
                }
                continue;
            }
            // Nothing to do: block briefly, watching for shutdown.
            match rx.recv_timeout(config.idle_poll) {
                Ok(env) => {
                    pending.entry(env.session).or_default().push_back(env);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if shared.shutdown.load(Ordering::Acquire)
                        && pending.values().all(|q| q.is_empty())
                    {
                        return;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }

        // ---- Sharded parallel safe phase ---------------------------
        let t_epoch = Instant::now();
        // Per-phase span accumulators for the epoch tracer (gather is
        // excluded: it is dominated by idle waiting, not execution).
        let mut phases = [0u64; PHASE_COUNT];
        let limit = scheduler.latency_limit();
        let mut safe_log: Vec<(u64, Update)> = Vec::new();
        let mut safe_ops: u64 = 0;
        let mut unsafe_groups: Vec<Vec<Update>> = Vec::new();
        let mut shard_counts: Vec<(u64, u64)> = Vec::new();
        if buf.safe_count > 0 {
            // Hash-partition sessions over the *safe-phase* executors:
            // shard 0 is the coordinator itself, shards 1..N the worker
            // threads. The pool may be larger (sized for
            // `unsafe_workers`); the safe partition deliberately stays
            // a function of `config.shards` alone so enabling parallel
            // unsafe execution cannot change safe-phase scheduling.
            let safe_shards = &shards[..config.shards.max(1) - 1];
            let num_shards = safe_shards.len() + 1;
            let mut parts: Vec<Vec<(u64, Vec<Envelope>)>> =
                (0..num_shards).map(|_| Vec::new()).collect();
            for (sid, group) in std::mem::take(&mut buf.safe_groups) {
                parts[(sid % num_shards as u64) as usize].push((sid, group));
            }
            let t_safe = Instant::now();
            let mut dispatched = Vec::new();
            for (i, handle) in safe_shards.iter().enumerate() {
                let part = std::mem::take(&mut parts[i + 1]);
                if !part.is_empty() {
                    handle
                        .jobs
                        .send(ShardJob::Safe {
                            groups: part,
                            limit,
                        })
                        .expect("shard worker alive");
                    dispatched.push(i);
                }
            }
            let mut outcomes = vec![drain_shard(shared, std::mem::take(&mut parts[0]), limit)];
            phases[Phase::SafeExecute as usize] = t_safe.elapsed().as_nanos() as u64;
            // The epoch barrier: every dispatched shard must report
            // before the serial unsafe phase may touch results.
            let t_barrier = Instant::now();
            for i in dispatched {
                match shards[i].results.recv().expect("shard worker alive") {
                    ShardOutcome::Safe(out) => outcomes.push(out),
                    _ => unreachable!("safe job answered with non-safe outcome"),
                }
            }
            phases[Phase::BarrierWait as usize] = t_barrier.elapsed().as_nanos() as u64;
            for outcome in outcomes {
                safe_log.extend(outcome.applied);
                safe_ops += outcome.applied_ops;
                shard_counts.push((outcome.qualified, outcome.total));
                // Requeue demoted suffixes at the front, preserving
                // per-session order.
                for (sid, rest) in outcome.leftovers {
                    let q = pending.entry(sid).or_default();
                    for env in rest.into_iter().rev() {
                        q.push_front(env);
                    }
                }
            }
        }

        // ---- Unsafe phase ------------------------------------------
        let t_unsafe = Instant::now();
        let had_unsafe = !buf.unsafe_queue.is_empty();
        let unsafe_workers = config.unsafe_workers.max(1);
        // Optimistic parallel execution (§7: affected areas are tiny,
        // so pending unsafe operations almost never overlap). Declines
        // — leaving the queue untouched — when probing finds overlap
        // or overflow; the serial path below is the fallback.
        let ran_parallel = unsafe_workers > 1
            && buf.unsafe_queue.len() > 1
            && run_unsafe_parallel(
                shared,
                &mut buf.unsafe_queue,
                &mut unsafe_groups,
                &mut scheduler,
                config,
                shards,
                &mut phases,
            );
        if !ran_parallel && unsafe_workers > 1 && buf.unsafe_queue.len() > 1 {
            // Parallelism was available but declined (overlap or probe
            // overflow). A single pending op counts neither way.
            shared
                .stats
                .unsafe_serial_fallbacks
                .fetch_add(1, Ordering::Relaxed);
        }
        // Serial unsafe phase (the paper's discipline, and the
        // fallback target of the parallel phase).
        let serial_pending = !buf.unsafe_queue.is_empty();
        let t_serial = Instant::now();
        while let Some(env) = buf.unsafe_queue.pop_front() {
            let wait = env.enqueued.elapsed();
            shared.stats.unsafe_wait.record(wait);
            let _gate = shared.query_gate.write();
            let (reply, applied_updates) = execute_unsafe(shared, &env);
            drop(_gate);
            // Serial phase: execution order here *is* stamp order —
            // every safe-phase stamp precedes it (the shard barrier
            // ran), so appending the groups after the sorted safe log
            // reproduces the global application order exactly. Each
            // successful operation is one version group in the
            // replication feed (an empty transaction still bumps the
            // version, so it ships as an empty group).
            if reply.outcome.is_ok() {
                unsafe_groups.push(applied_updates);
            }
            let lat = env.enqueued.elapsed();
            scheduler.record_latency(lat);
            shared
                .stats
                .queue_ns
                .fetch_add(lat.as_nanos() as u64, Ordering::Relaxed);
            shared.stats.unsafe_executed.fetch_add(1, Ordering::Relaxed);
            send_reply(shared, &env, reply);
        }
        if serial_pending {
            phases[Phase::UnsafeExecute as usize] += t_serial.elapsed().as_nanos() as u64;
        }
        if had_unsafe {
            shared.stats.unsafe_phase.record(t_unsafe.elapsed());
        }

        // ---- Epoch end: merged WAL group commit, feed, scheduler ---
        // Sort the safe log by the global application-order stamp
        // (drawn inside the store locks that serialize same-edge
        // operations); unsafe updates executed serially after the shard
        // barrier, so appending their groups in order completes the
        // exact cross-shard execution order.
        safe_log.sort_unstable_by_key(|&(stamp, _)| stamp);
        let safe_updates: Vec<Update> = safe_log.iter().map(|&(_, u)| u).collect();
        if let Some(w) = wal.as_mut() {
            let total = safe_updates.len() + unsafe_groups.iter().map(Vec::len).sum::<usize>();
            if total > 0 {
                let t_wal = Instant::now();
                // Segment rotation fires *inside* `append` when the
                // active segment crosses its budget; the writer's
                // cumulative rotation clock recovers that span.
                let rotate_before = w.rotate_ns();
                // One merged record per epoch, in stamp order, so
                // replaying the record reproduces the cross-shard
                // execution order byte-exactly — even for same-edge
                // count-races across sessions within one epoch.
                let mut updates = Vec::with_capacity(total);
                updates.extend_from_slice(&safe_updates);
                for group in &unsafe_groups {
                    updates.extend_from_slice(group);
                }
                let _ = w.append(&updates);
                // Group commit: fsync at most every wal_sync_interval.
                if last_wal_sync.elapsed() >= config.wal_sync_interval {
                    let _ = w.sync();
                    last_wal_sync = Instant::now();
                }
                let wal_ns = t_wal.elapsed().as_nanos() as u64;
                let rotate_ns = w.rotate_ns() - rotate_before;
                phases[Phase::WalRotate as usize] += rotate_ns;
                phases[Phase::WalAppend as usize] += wal_ns.saturating_sub(rotate_ns);
                shared.stats.wal_ns.fetch_add(wal_ns, Ordering::Relaxed);
            }
        }
        // Publish the epoch to the replication feed (after the WAL
        // append — a follower never holds a record the leader hasn't
        // at least buffered). The append is a lock-push + notify; a
        // slow follower lags behind the feed without ever blocking this
        // loop.
        if let Some(feed) = feed {
            let t_feed = Instant::now();
            feed.append_epoch(safe_updates, safe_ops, std::mem::take(&mut unsafe_groups));
            phases[Phase::FeedPublish as usize] += t_feed.elapsed().as_nanos() as u64;
        }

        // ---- Checkpoint (time- or pressure-triggered) --------------
        // After the feed publish, so the snapshot's embedded cut and
        // the engine state it captures agree. A failed checkpoint is
        // not fatal: the log stays fully usable and the next trigger
        // retries.
        if let Some(w) = wal.as_mut() {
            let due_time = config
                .checkpoint_interval
                .is_some_and(|iv| last_checkpoint.elapsed() >= iv);
            let due_pressure =
                config.max_wal_segment_bytes > 0 && w.segment_lag() >= CHECKPOINT_SEGMENT_LAG;
            if (due_pressure || due_time) && w.records() > records_at_checkpoint {
                let t_ckpt = Instant::now();
                if perform_checkpoint(shared, w, feed).is_ok() {
                    records_at_checkpoint = w.records();
                }
                phases[Phase::WalCheckpoint as usize] += t_ckpt.elapsed().as_nanos() as u64;
                last_checkpoint = Instant::now();
            }
        }
        if let (Some(w), Some((seg, recs, lag))) = (wal.as_ref(), wal_gauges.as_ref()) {
            seg.store(w.active_segment(), Ordering::Relaxed);
            recs.store(w.records(), Ordering::Relaxed);
            lag.store(w.segment_lag(), Ordering::Relaxed);
        }

        // Threshold accounting over the aggregated per-shard counts.
        let t_finalize = Instant::now();
        scheduler.record_shards(shard_counts);
        scheduler.end_epoch();
        shared
            .stats
            .threshold
            .store(scheduler.threshold() as u64, Ordering::Relaxed);
        shared
            .stats
            .min_threshold
            .fetch_min(scheduler.threshold() as u64, Ordering::Relaxed);
        let epoch_no = shared.stats.epochs.fetch_add(1, Ordering::Relaxed) + 1;
        shared
            .stats
            .max_epoch_ns
            .fetch_max(t_epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // Periodic history release (§5: the paper GCs released versions
        // every second). Opt-in: advance every live session's floor to
        // the version watermark of the previous tick, so history stays
        // bounded under churn even when clients never release.
        if let Some(interval) = config.history_release_interval {
            if shared.enable_history && last_auto_release.elapsed() >= interval {
                last_auto_release = Instant::now();
                let floor = auto_release_floor;
                auto_release_floor = shared.version.load(Ordering::Acquire);
                if floor > 0 {
                    let mut released = shared.released.lock();
                    for f in released.values_mut() {
                        *f = (*f).max(floor);
                    }
                }
            }
        }

        if shared.enable_history && last_gc.elapsed() >= config.gc_interval {
            last_gc = Instant::now();
            let t_hist = Instant::now();
            let watermark = {
                let released = shared.released.lock();
                released.values().copied().min().unwrap_or(0)
            };
            if watermark > 0 {
                for h in &shared.history {
                    h.lock().collect(watermark);
                }
            }
            shared
                .stats
                .history_ns
                .fetch_add(t_hist.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        phases[Phase::Finalize as usize] += t_finalize.elapsed().as_nanos() as u64;

        // Trace only epochs that executed work: idle loops would drown
        // the rings and the per-phase histograms in structural zeros.
        if buf.safe_count > 0 || had_unsafe {
            shared.tracer.record(epoch_no, &phases);
        }

        if shared.shutdown.load(Ordering::Acquire)
            && pending.values().all(|q| q.is_empty())
            && rx.is_empty()
        {
            // The final WAL flush (or its deliberate omission under
            // `Server::crash`) happens in `coordinator_loop` once this
            // returns.
            // Close the race where a submit slipped in after the final
            // emptiness check: refuse anything still in flight.
            while let Ok(env) = rx.try_recv() {
                let _ = env.reply.send((
                    env.tag,
                    Reply {
                        version: shared.version.load(Ordering::Acquire),
                        outcome: Err(Error::Shutdown),
                    },
                ));
                if let Some(waker) = &env.waker {
                    waker();
                }
            }
            return;
        }
    }
}

/// The optimistic parallel unsafe phase (the §7 payoff): probe every
/// pending unsafe operation's affected area, partition into
/// footprint-disjoint conflict groups, execute groups concurrently on
/// the shard executors, then finalize — versions, history, feed
/// groups, replies — in arrival order.
///
/// Correctness rests on two facts. (1) A completed footprint walk is
/// closed under adjacency, so everything an operation reads or writes
/// (including failure-detection reads and rollback inverses) stays
/// inside its footprint; disjoint groups therefore neither race nor
/// influence each other's outcomes. (2) Because outcomes are
/// scheduling-independent, replaying the coordinator-side effects in
/// arrival order reproduces the serial phase byte-exactly: the same
/// per-operation version numbers, history records, WAL/feed groups
/// and replies.
///
/// Returns `false` — leaving `queue` untouched for the serial
/// fallback — when any probe overflows the footprint cap or the
/// operations all collapse into one conflict group.
fn run_unsafe_parallel(
    shared: &Arc<Shared>,
    queue: &mut VecDeque<Envelope>,
    unsafe_groups: &mut Vec<Vec<Update>>,
    scheduler: &mut Scheduler,
    config: &ServerConfig,
    shards: &[ShardHandle],
    phases: &mut [u64; PHASE_COUNT],
) -> bool {
    let n = queue.len();
    let workers = (config.unsafe_workers - 1).min(shards.len());
    let cap = config.unsafe_footprint_cap;
    let t_probe = Instant::now();

    // Stage 1: probe affected areas in parallel. Probes are read-only
    // component walks and the structure is quiescent between the safe
    // barrier and the first unsafe application, so no gate is needed.
    let mut chunks: Vec<Vec<(usize, Vec<Update>)>> = (0..workers + 1).map(|_| Vec::new()).collect();
    for (i, env) in queue.iter().enumerate() {
        chunks[i % (workers + 1)].push((i, env.op.updates().to_vec()));
    }
    let mut dispatched = Vec::new();
    for w in 1..workers + 1 {
        let chunk = std::mem::take(&mut chunks[w]);
        if !chunk.is_empty() {
            shards[w - 1]
                .jobs
                .send(ShardJob::Probe { ops: chunk, cap })
                .expect("shard worker alive");
            dispatched.push(w - 1);
        }
    }
    let mut probed = match run_shard_job(
        shared,
        ShardJob::Probe {
            ops: std::mem::take(&mut chunks[0]),
            cap,
        },
    ) {
        ShardOutcome::Probe(r) => r,
        _ => unreachable!("probe job answered with non-probe outcome"),
    };
    for w in dispatched {
        match shards[w].results.recv().expect("shard worker alive") {
            ShardOutcome::Probe(r) => probed.extend(r),
            _ => unreachable!("probe job answered with non-probe outcome"),
        }
    }
    let mut footprints: Vec<Option<Vec<VertexId>>> = (0..n).map(|_| None).collect();
    for (idx, fp) in probed {
        footprints[idx] = fp;
    }
    if footprints.iter().any(Option::is_none) {
        phases[Phase::UnsafeProbe as usize] += t_probe.elapsed().as_nanos() as u64;
        return false; // an unbounded footprint conflicts with everything
    }

    // Conflict grouping: union-find over arrival indices, keyed by the
    // first operation to claim each footprint vertex.
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut parent: Vec<usize> = (0..n).collect();
    let mut owner: FxHashMap<VertexId, usize> = FxHashMap::default();
    for (i, fp) in footprints.iter().enumerate() {
        for &v in fp.as_deref().expect("overflow handled above") {
            if let Some(&first) = owner.get(&v) {
                let (a, b) = (find(&mut parent, first), find(&mut parent, i));
                if a != b {
                    // Root at the smaller index so group identity is
                    // deterministic.
                    parent[a.max(b)] = a.min(b);
                }
            } else {
                owner.insert(v, i);
            }
        }
    }
    let mut by_root: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let r = find(&mut parent, i);
        by_root[r].push(i);
    }
    let groups: Vec<Vec<usize>> = by_root.into_iter().filter(|g| !g.is_empty()).collect();
    let num_groups = groups.len();
    // Probe span covers the footprint walks *and* conflict grouping —
    // the whole admission decision for the parallel phase.
    phases[Phase::UnsafeProbe as usize] += t_probe.elapsed().as_nanos() as u64;
    if num_groups <= 1 {
        return false; // everything overlaps: parallelism buys nothing
    }

    // Committed. The whole phase runs under one exclusive query gate
    // (the serial path gates per operation); waits are recorded here —
    // execution starts now for every pending operation.
    let mut envs: Vec<Option<Envelope>> = queue.drain(..).map(Some).collect();
    for env in envs.iter().flatten() {
        shared.stats.unsafe_wait.record(env.enqueued.elapsed());
    }
    let gate = shared.query_gate.write();
    let t_exec = Instant::now();

    // Stage 2: longest-group-first greedy assignment over the
    // executors (coordinator = executor 0), then execute. Within a
    // group, arrival order; across groups, true concurrency.
    let mut order: Vec<usize> = (0..num_groups).collect();
    order.sort_by_key(|&g| std::cmp::Reverse(groups[g].len()));
    let mut assign: Vec<Vec<Vec<(usize, Envelope)>>> =
        (0..workers + 1).map(|_| Vec::new()).collect();
    let mut load = vec![0usize; workers + 1];
    for g in order {
        let exec = (0..workers + 1)
            .min_by_key(|&e| (load[e], e))
            .expect("at least the coordinator");
        load[exec] += groups[g].len();
        assign[exec].push(
            groups[g]
                .iter()
                .map(|&idx| {
                    (
                        idx,
                        envs[idx].take().expect("each op is in exactly one group"),
                    )
                })
                .collect(),
        );
    }
    let mut dispatched = Vec::new();
    for w in 1..workers + 1 {
        let jobs = std::mem::take(&mut assign[w]);
        if !jobs.is_empty() {
            shards[w - 1]
                .jobs
                .send(ShardJob::Unsafe { groups: jobs })
                .expect("shard worker alive");
            dispatched.push(w - 1);
        }
    }
    let mut execs = match run_shard_job(
        shared,
        ShardJob::Unsafe {
            groups: std::mem::take(&mut assign[0]),
        },
    ) {
        ShardOutcome::Unsafe(r) => r,
        _ => unreachable!("unsafe job answered with non-unsafe outcome"),
    };
    // The phase barrier: every worker must finish before any version
    // is assigned.
    for w in dispatched {
        match shards[w].results.recv().expect("shard worker alive") {
            ShardOutcome::Unsafe(r) => execs.extend(r),
            _ => unreachable!("unsafe job answered with non-unsafe outcome"),
        }
    }
    phases[Phase::UnsafeExecute as usize] += t_exec.elapsed().as_nanos() as u64;
    let t_finalize = Instant::now();

    // Finalize in arrival order — indistinguishable from the serial
    // phase for every observer (clients, history, WAL, replication).
    execs.sort_unstable_by_key(|e| e.0);
    for (_, exec) in execs {
        let UnsafeExec { env, result } = exec;
        let reply = match result {
            Ok((applied, merged)) => {
                let (version, result_changes) = finalize_unsafe(shared, &merged);
                unsafe_groups.push(applied);
                Reply {
                    version,
                    outcome: Ok(Applied {
                        safety: Safety::Unsafe,
                        result_changes,
                    }),
                }
            }
            Err(e) => Reply {
                version: shared.version.load(Ordering::Acquire),
                outcome: Err(e),
            },
        };
        let lat = env.enqueued.elapsed();
        scheduler.record_latency(lat);
        shared
            .stats
            .queue_ns
            .fetch_add(lat.as_nanos() as u64, Ordering::Relaxed);
        shared.stats.unsafe_executed.fetch_add(1, Ordering::Relaxed);
        send_reply(shared, &env, reply);
    }
    phases[Phase::Finalize as usize] += t_finalize.elapsed().as_nanos() as u64;
    drop(gate);
    shared
        .stats
        .unsafe_parallel_groups
        .fetch_add(num_groups as u64, Ordering::Relaxed);
    true
}

/// Record the completion-latency sample, then deliver the reply. The
/// sample lands first so a client holding its reply never reads a
/// histogram missing its own update.
fn send_reply(shared: &Shared, env: &Envelope, reply: Reply) {
    shared.stats.update_latency.record(env.enqueued.elapsed());
    let _ = env.reply.send((env.tag, reply));
    if let Some(waker) = &env.waker {
        waker();
    }
}

enum SafeExec {
    Applied(Vec<(u64, Update)>),
    Errored,
    /// Revalidation failed; the caller still owns the envelope and must
    /// requeue it at its session's front for the unsafe path.
    Demoted,
}

fn execute_safe(shared: &Shared, env: &Envelope) -> SafeExec {
    match &env.op {
        Op::Single(u) => match shared.engine.try_apply_safe_seq(u, &shared.seq) {
            Ok((SafeApply::Applied, stamp)) => {
                let version = shared.version.fetch_add(1, Ordering::AcqRel) + 1;
                // Count before replying so a client that has its reply
                // never reads a stats snapshot missing its own update.
                shared.stats.safe_executed.fetch_add(1, Ordering::Relaxed);
                send_reply(
                    shared,
                    env,
                    Reply {
                        version,
                        outcome: Ok(Applied {
                            safety: Safety::Safe,
                            result_changes: 0,
                        }),
                    },
                );
                SafeExec::Applied(vec![(stamp.expect("applied updates are stamped"), *u)])
            }
            Ok((SafeApply::Demoted, _)) => SafeExec::Demoted,
            Err(e) => {
                send_reply(
                    shared,
                    env,
                    Reply {
                        version: shared.version.load(Ordering::Acquire),
                        outcome: Err(e),
                    },
                );
                SafeExec::Errored
            }
        },
        Op::Txn(updates) => {
            // All-or-nothing: roll back the applied prefix on demotion
            // or error (inverse structural ops restore state exactly —
            // safe updates change nothing else).
            let mut applied: Vec<(u64, Update)> = Vec::with_capacity(updates.len());
            for u in updates {
                match shared.engine.try_apply_safe_seq(u, &shared.seq) {
                    Ok((SafeApply::Applied, stamp)) => {
                        applied.push((stamp.expect("applied updates are stamped"), *u))
                    }
                    Ok((SafeApply::Demoted, _)) => {
                        rollback_structure(shared, &applied);
                        return SafeExec::Demoted;
                    }
                    Err(e) => {
                        rollback_structure(shared, &applied);
                        send_reply(
                            shared,
                            env,
                            Reply {
                                version: shared.version.load(Ordering::Acquire),
                                outcome: Err(e),
                            },
                        );
                        return SafeExec::Errored;
                    }
                }
            }
            let version = shared.version.fetch_add(1, Ordering::AcqRel) + 1;
            shared.stats.safe_executed.fetch_add(1, Ordering::Relaxed);
            send_reply(
                shared,
                env,
                Reply {
                    version,
                    outcome: Ok(Applied {
                        safety: Safety::Safe,
                        result_changes: 0,
                    }),
                },
            );
            SafeExec::Applied(applied)
        }
    }
}

fn rollback_structure(shared: &Shared, applied: &[(u64, Update)]) {
    for (_, u) in applied.iter().rev() {
        let _ = shared.engine.apply_structure(&inverse(u));
    }
}

/// Apply one operation's updates with full recomputation but **no**
/// version, history, feed or reply side effects — the part of unsafe
/// execution that parallel workers may run concurrently on disjoint
/// footprints (`sequential = true` pins pool-free propagation). On a
/// mid-transaction error the applied prefix is undone with
/// compensating inverses; a failing inverse leaves the store matching
/// *no* consistent prefix, so it surfaces as [`Error::Corruption`]
/// (replacing the original error) instead of being swallowed.
fn apply_unsafe_op(
    shared: &Shared,
    env: &Envelope,
    sequential: bool,
) -> Result<(Vec<Update>, ChangeSet)> {
    let num_algos = shared.engine.num_algorithms();
    let updates = env.op.updates();
    let mut applied: Vec<Update> = Vec::with_capacity(updates.len());
    let mut sets: Vec<ChangeSet> = Vec::with_capacity(updates.len());
    for u in updates {
        let need = env.op.max_vertex();
        if need as usize > shared.engine.capacity() {
            // Unreachable in the epoch loop (gather pre-grows capacity
            // for every admitted op) but kept for direct callers; the
            // parallel phase relies on it never firing, and the check
            // itself is a racy read with no side effect when false.
            shared.engine.ensure_capacity(need as usize);
        }
        let outcome = if sequential {
            shared.engine.apply_unsafe_sequential(u)
        } else {
            shared.engine.apply_unsafe(u)
        };
        match outcome {
            Ok(set) => {
                applied.push(*u);
                sets.push(set);
            }
            Err(e) => {
                // Transaction atomicity: undo the applied prefix with
                // inverse updates (recomputing results back).
                rollback_unsafe(shared, &applied, sequential)?;
                return Err(e);
            }
        }
    }
    Ok((applied, merge_changesets(sets, num_algos)))
}

/// Undo an applied prefix with inverse updates, newest first. Any
/// inverse failing is unrecoverable — the store now matches neither
/// the pre-transaction nor any applied-prefix state — and is reported
/// as [`Error::Corruption`].
fn rollback_unsafe(shared: &Shared, applied: &[Update], sequential: bool) -> Result<()> {
    for prev in applied.iter().rev() {
        let inv = inverse(prev);
        #[allow(unused_mut)]
        let mut outcome = if sequential {
            shared.engine.apply_unsafe_sequential(&inv)
        } else {
            shared.engine.apply_unsafe(&inv)
        };
        #[cfg(test)]
        if shared.fail_rollback.load(Ordering::Acquire) {
            outcome = Err(Error::EdgeNotFound(Edge::new(0, 0, 0)));
        }
        if let Err(e) = outcome {
            return Err(Error::Corruption(format!(
                "transaction rollback failed undoing {prev:?}: {e}"
            )));
        }
    }
    Ok(())
}

/// The coordinator-only tail of unsafe execution: assign the next
/// version and record history. Split out so the parallel phase can
/// replay it in arrival order after the workers' barrier.
fn finalize_unsafe(shared: &Shared, merged: &ChangeSet) -> (VersionId, usize) {
    let version = shared.version.fetch_add(1, Ordering::AcqRel) + 1;
    let result_changes = merged.len();
    if shared.enable_history && !merged.is_empty() {
        let t_hist = Instant::now();
        for (algo, changes) in merged.per_algo.iter().enumerate() {
            if !changes.is_empty() {
                shared.history[algo].lock().record(version, changes);
            }
        }
        shared
            .stats
            .history_ns
            .fetch_add(t_hist.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
    (version, result_changes)
}

fn execute_unsafe(shared: &Shared, env: &Envelope) -> (Reply, Vec<Update>) {
    match apply_unsafe_op(shared, env, false) {
        Ok((applied, merged)) => {
            let (version, result_changes) = finalize_unsafe(shared, &merged);
            (
                Reply {
                    version,
                    outcome: Ok(Applied {
                        safety: Safety::Unsafe,
                        result_changes,
                    }),
                },
                applied,
            )
        }
        Err(e) => (
            Reply {
                version: shared.version.load(Ordering::Acquire),
                outcome: Err(e),
            },
            Vec::new(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use risgraph_algorithms::{Bfs, Sssp, Sswp, Wcc};
    use std::sync::Arc as StdArc;

    fn server_with(algs: Vec<DynAlgorithm>, cap: usize) -> Server {
        let mut config = ServerConfig::default();
        config.engine.threads = 4;
        Server::start(algs, cap, config).unwrap()
    }

    fn bfs_server(cap: usize) -> Server {
        server_with(vec![StdArc::new(Bfs::new(0))], cap)
    }

    #[test]
    fn single_session_updates_and_queries() {
        let srv = bfs_server(16);
        srv.load_edges(&[(0, 1, 0)]);
        let s = srv.session();
        let r1 = s.ins_edge(Edge::new(1, 2, 0));
        let a1 = r1.outcome.unwrap();
        assert_eq!(a1.safety, Safety::Unsafe);
        assert_eq!(a1.result_changes, 1);
        assert_eq!(s.get_value(0, r1.version, 2).unwrap(), 2);

        // A safe update gets a fresh version with no modifications.
        let r2 = s.ins_edge(Edge::new(2, 1, 0));
        assert_eq!(r2.outcome.unwrap().safety, Safety::Safe);
        assert!(r2.version > r1.version);
        assert!(s.get_modified_vertices(0, r2.version).unwrap().is_empty());
        assert_eq!(s.get_current_version(), r2.version);
        srv.shutdown();
    }

    #[test]
    fn historical_values_remain_queryable() {
        let srv = bfs_server(16);
        srv.load_edges(&[(0, 1, 0), (1, 2, 0)]);
        let s = srv.session();
        let v_before = s.get_current_version();
        assert_eq!(s.get_value(0, v_before, 2).unwrap(), 2);
        let r = s.ins_edge(Edge::new(0, 2, 0)); // shortcut: dist 2 → 1
        let v_after = r.version;
        assert_eq!(s.get_value(0, v_after, 2).unwrap(), 1);
        // The old snapshot still answers 2.
        assert_eq!(s.get_value(0, v_before, 2).unwrap(), 2);
        assert_eq!(s.get_modified_vertices(0, v_after).unwrap(), vec![2]);
        // Parent history: 2's parent flipped from (1,2) to (0,2).
        assert_eq!(
            s.get_parent(0, v_before, 2).unwrap(),
            Some(Edge::new(1, 2, 0))
        );
        assert_eq!(
            s.get_parent(0, v_after, 2).unwrap(),
            Some(Edge::new(0, 2, 0))
        );
        srv.shutdown();
    }

    #[test]
    fn future_version_queries_fail() {
        let srv = bfs_server(8);
        let s = srv.session();
        assert!(matches!(
            s.get_value(0, 999, 0),
            Err(Error::VersionNotFound(999))
        ));
        srv.shutdown();
    }

    #[test]
    fn transactions_are_atomic() {
        let srv = bfs_server(16);
        srv.load_edges(&[(0, 1, 0)]);
        let s = srv.session();
        // Valid txn: two inserts applied together.
        let r = s.txn_updates(vec![
            Update::InsEdge(Edge::new(1, 2, 0)),
            Update::InsEdge(Edge::new(2, 3, 0)),
        ]);
        assert!(r.outcome.is_ok());
        assert_eq!(s.get_value(0, r.version, 3).unwrap(), 3);
        // Failing txn (second op deletes a missing edge) must undo the
        // first op.
        let r = s.txn_updates(vec![
            Update::InsEdge(Edge::new(3, 4, 0)),
            Update::DelEdge(Edge::new(9, 9, 9)),
        ]);
        assert!(r.outcome.is_err());
        let now = s.get_current_version();
        assert_eq!(
            s.get_value(0, now, 4).unwrap(),
            u64::MAX,
            "rolled-back insert must not be visible"
        );
        assert_eq!(srv.engine().num_edges(), 3);
        srv.shutdown();
    }

    #[test]
    fn many_concurrent_sessions_converge() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let srv = StdArc::new(bfs_server(512));
        // A base path so some updates are safe, some unsafe.
        let base: Vec<(u64, u64, u64)> = (0..64).map(|i| (i, i + 1, 0)).collect();
        srv.load_edges(&base);

        let mut handles = Vec::new();
        let mut all_edges: Vec<Vec<(u64, u64)>> = Vec::new();
        for t in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(t);
            // Pre-generate each session's distinct edge set (disjoint
            // ranges so cross-session deletes can't collide).
            let edges: Vec<(u64, u64)> = (0..60)
                .map(|_| {
                    (
                        100 + t * 40 + rng.gen_range(0..40),
                        100 + t * 40 + rng.gen_range(0..40),
                    )
                })
                .collect();
            all_edges.push(edges.clone());
            let srv = StdArc::clone(&srv);
            handles.push(std::thread::spawn(move || {
                let session = srv.session();
                for &(a, b) in &edges {
                    let r = session.ins_edge(Edge::new(a, b, 0));
                    assert!(r.outcome.is_ok());
                }
                for &(a, b) in &edges {
                    let r = session.del_edge(Edge::new(a, b, 0));
                    assert!(r.outcome.is_ok(), "delete {a}->{b} failed");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // All session edges were inserted then deleted: only the base
        // path remains and BFS distances are intact.
        assert_eq!(srv.engine().num_edges(), 64);
        for i in 0..65u64 {
            assert_eq!(srv.engine().value(0, i), i);
        }
        let stats = srv.stats();
        assert!(stats.epochs.load(Ordering::Relaxed) > 0);
        assert!(stats.safe_executed.load(Ordering::Relaxed) > 0);
        StdArc::try_unwrap(srv).ok().unwrap().shutdown();
    }

    #[test]
    fn session_order_is_preserved_across_safety_classes() {
        let srv = bfs_server(32);
        srv.load_edges(&[(0, 1, 0)]);
        let s = srv.session();
        // unsafe (extends the tree), safe (back edge), unsafe (delete
        // tree edge), executed in order ⇒ final state deterministic.
        let r1 = s.ins_edge(Edge::new(1, 2, 0));
        let r2 = s.ins_edge(Edge::new(2, 1, 0));
        let r3 = s.del_edge(Edge::new(1, 2, 0));
        assert!(r1.version < r2.version && r2.version < r3.version);
        assert_eq!(srv.engine().value(0, 2), u64::MAX);
        assert_eq!(srv.engine().value(0, 1), 1);
        srv.shutdown();
    }

    #[test]
    fn multi_algorithm_server() {
        let srv = server_with(
            vec![
                StdArc::new(Bfs::new(0)),
                StdArc::new(Sssp::new(0)),
                StdArc::new(Sswp::new(0)),
            ],
            32,
        );
        srv.load_edges(&[(0, 1, 3), (1, 2, 4)]);
        let s = srv.session();
        let r = s.ins_edge(Edge::new(0, 2, 10));
        let v = r.version;
        assert_eq!(s.get_value(0, v, 2).unwrap(), 1, "BFS");
        assert_eq!(
            s.get_value(1, v, 2).unwrap(),
            7,
            "SSSP unchanged (3+4 < 10)"
        );
        assert_eq!(s.get_value(2, v, 2).unwrap(), 10, "SSWP widened");
        srv.shutdown();
    }

    #[test]
    fn wcc_server_with_history() {
        let srv = server_with(vec![StdArc::new(Wcc::new())], 32);
        srv.load_edges(&[(1, 2, 0), (3, 4, 0)]);
        let s = srv.session();
        let v0 = s.get_current_version();
        assert_eq!(s.get_value(0, v0, 4).unwrap(), 3);
        let r = s.ins_edge(Edge::new(2, 3, 0));
        assert_eq!(s.get_value(0, r.version, 4).unwrap(), 1);
        assert_eq!(s.get_value(0, v0, 4).unwrap(), 3, "history intact");
        srv.shutdown();
    }

    #[test]
    fn release_history_enables_gc() {
        let mut config = ServerConfig::default();
        config.engine.threads = 2;
        config.gc_interval = Duration::from_millis(1);
        let srv: Server = Server::start(vec![StdArc::new(Bfs::new(0))], 16, config).unwrap();
        srv.load_edges(&[(0, 1, 0)]);
        let s = srv.session();
        let r1 = s.ins_edge(Edge::new(1, 2, 0));
        let r2 = s.ins_edge(Edge::new(0, 2, 0));
        s.release_history(r2.version);
        // Drive epochs until GC runs; old version becomes unreadable.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let _ = s.ins_edge(Edge::new(2, 0, 0)); // safe churn
            std::thread::sleep(Duration::from_millis(2));
            match s.get_value(0, r1.version, 2) {
                Err(Error::VersionNotFound(_)) => break,
                Ok(_) if Instant::now() < deadline => continue,
                other => panic!("GC never happened: {other:?}"),
            }
        }
        // Newer versions still readable.
        assert!(s.get_value(0, r2.version, 2).is_ok());
        srv.shutdown();
    }

    #[test]
    fn wal_recovery_restores_state() {
        let dir = std::env::temp_dir().join("risgraph-server-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("recovery-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut config = ServerConfig::default();
        config.engine.threads = 2;
        config.wal_path = Some(path.clone());
        {
            let srv: Server =
                Server::start(vec![StdArc::new(Bfs::new(0))], 16, config.clone()).unwrap();
            let s = srv.session();
            for (a, b) in [(0u64, 1u64), (1, 2), (2, 3)] {
                assert!(s.ins_edge(Edge::new(a, b, 0)).outcome.is_ok());
            }
            assert!(s.del_edge(Edge::new(2, 3, 0)).outcome.is_ok());
            srv.shutdown();
        }
        // Restart from the log alone.
        let srv: Server = Server::start(vec![StdArc::new(Bfs::new(0))], 16, config).unwrap();
        assert_eq!(srv.engine().num_edges(), 2);
        assert_eq!(srv.engine().value(0, 2), 2);
        assert_eq!(srv.engine().value(0, 3), u64::MAX);
        srv.shutdown();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let srv = bfs_server(16);
        let s = srv.session();
        let r = s.del_edge(Edge::new(5, 6, 0));
        assert!(matches!(r.outcome, Err(Error::EdgeNotFound(_))));
        // The server keeps serving.
        let r = s.ins_edge(Edge::new(0, 1, 0));
        assert!(r.outcome.is_ok());
        srv.shutdown();
    }

    #[test]
    fn vertex_lifecycle_through_sessions() {
        let srv = bfs_server(16);
        let s = srv.session();
        assert!(s.ins_vertex(7).outcome.is_ok());
        assert!(s.ins_vertex(7).outcome.is_err(), "duplicate id");
        assert!(s.ins_edge(Edge::new(7, 8, 0)).outcome.is_ok());
        assert!(s.del_vertex(7).outcome.is_err(), "not isolated");
        assert!(s.del_edge(Edge::new(7, 8, 0)).outcome.is_ok());
        assert!(s.del_vertex(7).outcome.is_ok());
        srv.shutdown();
    }

    #[test]
    fn tagged_pipelining_preserves_session_order() {
        let srv = bfs_server(64);
        srv.load_edges(&[(0, 1, 0)]);
        let s = srv.session();
        // Submit a whole chain without waiting: per-session order must
        // hold, so the final state is deterministic and every tag comes
        // back exactly once.
        let n = 20u64;
        for i in 0..n {
            s.submit_update_tagged(&Update::InsEdge(Edge::new(i + 1, i + 2, 0)), 100 + i)
                .unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        let mut last_version = 0;
        for _ in 0..n {
            let (tag, reply) = s.recv_tagged().unwrap();
            assert!((100..100 + n).contains(&tag), "unexpected tag {tag}");
            assert!(seen.insert(tag), "tag {tag} delivered twice");
            let applied = reply.outcome.unwrap();
            assert_eq!(applied.safety, Safety::Unsafe, "chain extensions");
            assert!(reply.version > last_version, "versions monotone");
            last_version = reply.version;
        }
        // All applied, in order: the chain is fully connected.
        assert_eq!(srv.engine().value(0, n + 1), n + 1);
        srv.shutdown();
    }

    #[test]
    fn completion_latency_histogram_fills() {
        let srv = bfs_server(32);
        srv.load_edges(&[(0, 1, 0)]);
        let s = srv.session();
        for i in 0..32u64 {
            let _ = s.ins_edge(Edge::new(1 + (i % 4), 1 + ((i + 1) % 4), 0));
        }
        let stats = srv.stats();
        assert!(stats.update_latency.count() >= 32, "every update sampled");
        let (p50, p99, p999) = stats.latency_percentiles_ns();
        assert!(p50 > 0 && p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        assert!(p999 <= stats.update_latency.max_ns());
        srv.shutdown();
    }

    #[test]
    fn periodic_history_release_bounds_resident_deltas() {
        let mut config = ServerConfig::default();
        config.engine.threads = 2;
        config.gc_interval = Duration::from_millis(2);
        config.history_release_interval = Some(Duration::from_millis(2));
        let srv: Server = Server::start(vec![StdArc::new(Bfs::new(0))], 16, config).unwrap();
        srv.load_edges(&[(0, 1, 0)]);
        let s = srv.session();
        // Unsafe churn on the same two vertices: every update records a
        // delta, and the session never calls release_history.
        let churn = |rounds: usize| {
            for _ in 0..rounds {
                let _ = s.ins_edge(Edge::new(1, 2, 0));
                let _ = s.del_edge(Edge::new(1, 2, 0));
                std::thread::sleep(Duration::from_micros(200));
            }
        };
        churn(200);
        let early = srv.history_resident_entries();
        churn(600);
        let late = srv.history_resident_entries();
        // 3x more churn must not grow resident deltas 3x: the periodic
        // release keeps them at a churn-rate-proportional plateau.
        assert!(
            late < early * 2 + 64,
            "resident deltas kept growing: {early} → {late}"
        );
        srv.shutdown();
    }

    #[test]
    fn max_capacity_gates_growth_not_addressing() {
        let mut config = ServerConfig::default();
        config.engine.threads = 2;
        config.max_capacity = 16;
        // Started capacity exceeds the growth ceiling: ids below the
        // existing capacity stay fully usable.
        let srv: Server = Server::start(vec![StdArc::new(Bfs::new(0))], 32, config).unwrap();
        srv.load_edges(&[(0, 1, 0)]);
        let s = srv.session();
        let r = s.ins_edge(Edge::new(20, 21, 0));
        assert!(r.outcome.is_ok(), "within existing capacity: {r:?}");
        // Growth beyond the ceiling is rejected, not attempted.
        for u in [
            Update::InsVertex(u64::MAX),
            Update::InsEdge(Edge::new(1 << 60, 0, 0)),
        ] {
            let r = s.submit_update(&u);
            assert!(
                matches!(r.outcome, Err(Error::VertexNotFound(_))),
                "{u:?} must be rejected"
            );
        }
        // The coordinator is alive and serving.
        assert!(s.ins_edge(Edge::new(1, 2, 0)).outcome.is_ok());
        srv.shutdown();
    }

    #[test]
    fn merge_changesets_keeps_first_old_last_new() {
        let a = ChangeSet {
            per_algo: vec![vec![ChangeRecord {
                vertex: 1,
                old: 10,
                new: 5,
                old_parent: None,
                new_parent: Some(Edge::new(0, 1, 0)),
            }]],
        };
        let b = ChangeSet {
            per_algo: vec![vec![ChangeRecord {
                vertex: 1,
                old: 5,
                new: 3,
                old_parent: Some(Edge::new(0, 1, 0)),
                new_parent: Some(Edge::new(2, 1, 0)),
            }]],
        };
        let m = merge_changesets(vec![a, b], 1);
        assert_eq!(m.per_algo[0].len(), 1);
        let c = m.per_algo[0][0];
        assert_eq!((c.old, c.new), (10, 3));
        assert_eq!(c.new_parent, Some(Edge::new(2, 1, 0)));
    }

    #[test]
    fn merge_changesets_drops_net_noops() {
        let a = ChangeSet {
            per_algo: vec![vec![ChangeRecord {
                vertex: 1,
                old: 10,
                new: 5,
                old_parent: None,
                new_parent: None,
            }]],
        };
        let b = ChangeSet {
            per_algo: vec![vec![ChangeRecord {
                vertex: 1,
                old: 5,
                new: 10,
                old_parent: None,
                new_parent: None,
            }]],
        };
        let m = merge_changesets(vec![a, b], 1);
        assert!(m.is_empty(), "insert+delete net effect is nothing");
    }

    /// A failed transaction's rollback normally restores the
    /// pre-transaction state exactly and the original error is
    /// reported.
    #[test]
    fn failed_unsafe_txn_rolls_back_and_reports_cause() {
        let srv = bfs_server(16);
        srv.load_edges(&[(0, 1, 0)]);
        let s = srv.session();
        // InsEdge(1,2) applies (unsafe: improves 2), then DelVertex(0)
        // fails — vertex 0 has incident edges.
        let r = s.txn_updates(vec![
            Update::InsEdge(Edge::new(1, 2, 0)),
            Update::DelVertex(0),
        ]);
        assert!(matches!(r.outcome, Err(Error::VertexNotIsolated(0))));
        // The applied prefix was undone: 2 is unreachable again.
        assert_eq!(srv.engine().value(0, 2), u64::MAX);
        assert_eq!(
            srv.engine().with_store(|st| st.num_edges()),
            1,
            "rollback removed the prefix edge"
        );
        srv.shutdown();
    }

    /// Regression for the silently-discarded compensating
    /// `apply_unsafe(&inverse(..))`: when an inverse itself fails the
    /// store matches no consistent prefix, and the reply must say
    /// `Corruption` — not the (now meaningless) original error.
    #[test]
    fn failed_rollback_surfaces_as_corruption() {
        let srv = bfs_server(16);
        srv.load_edges(&[(0, 1, 0)]);
        srv.shared.fail_rollback.store(true, Ordering::Release);
        let s = srv.session();
        let r = s.txn_updates(vec![
            Update::InsEdge(Edge::new(1, 2, 0)),
            Update::DelVertex(0),
        ]);
        match r.outcome {
            Err(Error::Corruption(msg)) => {
                assert!(
                    msg.contains("rollback"),
                    "corruption names the rollback: {msg}"
                );
            }
            other => panic!("expected Corruption, got {other:?}"),
        }
        srv.shared.fail_rollback.store(false, Ordering::Release);
        srv.shutdown();
    }

    /// The parallel unsafe phase on disjoint single-session traffic:
    /// every reply, version and value must match the serial semantics,
    /// and with truly disjoint regions the parallel-groups counter
    /// engages (single-session synchronous traffic has one op pending
    /// per epoch, so drive two sessions concurrently).
    #[test]
    fn parallel_unsafe_phase_executes_disjoint_groups() {
        let mut config = ServerConfig::default();
        config.engine.threads = 1;
        config.shards = 1;
        config.unsafe_workers = 4;
        let srv = StdArc::new(
            Server::start(vec![StdArc::new(Wcc::new()) as DynAlgorithm], 64, config).unwrap(),
        );
        // Two disjoint chains; del/ins of a chain edge is always unsafe
        // under WCC (splits/merges a component).
        srv.load_edges(&[(0, 1, 0), (1, 2, 0), (10, 11, 0), (11, 12, 0)]);
        std::thread::scope(|scope| {
            for base in [0u64, 10] {
                let srv = StdArc::clone(&srv);
                scope.spawn(move || {
                    let s = srv.session();
                    for _ in 0..40 {
                        let r = s.del_edge(Edge::new(base, base + 1, 0));
                        assert!(r.outcome.is_ok());
                        let r = s.ins_edge(Edge::new(base, base + 1, 0));
                        assert!(r.outcome.is_ok());
                    }
                });
            }
        });
        let s = srv.session();
        let v = s.get_current_version();
        assert_eq!(v, 160, "every op bumped the version exactly once");
        // Final state: both chains intact (WCC labels are the chain
        // minima).
        assert_eq!(srv.engine().value(0, 2), 0);
        assert_eq!(srv.engine().value(0, 12), 10);
        let stats = srv.stats();
        assert_eq!(
            stats.unsafe_executed.load(Ordering::Relaxed),
            160,
            "all ops were unsafe"
        );
        // Concurrent sessions mean at least some epochs held two
        // pending disjoint ops; those must have run in parallel groups.
        // (Timing-dependent epochs with one op run serially without
        // counting as fallbacks.)
        let groups = stats.unsafe_parallel_groups.load(Ordering::Relaxed);
        let fallbacks = stats.unsafe_serial_fallbacks.load(Ordering::Relaxed);
        assert_eq!(
            fallbacks, 0,
            "disjoint regions never overlap, so no epoch may fall back"
        );
        assert!(
            groups.is_multiple_of(2),
            "disjoint two-session groups come in pairs"
        );
        assert!(
            stats.unsafe_phase.count() > 0,
            "unsafe-phase histogram records each epoch with unsafe work"
        );
        StdArc::try_unwrap(srv).ok().unwrap().shutdown();
    }
}
