//! The **history store** (§2, §5): versioned result snapshots.
//!
//! "The history store consists of a doubly-linked list from new versions
//! to old versions for each vertex, and sparse arrays for each version
//! to trace modifications of the results" (§5). Every mutating call of
//! the Interactive API returns a `version_id`; `get_value(version, v)`
//! and `get_parent(version, v)` answer point-in-time queries, and
//! `get_modified_vertices(version)` lists what a version changed.
//!
//! Our per-vertex chains are append-ordered vectors of
//! `(version, value, parent)` entries — semantically the paper's version
//! chains, with binary search instead of pointer chasing. Garbage
//! collection follows §5: a watermark derived from every session's
//! released versions makes older snapshots unreadable immediately
//! (sparse arrays are recycled eagerly), while per-vertex chains are
//! trimmed lazily on the vertex's next write.

use risgraph_common::hash::FxHashMap;
use risgraph_common::ids::{Edge, VersionId, VertexId};
use risgraph_common::{Error, Result};

use crate::engine::ChangeRecord;
use crate::tree::Value;

/// One chain entry: the state of a vertex as of `version` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChainEntry {
    version: VersionId,
    value: Value,
    parent: Option<Edge>,
}

/// Versioned history for one algorithm.
pub struct HistoryStore {
    chains: Vec<Vec<ChainEntry>>,
    /// `version → modified vertex ids` (the per-version sparse arrays).
    modified: FxHashMap<VersionId, Vec<VertexId>>,
    /// Versions `< low_watermark` are garbage (unreadable).
    low_watermark: VersionId,
    /// Count of chain entries, for memory accounting.
    entries: usize,
}

impl HistoryStore {
    /// An empty history over `capacity` vertices.
    pub fn new(capacity: usize) -> Self {
        HistoryStore {
            chains: vec![Vec::new(); capacity],
            modified: FxHashMap::default(),
            low_watermark: 0,
            entries: 0,
        }
    }

    /// Grow the vertex range.
    pub fn ensure_capacity(&mut self, n: usize) {
        if n > self.chains.len() {
            self.chains
                .resize(n.next_power_of_two().max(16), Vec::new());
        }
    }

    /// Record the changes of `version`. Chains get a baseline entry on
    /// first touch so pre-change queries stay answerable, and are
    /// lazily trimmed to the GC watermark (§5's lazy chain GC).
    pub fn record(&mut self, version: VersionId, changes: &[ChangeRecord]) {
        if changes.is_empty() {
            return;
        }
        let mut modified = Vec::with_capacity(changes.len());
        for c in changes {
            self.ensure_capacity(c.vertex as usize + 1);
            let chain = &mut self.chains[c.vertex as usize];
            // Lazy GC: drop entries superseded before the watermark,
            // keeping the newest one at/below it as the new baseline.
            if self.low_watermark > 0 && chain.len() > 1 {
                let keep_from = chain
                    .partition_point(|e| e.version < self.low_watermark)
                    .saturating_sub(1);
                if keep_from > 0 {
                    chain.drain(..keep_from);
                    self.entries -= keep_from;
                }
            }
            if chain.is_empty() {
                // Baseline: the state before this version, effective
                // since the beginning of readable history.
                chain.push(ChainEntry {
                    version: 0,
                    value: c.old,
                    parent: c.old_parent,
                });
                self.entries += 1;
            }
            debug_assert!(chain.last().unwrap().version < version);
            chain.push(ChainEntry {
                version,
                value: c.new,
                parent: c.new_parent,
            });
            self.entries += 1;
            modified.push(c.vertex);
        }
        self.modified.insert(version, modified);
    }

    fn lookup(&self, version: VersionId, v: VertexId) -> Result<Option<ChainEntry>> {
        if version < self.low_watermark {
            return Err(Error::VersionNotFound(version));
        }
        let Some(chain) = self.chains.get(v as usize) else {
            return Ok(None);
        };
        let idx = chain.partition_point(|e| e.version <= version);
        Ok(if idx == 0 { None } else { Some(chain[idx - 1]) })
    }

    /// Value of `v` as of `version`; `current` supplies the live value
    /// for vertices whose chain has no entry at/below `version` — which
    /// only happens when the vertex never changed within readable
    /// history *after* that point, i.e. its value at `version` equals
    /// the oldest recorded baseline, or the live value when the chain is
    /// empty.
    pub fn value_at(&self, version: VersionId, v: VertexId, current: Value) -> Result<Value> {
        match self.lookup(version, v)? {
            Some(e) => Ok(e.value),
            None => {
                // No entry ≤ version. If the chain is non-empty its first
                // entry is the pre-history baseline (version 0), so this
                // branch means the chain is empty: value never changed.
                Ok(self
                    .chains
                    .get(v as usize)
                    .and_then(|c| c.first())
                    .map(|e| e.value)
                    .unwrap_or(current))
            }
        }
    }

    /// Dependency-tree parent of `v` as of `version` (`current` as for
    /// [`Self::value_at`]).
    pub fn parent_at(
        &self,
        version: VersionId,
        v: VertexId,
        current: Option<Edge>,
    ) -> Result<Option<Edge>> {
        match self.lookup(version, v)? {
            Some(e) => Ok(e.parent),
            None => Ok(self
                .chains
                .get(v as usize)
                .and_then(|c| c.first())
                .map(|e| e.parent)
                .unwrap_or(current)),
        }
    }

    /// Vertices modified by exactly `version` (empty for versions that
    /// changed nothing, e.g. safe updates).
    pub fn modified_vertices(&self, version: VersionId) -> Result<Vec<VertexId>> {
        if version < self.low_watermark {
            return Err(Error::VersionNotFound(version));
        }
        Ok(self.modified.get(&version).cloned().unwrap_or_default())
    }

    /// Advance the GC watermark: versions `< watermark` become
    /// unreadable, their sparse arrays are recycled eagerly (§5:
    /// "aggressively recycles them from sparse arrays"), chains shrink
    /// lazily on next write.
    pub fn collect(&mut self, watermark: VersionId) {
        if watermark <= self.low_watermark {
            return;
        }
        self.low_watermark = watermark;
        self.modified.retain(|&v, _| v >= watermark);
    }

    /// The current GC watermark.
    pub fn watermark(&self) -> VersionId {
        self.low_watermark
    }

    /// Total chain entries (diagnostics).
    pub fn chain_entries(&self) -> usize {
        self.entries
    }

    /// Number of versions still holding a memory-resident modification
    /// list (shrinks eagerly when GC advances the watermark).
    pub fn modified_versions(&self) -> usize {
        self.modified.len()
    }

    /// Approximate heap bytes.
    pub fn memory_bytes(&self) -> usize {
        self.chains.capacity() * std::mem::size_of::<Vec<ChainEntry>>()
            + self.entries * std::mem::size_of::<ChainEntry>()
            + self
                .modified
                .values()
                .map(|v| v.capacity() * 8 + 32)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(vertex: VertexId, old: Value, new: Value) -> ChangeRecord {
        ChangeRecord {
            vertex,
            old,
            new,
            old_parent: None,
            new_parent: Some(Edge::new(0, vertex, 7)),
        }
    }

    #[test]
    fn value_at_walks_versions() {
        let mut h = HistoryStore::new(8);
        h.record(5, &[rec(1, 100, 50)]);
        h.record(9, &[rec(1, 50, 25)]);
        // Before first change: baseline.
        assert_eq!(h.value_at(1, 1, 999).unwrap(), 100);
        assert_eq!(h.value_at(4, 1, 999).unwrap(), 100);
        // At and after each change.
        assert_eq!(h.value_at(5, 1, 999).unwrap(), 50);
        assert_eq!(h.value_at(8, 1, 999).unwrap(), 50);
        assert_eq!(h.value_at(9, 1, 999).unwrap(), 25);
        assert_eq!(h.value_at(100, 1, 999).unwrap(), 25);
    }

    #[test]
    fn untouched_vertices_return_current() {
        let h = HistoryStore::new(8);
        assert_eq!(h.value_at(3, 7, 42).unwrap(), 42);
        assert_eq!(h.parent_at(3, 7, None).unwrap(), None);
    }

    #[test]
    fn parent_history_tracked() {
        let mut h = HistoryStore::new(8);
        h.record(5, &[rec(1, 100, 50)]);
        assert_eq!(h.parent_at(2, 1, None).unwrap(), None);
        assert_eq!(h.parent_at(5, 1, None).unwrap(), Some(Edge::new(0, 1, 7)));
    }

    #[test]
    fn modified_vertices_per_version() {
        let mut h = HistoryStore::new(8);
        h.record(5, &[rec(1, 9, 8), rec(2, 9, 7)]);
        h.record(6, &[rec(3, 9, 6)]);
        assert_eq!(h.modified_vertices(5).unwrap(), vec![1, 2]);
        assert_eq!(h.modified_vertices(6).unwrap(), vec![3]);
        assert!(h.modified_vertices(7).unwrap().is_empty());
    }

    #[test]
    fn gc_makes_old_versions_unreadable() {
        let mut h = HistoryStore::new(8);
        h.record(5, &[rec(1, 100, 50)]);
        h.record(9, &[rec(1, 50, 25)]);
        h.collect(9);
        assert!(matches!(
            h.value_at(5, 1, 0),
            Err(Error::VersionNotFound(5))
        ));
        assert!(matches!(
            h.modified_vertices(5),
            Err(Error::VersionNotFound(5))
        ));
        assert_eq!(h.value_at(9, 1, 0).unwrap(), 25);
        assert_eq!(h.value_at(20, 1, 0).unwrap(), 25);
    }

    #[test]
    fn lazy_chain_trim_on_next_write() {
        let mut h = HistoryStore::new(8);
        for i in 1..=10u64 {
            h.record(i, &[rec(1, 100 - i + 1, 100 - i)]);
        }
        let before = h.chain_entries();
        h.collect(8);
        // Chains untouched until the vertex is written again.
        assert_eq!(h.chain_entries(), before);
        h.record(11, &[rec(1, 90, 89)]);
        assert!(
            h.chain_entries() < before,
            "chain should have been trimmed lazily"
        );
        // Queries at/after the watermark still correct.
        assert_eq!(h.value_at(8, 1, 0).unwrap(), 92);
        assert_eq!(h.value_at(11, 1, 0).unwrap(), 89);
    }

    #[test]
    fn gc_watermark_monotone() {
        let mut h = HistoryStore::new(4);
        h.collect(5);
        h.collect(3); // ignored: watermark never regresses
        assert_eq!(h.watermark(), 5);
    }

    #[test]
    fn empty_changes_record_nothing() {
        let mut h = HistoryStore::new(4);
        h.record(5, &[]);
        assert!(h.modified_vertices(5).unwrap().is_empty());
        assert_eq!(h.chain_entries(), 0);
    }

    #[test]
    fn capacity_grows_on_demand() {
        let mut h = HistoryStore::new(1);
        h.record(2, &[rec(1000, 5, 4)]);
        assert_eq!(h.value_at(2, 1000, 0).unwrap(), 4);
        assert_eq!(h.value_at(1, 1000, 0).unwrap(), 5);
    }
}
