//! Write-ahead logging (§2: "Optionally, RisGraph provides durability
//! with write-ahead logs (WAL)") — segmented, checkpointed, and
//! truncated so restart cost is proportional to the delta since the
//! last checkpoint, not since genesis.
//!
//! # On-disk layout
//!
//! The WAL path given to the server (`<wal>`) holds a tiny CRC'd
//! **manifest** (magic `RISWALM1`) naming the first and active
//! **segments**; the records themselves live in `<wal>.seg-NNNNNNNN`
//! files. A pre-segmentation single-file log is migrated on open by
//! renaming it to segment 0. Checkpoints write a **snapshot**
//! (`<wal>.snapshot`, magic `RISSNAP1`) carrying the full store
//! structure as a synthetic update batch plus every algorithm's
//! dependency-tree result state; segments older than the snapshot are
//! deleted and the manifest's first segment advances.
//!
//! Record layout within a segment: `[len: u32 LE][crc32: u32 LE]
//! [payload]`, where the payload encodes one update batch. The server
//! writes **one merged record per epoch** — every shard's safe-phase
//! log plus the serial unsafe updates, sorted by a global
//! application-order stamp drawn inside the store's per-edge
//! serialization, so the record is the *actual* execution order (not
//! merely a valid linearization). Epochs larger than
//! [`MAX_WAL_RECORD_UPDATES`] are split across records (never silently
//! truncating the `u32` header fields), so recovery granularity is the
//! record, which is the epoch whenever the epoch fits.
//!
//! # Recovery contract
//!
//! [`WalWriter::recover`] replays the snapshot (if any) plus every
//! retained segment, stops at the first torn or corrupt record, and —
//! crucially — **physically truncates** the damaged segment to the end
//! of the last valid record (and deletes any later segments) before
//! reopening for append. Without the truncation, records appended
//! after a crash-recovery would land *behind* the garbage tail and be
//! silently lost on the next restart. Directory entries are fsynced on
//! create/rotate so a freshly created segment cannot vanish with a
//! power cut.
//!
//! Flushing follows the epoch loop's group-commit: `append` buffers,
//! [`WalWriter::sync`] flushes and fsyncs on the group-commit cadence
//! (Figure 11b charges 14.0% of wall time to WAL, which the breakdown
//! bench reproduces).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use risgraph_common::crc::crc32;
use risgraph_common::ids::{Edge, Update};
use risgraph_common::{Error, Result};

const TAG_INS_EDGE: u8 = 1;
const TAG_DEL_EDGE: u8 = 2;
const TAG_INS_VERTEX: u8 = 3;
const TAG_DEL_VERTEX: u8 = 4;

/// The smallest encoded update (a vertex op: tag + id).
const MIN_UPDATE_BYTES: usize = 9;

/// Per-record update cap: epochs larger than this are split across
/// records so the `u32` header fields can never wrap (25 bytes/update
/// keeps a full record far below `u32::MAX` payload bytes).
pub const MAX_WAL_RECORD_UPDATES: usize = 1 << 20;

const MANIFEST_MAGIC: &[u8; 8] = b"RISWALM1";
const SNAPSHOT_MAGIC: &[u8; 8] = b"RISSNAP1";
const MANIFEST_VERSION: u32 = 1;
const SNAPSHOT_VERSION: u32 = 1;

/// Snapshot section tags (one per CRC'd record in the snapshot file).
const SNAP_META: u8 = 1;
const SNAP_STRUCT: u8 = 2;
const SNAP_RESULTS: u8 = 3;
const SNAP_END: u8 = 4;

/// Updates per structure chunk / states per result chunk in a
/// snapshot file.
const SNAP_CHUNK: usize = 1 << 16;

fn encode_update(buf: &mut BytesMut, u: &Update) {
    match u {
        Update::InsEdge(e) => {
            buf.put_u8(TAG_INS_EDGE);
            buf.put_u64_le(e.src);
            buf.put_u64_le(e.dst);
            buf.put_u64_le(e.data);
        }
        Update::DelEdge(e) => {
            buf.put_u8(TAG_DEL_EDGE);
            buf.put_u64_le(e.src);
            buf.put_u64_le(e.dst);
            buf.put_u64_le(e.data);
        }
        Update::InsVertex(v) => {
            buf.put_u8(TAG_INS_VERTEX);
            buf.put_u64_le(*v);
        }
        Update::DelVertex(v) => {
            buf.put_u8(TAG_DEL_VERTEX);
            buf.put_u64_le(*v);
        }
    }
}

fn decode_update(buf: &mut Bytes) -> Result<Update> {
    if buf.remaining() < 1 {
        return Err(Error::Wal("truncated update tag".into()));
    }
    let tag = buf.get_u8();
    let need = match tag {
        TAG_INS_EDGE | TAG_DEL_EDGE => 24,
        TAG_INS_VERTEX | TAG_DEL_VERTEX => 8,
        other => return Err(Error::Wal(format!("unknown update tag {other}"))),
    };
    if buf.remaining() < need {
        return Err(Error::Wal("truncated update body".into()));
    }
    Ok(match tag {
        TAG_INS_EDGE => Update::InsEdge(Edge::new(
            buf.get_u64_le(),
            buf.get_u64_le(),
            buf.get_u64_le(),
        )),
        TAG_DEL_EDGE => Update::DelEdge(Edge::new(
            buf.get_u64_le(),
            buf.get_u64_le(),
            buf.get_u64_le(),
        )),
        TAG_INS_VERTEX => Update::InsVertex(buf.get_u64_le()),
        _ => Update::DelVertex(buf.get_u64_le()),
    })
}

/// Decode one CRC-validated record payload (`[count u32][updates…]`)
/// into an update batch, with the preallocation capped by what the
/// payload could physically hold — a forged count field must fail,
/// not allocate.
fn decode_batch(payload: &[u8]) -> Result<Vec<Update>> {
    let mut buf = Bytes::copy_from_slice(payload);
    if buf.remaining() < 4 {
        return Err(Error::Wal("record too short".into()));
    }
    let count = buf.get_u32_le() as usize;
    if count > buf.remaining() / MIN_UPDATE_BYTES {
        return Err(Error::Wal(format!(
            "record claims {count} updates but only {} payload bytes remain",
            buf.remaining()
        )));
    }
    let mut batch = Vec::with_capacity(count);
    for _ in 0..count {
        batch.push(decode_update(&mut buf)?);
    }
    Ok(batch)
}

/// `<base><suffix>` as a sibling path (keeps the base's extension).
fn sibling(base: &Path, suffix: &str) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

/// Path of segment `seg` of the log at `base`.
pub fn segment_path(base: impl AsRef<Path>, seg: u64) -> PathBuf {
    sibling(base.as_ref(), &format!(".seg-{seg:08}"))
}

/// Path of the snapshot of the log at `base`.
pub fn snapshot_path(base: impl AsRef<Path>) -> PathBuf {
    sibling(base.as_ref(), ".snapshot")
}

/// fsync the directory containing `path`, making renames and freshly
/// created entries durable.
fn sync_dir(path: &Path) -> Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Durably write `bytes` to `path` via a temp file + rename + parent
/// directory fsync (the snapshot/manifest atomicity primitive).
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = sibling(path, ".tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_dir(path)?;
    Ok(())
}

/// The CRC'd manifest at the WAL base path: which segments exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Oldest retained segment (replay starts here absent a snapshot).
    pub first_seg: u64,
    /// Segment currently open for append.
    pub active_seg: u64,
}

fn write_manifest(base: &Path, m: &Manifest) -> Result<()> {
    let mut payload = BytesMut::new();
    payload.put_u32_le(MANIFEST_VERSION);
    payload.put_u64_le(m.first_seg);
    payload.put_u64_le(m.active_seg);
    let mut buf = Vec::with_capacity(16 + payload.len());
    buf.extend_from_slice(MANIFEST_MAGIC);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
    atomic_write(base, &buf)
}

/// Read the manifest at `base`. `Ok(None)` means the path holds a
/// pre-segmentation raw log (or nothing); a present-but-corrupt
/// manifest is an error.
pub fn read_manifest(base: impl AsRef<Path>) -> Result<Option<Manifest>> {
    let mut data = Vec::new();
    match File::open(base.as_ref()) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    if data.len() < 8 || &data[..8] != MANIFEST_MAGIC {
        return Ok(None); // legacy single-file log
    }
    if data.len() < 16 {
        return Err(Error::Wal("truncated wal manifest".into()));
    }
    let len = u32::from_le_bytes(data[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(data[12..16].try_into().unwrap());
    if data.len() < 16 + len {
        return Err(Error::Wal("truncated wal manifest".into()));
    }
    let payload = &data[16..16 + len];
    if crc32(payload) != crc {
        return Err(Error::Wal("wal manifest checksum mismatch".into()));
    }
    let mut buf = Bytes::copy_from_slice(payload);
    if buf.remaining() < 20 {
        return Err(Error::Wal("wal manifest too short".into()));
    }
    let version = buf.get_u32_le();
    if version != MANIFEST_VERSION {
        return Err(Error::Wal(format!(
            "unknown wal manifest version {version}"
        )));
    }
    let first_seg = buf.get_u64_le();
    let active_seg = buf.get_u64_le();
    if first_seg > active_seg {
        return Err(Error::Wal(
            "wal manifest first segment beyond active".into(),
        ));
    }
    Ok(Some(Manifest {
        first_seg,
        active_seg,
    }))
}

/// One algorithm's dependency-tree state for one vertex, as persisted
/// in a checkpoint snapshot (mirrors `tree::VertexState`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResultState {
    /// The maintained value.
    pub value: u64,
    /// Parent vertex in the dependency tree (`u64::MAX` = none).
    pub parent_src: u64,
    /// Weight of the parent edge.
    pub parent_data: u64,
}

/// A checkpoint snapshot: the full store structure as a synthetic
/// update batch plus per-algorithm result state, with the replay
/// resume coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Replay continues from this segment (everything older is
    /// covered by the snapshot).
    pub start_seg: u64,
    /// Replication-feed index the snapshot state corresponds to —
    /// a fresh follower bootstrapping from it resumes here.
    pub cut_index: u64,
    /// Leader version at the cut.
    pub cut_version: u64,
    /// Vertex-id upper bound at capture (`ensure_capacity` target).
    pub upper_bound: u64,
    /// Live structure: one `InsVertex` per live vertex (isolated
    /// vertices survive), then every edge repeated by multiplicity.
    pub updates: Vec<Update>,
    /// Per-algorithm result state for vertices `0..upper_bound`
    /// (empty ⇒ structure-only; the restorer recomputes instead).
    pub results: Vec<Vec<ResultState>>,
}

/// Write `snap` durably to the snapshot path of the log at `base`
/// (temp file + rename + directory fsync, so readers only ever see a
/// complete snapshot).
pub fn write_snapshot(base: impl AsRef<Path>, snap: &Snapshot) -> Result<()> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    let mut scratch = BytesMut::new();

    let put_record = |out: &mut Vec<u8>, payload: &[u8]| {
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
    };

    scratch.clear();
    scratch.put_u8(SNAP_META);
    scratch.put_u32_le(SNAPSHOT_VERSION);
    scratch.put_u64_le(snap.start_seg);
    scratch.put_u64_le(snap.cut_index);
    scratch.put_u64_le(snap.cut_version);
    scratch.put_u64_le(snap.upper_bound);
    scratch.put_u32_le(snap.results.len() as u32);
    put_record(&mut out, &scratch);

    for chunk in snap.updates.chunks(SNAP_CHUNK) {
        scratch.clear();
        scratch.put_u8(SNAP_STRUCT);
        scratch.put_u32_le(chunk.len() as u32);
        for u in chunk {
            encode_update(&mut scratch, u);
        }
        put_record(&mut out, &scratch);
    }

    for (algo, states) in snap.results.iter().enumerate() {
        let mut start = 0u64;
        // Emit at least one chunk per algorithm so the reader can
        // validate the per-algo state length even when it is zero.
        loop {
            let chunk = &states[start as usize..states.len().min(start as usize + SNAP_CHUNK)];
            scratch.clear();
            scratch.put_u8(SNAP_RESULTS);
            scratch.put_u32_le(algo as u32);
            scratch.put_u64_le(start);
            scratch.put_u32_le(chunk.len() as u32);
            for s in chunk {
                scratch.put_u64_le(s.value);
                scratch.put_u64_le(s.parent_src);
                scratch.put_u64_le(s.parent_data);
            }
            put_record(&mut out, &scratch);
            start += chunk.len() as u64;
            if start as usize >= states.len() {
                break;
            }
        }
    }

    scratch.clear();
    scratch.put_u8(SNAP_END);
    put_record(&mut out, &scratch);

    atomic_write(&snapshot_path(base), &out)
}

/// Read the snapshot of the log at `base`. `Ok(None)` when none has
/// been written; a present-but-damaged snapshot is an error (the file
/// is written atomically, so damage means real corruption — replay
/// cannot silently fall back, the pre-snapshot segments are gone).
pub fn read_snapshot(base: impl AsRef<Path>) -> Result<Option<Snapshot>> {
    let path = snapshot_path(base);
    let mut data = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    if data.len() < 8 || &data[..8] != SNAPSHOT_MAGIC {
        return Err(Error::Wal("bad snapshot magic".into()));
    }
    let corrupt = |what: &str| Error::Wal(format!("corrupt snapshot: {what}"));
    let mut snap = Snapshot::default();
    let mut seen_meta = false;
    let mut seen_end = false;
    let mut pos = 8usize;
    while pos + 8 <= data.len() {
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if pos + 8 + len > data.len() {
            return Err(corrupt("torn record"));
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            return Err(corrupt("record checksum mismatch"));
        }
        pos += 8 + len;
        let mut buf = Bytes::copy_from_slice(payload);
        if buf.remaining() < 1 {
            return Err(corrupt("empty record"));
        }
        match buf.get_u8() {
            SNAP_META => {
                if seen_meta || buf.remaining() < 4 + 8 * 4 + 4 {
                    return Err(corrupt("bad meta record"));
                }
                let version = buf.get_u32_le();
                if version != SNAPSHOT_VERSION {
                    return Err(corrupt(&format!("unknown version {version}")));
                }
                snap.start_seg = buf.get_u64_le();
                snap.cut_index = buf.get_u64_le();
                snap.cut_version = buf.get_u64_le();
                snap.upper_bound = buf.get_u64_le();
                let num_algos = buf.get_u32_le() as usize;
                if num_algos > 1024 {
                    return Err(corrupt("absurd algorithm count"));
                }
                snap.results = vec![Vec::new(); num_algos];
                seen_meta = true;
            }
            SNAP_STRUCT => {
                if !seen_meta {
                    return Err(corrupt("structure before meta"));
                }
                snap.updates
                    .extend(decode_batch(&payload[1..]).map_err(|e| corrupt(&e.to_string()))?);
            }
            SNAP_RESULTS => {
                if !seen_meta || buf.remaining() < 16 {
                    return Err(corrupt("bad results record"));
                }
                let algo = buf.get_u32_le() as usize;
                let start = buf.get_u64_le() as usize;
                let count = buf.get_u32_le() as usize;
                if algo >= snap.results.len()
                    || count > buf.remaining() / 24
                    || start != snap.results[algo].len()
                    || start + count > snap.upper_bound as usize
                {
                    return Err(corrupt("results record out of bounds"));
                }
                let states = &mut snap.results[algo];
                states.reserve(count);
                for _ in 0..count {
                    states.push(ResultState {
                        value: buf.get_u64_le(),
                        parent_src: buf.get_u64_le(),
                        parent_data: buf.get_u64_le(),
                    });
                }
            }
            SNAP_END => {
                if !seen_meta {
                    return Err(corrupt("end before meta"));
                }
                seen_end = true;
                break;
            }
            other => return Err(corrupt(&format!("unknown section tag {other}"))),
        }
    }
    if !seen_end {
        return Err(corrupt("missing end record"));
    }
    Ok(Some(snap))
}

/// What [`WalWriter::recover`] found on disk.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// The latest checkpoint snapshot, if one exists.
    pub snapshot: Option<Snapshot>,
    /// Update batches replayed from the retained segments, in record
    /// order (post-snapshot only when a snapshot exists).
    pub batches: Vec<Vec<Update>>,
    /// How many records the segments yielded (the restart-cost
    /// counter surfaced as `ServerStats::wal_replayed_records`).
    pub replayed_records: u64,
    /// First segment replayed.
    pub start_seg: u64,
}

/// Appending side of the log.
pub struct WalWriter {
    base: PathBuf,
    writer: BufWriter<File>,
    scratch: BytesMut,
    records: u64,
    first_seg: u64,
    active_seg: u64,
    active_bytes: u64,
    max_segment_bytes: u64,
    rotate_ns: u64,
}

impl WalWriter {
    /// Open (or create) a log for appending, discarding whatever a
    /// recovery would have replayed. Prefer [`WalWriter::recover`] —
    /// this exists for write-only uses (benches, fresh logs).
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::recover(path, 0).map(|(_, w)| w)
    }

    /// Recover the log at `path`: migrate a legacy single-file log,
    /// read the snapshot and replay the retained segments, physically
    /// truncate the torn tail (and drop unreachable later segments),
    /// then reopen the active segment for append. `max_segment_bytes`
    /// of zero disables rotation.
    pub fn recover(
        path: impl AsRef<Path>,
        max_segment_bytes: u64,
    ) -> Result<(WalRecovery, WalWriter)> {
        let base = path.as_ref().to_path_buf();
        let mut manifest = match read_manifest(&base)? {
            Some(m) => m,
            None => {
                // Legacy raw log (pre-segmentation) → segment 0.
                if base.exists() {
                    std::fs::rename(&base, segment_path(&base, 0))?;
                }
                let m = Manifest {
                    first_seg: 0,
                    active_seg: 0,
                };
                write_manifest(&base, &m)?;
                m
            }
        };

        let snapshot = read_snapshot(&base)?;
        let start_seg = snapshot
            .as_ref()
            .map(|s| s.start_seg)
            .unwrap_or(manifest.first_seg)
            .max(manifest.first_seg);

        let mut recovery = WalRecovery {
            snapshot,
            start_seg,
            ..Default::default()
        };
        let mut active = manifest.active_seg.max(start_seg);
        'segments: for seg in start_seg..=manifest.active_seg.max(start_seg) {
            let seg_file = segment_path(&base, seg);
            let mut data = Vec::new();
            match File::open(&seg_file) {
                Ok(mut f) => {
                    f.read_to_end(&mut data)?;
                }
                // Only the active segment may be missing (created
                // lazily below); a hole in the middle is corruption.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    if seg == manifest.active_seg.max(start_seg) {
                        break;
                    }
                    return Err(Error::Wal(format!(
                        "missing wal segment {seg} ({})",
                        seg_file.display()
                    )));
                }
                Err(e) => return Err(e.into()),
            }
            let mut pos = 0usize;
            loop {
                if pos + 8 > data.len() {
                    break;
                }
                let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
                let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
                let torn =
                    pos + 8 + len > data.len() || crc32(&data[pos + 8..pos + 8 + len]) != crc;
                if torn {
                    // The torn-tail fix: cut the segment back to the
                    // last valid record *on disk* so post-recovery
                    // appends land right here, not behind garbage —
                    // and drop any (unreachable) later segments.
                    let f = OpenOptions::new().write(true).open(&seg_file)?;
                    f.set_len(pos as u64)?;
                    f.sync_all()?;
                    for later in seg + 1..=manifest.active_seg {
                        let _ = std::fs::remove_file(segment_path(&base, later));
                    }
                    active = seg;
                    break 'segments;
                }
                recovery
                    .batches
                    .push(decode_batch(&data[pos + 8..pos + 8 + len])?);
                recovery.replayed_records += 1;
                pos += 8 + len;
            }
            if pos != data.len() {
                // Trailing garbage shorter than a header.
                let f = OpenOptions::new().write(true).open(&seg_file)?;
                f.set_len(pos as u64)?;
                f.sync_all()?;
                for later in seg + 1..=manifest.active_seg {
                    let _ = std::fs::remove_file(segment_path(&base, later));
                }
                active = seg;
                break;
            }
            active = seg;
        }

        if manifest.active_seg != active || manifest.first_seg > active {
            manifest.active_seg = active;
            manifest.first_seg = manifest.first_seg.min(active);
            write_manifest(&base, &manifest)?;
        }

        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&base, active))?;
        let active_bytes = file.metadata()?.len();
        // Make a freshly created segment's directory entry durable.
        sync_dir(&base)?;

        let writer = WalWriter {
            base,
            writer: BufWriter::new(file),
            scratch: BytesMut::new(),
            records: 0,
            first_seg: manifest.first_seg,
            active_seg: active,
            active_bytes,
            max_segment_bytes,
            rotate_ns: 0,
        };
        Ok((recovery, writer))
    }

    /// Buffer one batch (one epoch's merged record) into the active
    /// segment, splitting batches larger than
    /// [`MAX_WAL_RECORD_UPDATES`] across records, then rotate if the
    /// segment is over its size budget.
    pub fn append(&mut self, updates: &[Update]) -> Result<()> {
        if updates.is_empty() {
            self.append_record(updates)?;
        } else {
            for chunk in updates.chunks(MAX_WAL_RECORD_UPDATES) {
                self.append_record(chunk)?;
            }
        }
        if self.max_segment_bytes > 0 && self.active_bytes >= self.max_segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    fn append_record(&mut self, updates: &[Update]) -> Result<()> {
        debug_assert!(updates.len() <= MAX_WAL_RECORD_UPDATES);
        self.scratch.clear();
        self.scratch.put_u32_le(updates.len() as u32);
        for u in updates {
            encode_update(&mut self.scratch, u);
        }
        let crc = crc32(&self.scratch);
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(self.scratch.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc.to_le_bytes());
        self.writer.write_all(&header)?;
        self.writer.write_all(&self.scratch)?;
        self.active_bytes += 8 + self.scratch.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Group commit: flush buffers and fsync the active segment.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// Seal the active segment (flush + fsync) and open the next one,
    /// fsyncing the directory entry and updating the manifest.
    /// Returns the new active segment number.
    pub fn rotate(&mut self) -> Result<u64> {
        let t = std::time::Instant::now();
        self.sync()?;
        let next = self.active_seg + 1;
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(&self.base, next))?;
        sync_dir(&self.base)?;
        self.writer = BufWriter::new(file);
        self.active_seg = next;
        self.active_bytes = 0;
        write_manifest(
            &self.base,
            &Manifest {
                first_seg: self.first_seg,
                active_seg: next,
            },
        )?;
        self.rotate_ns += t.elapsed().as_nanos() as u64;
        Ok(next)
    }

    /// Advance the retention floor to `seg` (after a snapshot covering
    /// everything older has become durable): update the manifest, then
    /// delete the older segment files.
    pub fn truncate_to(&mut self, seg: u64) -> Result<()> {
        assert!(
            seg <= self.active_seg,
            "cannot truncate past the active segment"
        );
        if seg <= self.first_seg {
            return Ok(());
        }
        write_manifest(
            &self.base,
            &Manifest {
                first_seg: seg,
                active_seg: self.active_seg,
            },
        )?;
        for old in self.first_seg..seg {
            let _ = std::fs::remove_file(segment_path(&self.base, old));
        }
        self.first_seg = seg;
        sync_dir(&self.base)?;
        Ok(())
    }

    /// Records appended since open.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The configured log base path (manifest location; segments and
    /// the snapshot are its siblings).
    pub fn base(&self) -> &Path {
        &self.base
    }

    /// Segment currently open for append.
    pub fn active_segment(&self) -> u64 {
        self.active_seg
    }

    /// Oldest retained segment.
    pub fn first_segment(&self) -> u64 {
        self.first_seg
    }

    /// Sealed segments retained behind the active one — the
    /// checkpoint-pressure signal (grows with every rotation, resets
    /// to zero when a checkpoint truncates).
    pub fn segment_lag(&self) -> u64 {
        self.active_seg - self.first_seg
    }

    /// Bytes buffered or written into the active segment.
    pub fn active_bytes(&self) -> u64 {
        self.active_bytes
    }

    /// Cumulative wall-clock time spent in [`rotate`](Self::rotate)
    /// since open. Rotation fires *inside* [`append`](Self::append)
    /// when the segment crosses its budget, so the epoch tracer
    /// recovers per-epoch rotation spans from deltas of this clock.
    pub fn rotate_ns(&self) -> u64 {
        self.rotate_ns
    }
}

/// Read-only replay of the log at `path`: the snapshot's structure
/// batch (if a snapshot exists) followed by each retained record's
/// update batch, stopping silently at a torn tail (without modifying
/// the files — [`WalWriter::recover`] is the mutating path). Applying
/// the batches in order to an empty store reproduces the recovered
/// structure; result state from the snapshot is not included.
pub fn replay(path: impl AsRef<Path>) -> Result<Vec<Vec<Update>>> {
    let base = path.as_ref();
    let manifest = match read_manifest(base)? {
        Some(m) => m,
        None => {
            // Legacy raw log (or nothing at all).
            return match std::fs::metadata(base) {
                Ok(_) => replay_segment_file(base),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
                Err(e) => Err(e.into()),
            };
        }
    };
    let snapshot = read_snapshot(base)?;
    let mut out = Vec::new();
    let start = snapshot
        .as_ref()
        .map(|s| s.start_seg)
        .unwrap_or(manifest.first_seg)
        .max(manifest.first_seg);
    if let Some(snap) = snapshot {
        if !snap.updates.is_empty() {
            out.push(snap.updates);
        }
    }
    for seg in start..=manifest.active_seg.max(start) {
        let seg_file = segment_path(base, seg);
        if !seg_file.exists() {
            break; // lazily created active segment
        }
        out.append(&mut replay_segment_file(&seg_file)?);
    }
    Ok(out)
}

/// Replay one record-stream file, stopping silently at a torn tail.
fn replay_segment_file(path: &Path) -> Result<Vec<Vec<Update>>> {
    let mut data = Vec::new();
    let mut f = File::open(path)?;
    f.read_to_end(&mut data)?;
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= data.len() {
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if pos + 8 + len > data.len() {
            break; // torn tail
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // torn/corrupt tail: stop replay here
        }
        out.push(decode_batch(payload)?);
        pos += 8 + len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("risgraph-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.wal", std::process::id()));
        cleanup(&p);
        p
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(snapshot_path(p));
        for seg in 0..64 {
            let _ = std::fs::remove_file(segment_path(p, seg));
        }
    }

    #[test]
    fn roundtrip_all_update_kinds() {
        let path = tmp("roundtrip");
        let batches = vec![
            vec![Update::InsEdge(Edge::new(1, 2, 3))],
            vec![Update::DelEdge(Edge::new(4, 5, 6)), Update::InsVertex(7)],
            vec![Update::DelVertex(8)],
        ];
        {
            let mut w = WalWriter::open(&path).unwrap();
            for b in &batches {
                w.append(b).unwrap();
            }
            w.sync().unwrap();
            assert_eq!(w.records(), 3);
        }
        assert_eq!(replay(&path).unwrap(), batches);
        cleanup(&path);
    }

    #[test]
    fn missing_file_replays_empty() {
        assert!(replay("/nonexistent/risgraph.wal").unwrap().is_empty());
    }

    #[test]
    fn legacy_raw_log_is_migrated_to_segment_zero() {
        let path = tmp("legacy");
        // Hand-craft a pre-segmentation single-file log at the base
        // path: [len][crc][count=1, InsVertex(9)].
        let mut payload = BytesMut::new();
        payload.put_u32_le(1);
        encode_update(&mut payload, &Update::InsVertex(9));
        let mut raw = Vec::new();
        raw.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        raw.extend_from_slice(&crc32(&payload).to_le_bytes());
        raw.extend_from_slice(&payload);
        std::fs::write(&path, &raw).unwrap();
        // Read-only replay understands the legacy file in place…
        assert_eq!(replay(&path).unwrap(), vec![vec![Update::InsVertex(9)]]);
        // …and recovery migrates it: base becomes the manifest, the
        // records move to segment 0, and appends continue behind them.
        let (rec, mut w) = WalWriter::recover(&path, 0).unwrap();
        assert_eq!(rec.batches, vec![vec![Update::InsVertex(9)]]);
        w.append(&[Update::InsVertex(10)]).unwrap();
        w.sync().unwrap();
        drop(w);
        assert!(read_manifest(&path).unwrap().is_some());
        assert_eq!(
            replay(&path).unwrap(),
            vec![vec![Update::InsVertex(9)], vec![Update::InsVertex(10)]]
        );
        cleanup(&path);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&[Update::InsVertex(1)]).unwrap();
            w.append(&[Update::InsVertex(2)]).unwrap();
            w.sync().unwrap();
        }
        // Chop bytes off the end: the second record is torn.
        let seg = segment_path(&path, 0);
        let data = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &data[..data.len() - 3]).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed, vec![vec![Update::InsVertex(1)]]);
        cleanup(&path);
    }

    /// The headline regression: a torn tail must be *physically*
    /// truncated by recovery, so records appended afterwards survive
    /// the next recovery instead of hiding behind garbage.
    #[test]
    fn append_after_torn_tail_recovery_survives_second_recovery() {
        let path = tmp("torn-append");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&[Update::InsVertex(1)]).unwrap();
            w.append(&[Update::InsVertex(2)]).unwrap();
            w.sync().unwrap();
        }
        let seg = segment_path(&path, 0);
        let data = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &data[..data.len() - 3]).unwrap();
        // First recovery: sees the valid prefix, truncates the tail,
        // and appends a new record.
        {
            let (rec, mut w) = WalWriter::recover(&path, 0).unwrap();
            assert_eq!(rec.batches, vec![vec![Update::InsVertex(1)]]);
            // Physically cut to the first record (8-byte header +
            // 4-byte count + 9-byte vertex update = 21 bytes).
            assert_eq!(std::fs::metadata(&seg).unwrap().len(), 21);
            w.append(&[Update::InsVertex(3)]).unwrap();
            w.sync().unwrap();
        }
        // Second recovery: the post-recovery record must be there.
        let (rec, _w) = WalWriter::recover(&path, 0).unwrap();
        assert_eq!(
            rec.batches,
            vec![vec![Update::InsVertex(1)], vec![Update::InsVertex(3)]]
        );
        cleanup(&path);
    }

    #[test]
    fn corrupt_payload_stops_replay() {
        let path = tmp("corrupt");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&[Update::InsVertex(1)]).unwrap();
            w.append(&[Update::InsVertex(2)]).unwrap();
            w.sync().unwrap();
        }
        let seg = segment_path(&path, 0);
        let mut data = std::fs::read(&seg).unwrap();
        // Flip a payload byte inside the second record.
        let n = data.len();
        data[n - 2] ^= 0xFF;
        std::fs::write(&seg, &data).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed, vec![vec![Update::InsVertex(1)]]);
        cleanup(&path);
    }

    #[test]
    fn append_after_reopen_preserves_prefix() {
        let path = tmp("reopen");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&[Update::InsVertex(1)]).unwrap();
            w.sync().unwrap();
        }
        {
            let (rec, mut w) = WalWriter::recover(&path, 0).unwrap();
            assert_eq!(rec.replayed_records, 1);
            w.append(&[Update::InsVertex(2)]).unwrap();
            w.sync().unwrap();
        }
        assert_eq!(
            replay(&path).unwrap(),
            vec![vec![Update::InsVertex(1)], vec![Update::InsVertex(2)]]
        );
        cleanup(&path);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let path = tmp("empty");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&[]).unwrap();
            w.sync().unwrap();
        }
        assert_eq!(replay(&path).unwrap(), vec![Vec::<Update>::new()]);
        cleanup(&path);
    }

    #[test]
    fn tiny_segments_rotate_and_replay_across_files() {
        let path = tmp("rotate");
        let mut want = Vec::new();
        {
            // 64-byte budget: every ~2 records rotates.
            let (_, mut w) = WalWriter::recover(&path, 64).unwrap();
            for i in 0..20u64 {
                let batch = vec![Update::InsEdge(Edge::new(i, i + 1, 1))];
                w.append(&batch).unwrap();
                want.push(batch);
            }
            w.sync().unwrap();
            assert!(w.active_segment() >= 5, "rotation never triggered");
            assert_eq!(w.first_segment(), 0);
        }
        assert_eq!(replay(&path).unwrap(), want);
        // Recovery walks the same segments and lands on the last one.
        let (rec, w) = WalWriter::recover(&path, 64).unwrap();
        assert_eq!(rec.batches, want);
        assert_eq!(rec.replayed_records, 20);
        assert!(w.active_segment() >= 5);
        cleanup(&path);
    }

    #[test]
    fn truncate_to_deletes_old_segments() {
        let path = tmp("truncate");
        let (_, mut w) = WalWriter::recover(&path, 64).unwrap();
        for i in 0..20u64 {
            w.append(&[Update::InsVertex(i)]).unwrap();
        }
        w.sync().unwrap();
        let active = w.active_segment();
        assert!(active >= 3);
        w.truncate_to(active).unwrap();
        assert_eq!(w.first_segment(), active);
        assert_eq!(w.segment_lag(), 0);
        for seg in 0..active {
            assert!(
                !segment_path(&path, seg).exists(),
                "segment {seg} survived truncation"
            );
        }
        // Replay now starts at the retention floor.
        let m = read_manifest(&path).unwrap().unwrap();
        assert_eq!(m.first_seg, active);
        cleanup(&path);
    }

    #[test]
    fn oversized_epochs_split_across_records() {
        let path = tmp("split");
        let updates: Vec<Update> = (0..(MAX_WAL_RECORD_UPDATES + 3) as u64)
            .map(Update::InsVertex)
            .collect();
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&updates).unwrap();
            w.sync().unwrap();
            // One full record plus the 3-update remainder — the u32
            // header fields never see the oversized total.
            assert_eq!(w.records(), 2);
        }
        let batches = replay(&path).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), MAX_WAL_RECORD_UPDATES);
        assert_eq!(batches[1].len(), 3);
        let flat: Vec<Update> = batches.into_iter().flatten().collect();
        assert_eq!(flat, updates);
        cleanup(&path);
    }

    /// A CRC-valid record whose count field claims more updates than
    /// the payload can hold must fail cleanly — not preallocate or
    /// misdecode.
    #[test]
    fn forged_update_count_is_rejected() {
        let path = tmp("forged");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&[Update::InsVertex(1)]).unwrap();
            w.sync().unwrap();
        }
        let seg = segment_path(&path, 0);
        // Rewrite the record with count = u32::MAX and a fresh CRC so
        // the checksum passes and only the count guard can object.
        let mut payload = BytesMut::new();
        payload.put_u32_le(u32::MAX);
        encode_update(&mut payload, &Update::InsVertex(1));
        let mut forged = Vec::new();
        forged.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        forged.extend_from_slice(&crc32(&payload).to_le_bytes());
        forged.extend_from_slice(&payload);
        std::fs::write(&seg, &forged).unwrap();
        assert!(matches!(replay(&path), Err(Error::Wal(_))));
        assert!(matches!(WalWriter::recover(&path, 0), Err(Error::Wal(_))));
        cleanup(&path);
    }

    #[test]
    fn snapshot_roundtrips_and_shortens_replay() {
        let path = tmp("snapshot");
        let (_, mut w) = WalWriter::recover(&path, 0).unwrap();
        w.append(&[Update::InsEdge(Edge::new(0, 1, 5))]).unwrap();
        w.sync().unwrap();
        // Checkpoint: rotate, snapshot covering everything before the
        // new segment, truncate.
        let start = w.rotate().unwrap();
        let snap = Snapshot {
            start_seg: start,
            cut_index: 7,
            cut_version: 3,
            upper_bound: 2,
            updates: vec![
                Update::InsVertex(0),
                Update::InsVertex(1),
                Update::InsEdge(Edge::new(0, 1, 5)),
            ],
            results: vec![vec![
                ResultState {
                    value: 0,
                    parent_src: u64::MAX,
                    parent_data: 0,
                },
                ResultState {
                    value: 5,
                    parent_src: 0,
                    parent_data: 5,
                },
            ]],
        };
        write_snapshot(&path, &snap).unwrap();
        w.truncate_to(start).unwrap();
        w.append(&[Update::InsEdge(Edge::new(1, 2, 1))]).unwrap();
        w.sync().unwrap();
        drop(w);

        let read = read_snapshot(&path).unwrap().unwrap();
        assert_eq!(read, snap);

        // Recovery sees the snapshot plus only the post-checkpoint
        // record.
        let (rec, _w) = WalWriter::recover(&path, 0).unwrap();
        assert_eq!(rec.snapshot.as_ref(), Some(&snap));
        assert_eq!(rec.batches, vec![vec![Update::InsEdge(Edge::new(1, 2, 1))]]);
        assert_eq!(rec.replayed_records, 1);

        // Read-only replay prepends the snapshot structure so the
        // full state is reconstructible from its output alone.
        assert_eq!(
            replay(&path).unwrap(),
            vec![
                snap.updates.clone(),
                vec![Update::InsEdge(Edge::new(1, 2, 1))]
            ]
        );
        cleanup(&path);
    }

    #[test]
    fn damaged_snapshot_is_an_error_not_silent_fallback() {
        let path = tmp("snapdamage");
        let (_, mut w) = WalWriter::recover(&path, 0).unwrap();
        let start = w.rotate().unwrap();
        write_snapshot(
            &path,
            &Snapshot {
                start_seg: start,
                upper_bound: 1,
                updates: vec![Update::InsVertex(0)],
                ..Default::default()
            },
        )
        .unwrap();
        drop(w);
        // Chop the end marker off.
        let sp = snapshot_path(&path);
        let data = std::fs::read(&sp).unwrap();
        std::fs::write(&sp, &data[..data.len() - 5]).unwrap();
        assert!(matches!(read_snapshot(&path), Err(Error::Wal(_))));
        assert!(matches!(WalWriter::recover(&path, 0), Err(Error::Wal(_))));
        cleanup(&path);
    }
}
