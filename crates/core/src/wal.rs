//! Write-ahead logging (§2: "Optionally, RisGraph provides durability
//! with write-ahead logs (WAL)").
//!
//! Record layout: `[len: u32 LE][crc32: u32 LE][payload]`, where the
//! payload encodes one update batch. The server writes **one merged
//! record per epoch** — every shard's safe-phase log plus the serial
//! unsafe updates, sorted by a global application-order stamp drawn
//! inside the store's per-edge serialization, so the record is the
//! *actual* execution order (not merely a valid linearization) and
//! recovery truncates at epoch granularity. Replay stops cleanly at the first torn or
//! corrupt record, truncating the tail — the standard recovery
//! contract (exercised end-to-end, including a mid-epoch crash with a
//! buffered tail, by `tests/wal_crash_recovery.rs`).
//!
//! Flushing follows the epoch loop's group-commit: `append` buffers,
//! [`WalWriter::sync`] flushes and fsyncs on the group-commit cadence
//! (Figure 11b charges 14.0% of wall time to WAL, which the breakdown
//! bench reproduces).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use risgraph_common::crc::crc32;
use risgraph_common::ids::{Edge, Update};
use risgraph_common::{Error, Result};

const TAG_INS_EDGE: u8 = 1;
const TAG_DEL_EDGE: u8 = 2;
const TAG_INS_VERTEX: u8 = 3;
const TAG_DEL_VERTEX: u8 = 4;

fn encode_update(buf: &mut BytesMut, u: &Update) {
    match u {
        Update::InsEdge(e) => {
            buf.put_u8(TAG_INS_EDGE);
            buf.put_u64_le(e.src);
            buf.put_u64_le(e.dst);
            buf.put_u64_le(e.data);
        }
        Update::DelEdge(e) => {
            buf.put_u8(TAG_DEL_EDGE);
            buf.put_u64_le(e.src);
            buf.put_u64_le(e.dst);
            buf.put_u64_le(e.data);
        }
        Update::InsVertex(v) => {
            buf.put_u8(TAG_INS_VERTEX);
            buf.put_u64_le(*v);
        }
        Update::DelVertex(v) => {
            buf.put_u8(TAG_DEL_VERTEX);
            buf.put_u64_le(*v);
        }
    }
}

fn decode_update(buf: &mut Bytes) -> Result<Update> {
    if buf.remaining() < 1 {
        return Err(Error::Wal("truncated update tag".into()));
    }
    let tag = buf.get_u8();
    let need = match tag {
        TAG_INS_EDGE | TAG_DEL_EDGE => 24,
        TAG_INS_VERTEX | TAG_DEL_VERTEX => 8,
        other => return Err(Error::Wal(format!("unknown update tag {other}"))),
    };
    if buf.remaining() < need {
        return Err(Error::Wal("truncated update body".into()));
    }
    Ok(match tag {
        TAG_INS_EDGE => Update::InsEdge(Edge::new(
            buf.get_u64_le(),
            buf.get_u64_le(),
            buf.get_u64_le(),
        )),
        TAG_DEL_EDGE => Update::DelEdge(Edge::new(
            buf.get_u64_le(),
            buf.get_u64_le(),
            buf.get_u64_le(),
        )),
        TAG_INS_VERTEX => Update::InsVertex(buf.get_u64_le()),
        _ => Update::DelVertex(buf.get_u64_le()),
    })
}

/// Appending side of the log.
pub struct WalWriter {
    writer: BufWriter<File>,
    scratch: BytesMut,
    records: u64,
}

impl WalWriter {
    /// Open (or create) a log for appending.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter {
            writer: BufWriter::new(file),
            scratch: BytesMut::new(),
            records: 0,
        })
    }

    /// Buffer one batch (single update or transaction) as a record.
    pub fn append(&mut self, updates: &[Update]) -> Result<()> {
        self.scratch.clear();
        self.scratch.put_u32_le(updates.len() as u32);
        for u in updates {
            encode_update(&mut self.scratch, u);
        }
        let crc = crc32(&self.scratch);
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(self.scratch.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc.to_le_bytes());
        self.writer.write_all(&header)?;
        self.writer.write_all(&self.scratch)?;
        self.records += 1;
        Ok(())
    }

    /// Group commit: flush buffers and fsync.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

/// Replay a log, yielding each record's update batch. Stops silently at
/// a torn tail (partial final record); returns an error only for
/// mid-log corruption that checksum-validates but fails to decode.
pub fn replay(path: impl AsRef<Path>) -> Result<Vec<Vec<Update>>> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    }
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= data.len() {
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if pos + 8 + len > data.len() {
            break; // torn tail
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // torn/corrupt tail: stop replay here
        }
        let mut buf = Bytes::copy_from_slice(payload);
        if buf.remaining() < 4 {
            return Err(Error::Wal("record too short".into()));
        }
        let count = buf.get_u32_le() as usize;
        let mut batch = Vec::with_capacity(count);
        for _ in 0..count {
            batch.push(decode_update(&mut buf)?);
        }
        out.push(batch);
        pos += 8 + len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("risgraph-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn roundtrip_all_update_kinds() {
        let path = tmp("roundtrip");
        let batches = vec![
            vec![Update::InsEdge(Edge::new(1, 2, 3))],
            vec![Update::DelEdge(Edge::new(4, 5, 6)), Update::InsVertex(7)],
            vec![Update::DelVertex(8)],
        ];
        {
            let mut w = WalWriter::open(&path).unwrap();
            for b in &batches {
                w.append(b).unwrap();
            }
            w.sync().unwrap();
            assert_eq!(w.records(), 3);
        }
        assert_eq!(replay(&path).unwrap(), batches);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_replays_empty() {
        assert!(replay("/nonexistent/risgraph.wal").unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&[Update::InsVertex(1)]).unwrap();
            w.append(&[Update::InsVertex(2)]).unwrap();
            w.sync().unwrap();
        }
        // Chop bytes off the end: the second record is torn.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed, vec![vec![Update::InsVertex(1)]]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_payload_stops_replay() {
        let path = tmp("corrupt");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&[Update::InsVertex(1)]).unwrap();
            w.append(&[Update::InsVertex(2)]).unwrap();
            w.sync().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        // Flip a payload byte inside the second record.
        let n = data.len();
        data[n - 2] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed, vec![vec![Update::InsVertex(1)]]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_after_reopen_preserves_prefix() {
        let path = tmp("reopen");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&[Update::InsVertex(1)]).unwrap();
            w.sync().unwrap();
        }
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&[Update::InsVertex(2)]).unwrap();
            w.sync().unwrap();
        }
        assert_eq!(
            replay(&path).unwrap(),
            vec![vec![Update::InsVertex(1)], vec![Update::InsVertex(2)]]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_batch_roundtrips() {
        let path = tmp("empty");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&[]).unwrap();
            w.sync().unwrap();
        }
        assert_eq!(replay(&path).unwrap(), vec![Vec::<Update>::new()]);
        std::fs::remove_file(&path).unwrap();
    }
}
