//! The **tree and value store** (§2, §5): per-vertex computing state.
//!
//! Each vertex carries its current result value and a single *bottom-up*
//! parent pointer into the dependency tree — "each vertex maintains at
//! most one bottom-up pointer to its parent on the dependency tree. It
//! is efficient to classify updates by checking whether the updating
//! edge is a bottom-up pointer … parent pointer trees lock or atomically
//! update the modified vertex only once" (§5).
//!
//! Every vertex's state sits behind its own 1-byte `parking_lot::Mutex`,
//! so parallel push phases lock exactly one vertex per relaxation, as
//! the paper prescribes. Each state additionally carries the epoch stamp
//! of the last update that touched it: the *first* modification of a
//! vertex within an update returns `first_change = true` under the same
//! lock, which is how the engine captures exact pre-update values for
//! the history store even under concurrent relaxation.

use parking_lot::Mutex;
use risgraph_common::ids::{Edge, VertexId, Weight};

/// The engine's value type. Every monotonic algorithm the paper
/// evaluates (BFS/SSSP/SSWP/WCC, plus Reachability and label
/// propagation) is expressible over `u64`.
pub type Value = u64;

/// Sentinel for "no parent".
const NO_PARENT: u64 = u64::MAX;

/// One vertex's computing state: value + parent pointer (the parent's id
/// and the connecting edge's weight; the edge is `(parent → self)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexState {
    /// Current result value.
    pub value: Value,
    /// Parent vertex id in the dependency tree, `u64::MAX` when rootless.
    pub parent_src: VertexId,
    /// Weight of the parent edge.
    pub parent_data: Weight,
}

impl VertexState {
    /// The parent edge `(parent → v)` if a parent exists.
    #[inline]
    pub fn parent_edge(&self, v: VertexId) -> Option<Edge> {
        (self.parent_src != NO_PARENT).then(|| Edge::new(self.parent_src, v, self.parent_data))
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    state: VertexState,
    /// Epoch of the update that last modified this vertex.
    stamp: u64,
}

/// The tree & value store for one algorithm.
pub struct TreeStore {
    slots: Vec<Mutex<Slot>>,
    /// Initial values, cached so growth and resets don't re-query the
    /// algorithm object in hot paths.
    init: Box<dyn Fn(VertexId) -> Value + Send + Sync>,
}

impl TreeStore {
    /// Create a store over `0..capacity` with per-vertex initial values.
    pub fn new(capacity: usize, init: impl Fn(VertexId) -> Value + Send + Sync + 'static) -> Self {
        let mut s = TreeStore {
            slots: Vec::new(),
            init: Box::new(init),
        };
        s.ensure_capacity(capacity);
        s
    }

    /// Addressable range.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Grow to cover `0..n`; new vertices start at their initial value.
    pub fn ensure_capacity(&mut self, n: usize) {
        if n <= self.slots.len() {
            return;
        }
        let n = n.next_power_of_two().max(16);
        let start = self.slots.len() as u64;
        for v in start..n as u64 {
            self.slots.push(Mutex::new(Slot {
                state: VertexState {
                    value: (self.init)(v),
                    parent_src: NO_PARENT,
                    parent_data: 0,
                },
                stamp: 0,
            }));
        }
    }

    /// Snapshot the state of `v`.
    #[inline]
    pub fn get(&self, v: VertexId) -> VertexState {
        self.slots[v as usize].lock().state
    }

    /// Current value of `v`.
    #[inline]
    pub fn value(&self, v: VertexId) -> Value {
        self.slots[v as usize].lock().state.value
    }

    /// Parent edge of `v`, if any.
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<Edge> {
        self.slots[v as usize].lock().state.parent_edge(v)
    }

    /// Whether `e` is a bottom-up pointer of the dependency tree, i.e.
    /// `parent(e.dst) == e`. This is the O(1) classification primitive
    /// for deletions (§4 rule 2).
    #[inline]
    pub fn is_tree_edge(&self, e: Edge) -> bool {
        let s = self.slots[e.dst as usize].lock();
        s.state.parent_src == e.src && s.state.parent_data == e.data
    }

    /// Atomically: if `decide(current_value)` returns a replacement,
    /// install `(new_value, parent)` and return
    /// `(previous_state, first_change_in_this_epoch)`.
    ///
    /// This is the single-vertex-lock relaxation step of parallel push;
    /// the `first` flag is exact because stamp check and write happen
    /// under the same vertex lock.
    #[inline]
    pub fn try_update(
        &self,
        v: VertexId,
        parent: Option<(VertexId, Weight)>,
        epoch: u64,
        decide: impl FnOnce(Value) -> Option<Value>,
    ) -> Option<(VertexState, bool)> {
        let mut s = self.slots[v as usize].lock();
        let new = decide(s.state.value)?;
        let old = s.state;
        let first = s.stamp != epoch;
        s.stamp = epoch;
        s.state.value = new;
        match parent {
            Some((p, w)) => {
                s.state.parent_src = p;
                s.state.parent_data = w;
            }
            None => {
                s.state.parent_src = NO_PARENT;
                s.state.parent_data = 0;
            }
        }
        Some((old, first))
    }

    /// Forcibly reset `v` to its initial value with no parent; returns
    /// `(previous_state, first_change_in_this_epoch)` (deletion
    /// invalidation — §2's trimmed approximation starts from here).
    #[inline]
    pub fn reset(&self, v: VertexId, epoch: u64) -> (VertexState, bool) {
        let mut s = self.slots[v as usize].lock();
        let old = s.state;
        let first = s.stamp != epoch;
        s.stamp = epoch;
        s.state.value = (self.init)(v);
        s.state.parent_src = NO_PARENT;
        s.state.parent_data = 0;
        (old, first)
    }

    /// Restore a previously captured state (tests and rollbacks).
    #[inline]
    pub fn restore(&self, v: VertexId, state: VertexState) {
        self.slots[v as usize].lock().state = state;
    }

    /// The initial value of `v`.
    #[inline]
    pub fn init_value(&self, v: VertexId) -> Value {
        (self.init)(v)
    }

    /// Approximate heap bytes (Table 9 accounting).
    pub fn memory_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Mutex<Slot>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bfs_like(root: VertexId) -> TreeStore {
        TreeStore::new(8, move |v| if v == root { 0 } else { u64::MAX })
    }

    #[test]
    fn initial_values() {
        let t = bfs_like(3);
        assert_eq!(t.value(3), 0);
        assert_eq!(t.value(0), u64::MAX);
        assert_eq!(t.parent(0), None);
    }

    #[test]
    fn try_update_improves_and_sets_parent() {
        let t = bfs_like(0);
        let got = t.try_update(1, Some((0, 7)), 1, |cur| (1 < cur).then_some(1));
        let (old, first) = got.unwrap();
        assert_eq!(old.value, u64::MAX);
        assert!(first);
        assert_eq!(t.value(1), 1);
        assert_eq!(t.parent(1), Some(Edge::new(0, 1, 7)));
        // Second identical update must refuse (no improvement).
        assert!(t
            .try_update(1, Some((0, 7)), 1, |cur| (1 < cur).then_some(1))
            .is_none());
    }

    #[test]
    fn first_change_flag_tracks_epochs() {
        let t = bfs_like(0);
        let (_, first) = t.try_update(1, Some((0, 0)), 5, |_| Some(10)).unwrap();
        assert!(first);
        let (old, first) = t.try_update(1, Some((0, 0)), 5, |_| Some(9)).unwrap();
        assert!(!first, "same epoch: not the first change");
        assert_eq!(old.value, 10);
        let (_, first) = t.try_update(1, Some((0, 0)), 6, |_| Some(8)).unwrap();
        assert!(first, "new epoch: first change again");
    }

    #[test]
    fn is_tree_edge_checks_src_and_weight() {
        let t = bfs_like(0);
        t.try_update(2, Some((0, 5)), 1, |_| Some(1));
        assert!(t.is_tree_edge(Edge::new(0, 2, 5)));
        assert!(!t.is_tree_edge(Edge::new(0, 2, 6))); // weight differs
        assert!(!t.is_tree_edge(Edge::new(1, 2, 5))); // src differs
        assert!(!t.is_tree_edge(Edge::new(2, 0, 5))); // direction matters
    }

    #[test]
    fn reset_and_restore() {
        let t = bfs_like(0);
        t.try_update(1, Some((0, 0)), 1, |_| Some(1));
        let (old, first) = t.reset(1, 2);
        assert!(first);
        assert_eq!(old.value, 1);
        assert_eq!(t.value(1), u64::MAX);
        assert_eq!(t.parent(1), None);
        t.restore(1, old);
        assert_eq!(t.value(1), 1);
        assert_eq!(t.parent(1), Some(Edge::new(0, 1, 0)));
    }

    #[test]
    fn growth_initializes_new_vertices() {
        let mut t = bfs_like(0);
        t.ensure_capacity(100);
        assert!(t.capacity() >= 100);
        assert_eq!(t.value(99), u64::MAX);
        assert_eq!(t.value(0), 0, "existing state preserved");
    }

    #[test]
    fn concurrent_relaxations_keep_best() {
        use std::sync::Arc;
        let t = Arc::new(bfs_like(0));
        let mut handles = Vec::new();
        for cand in 1..=8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                t.try_update(5, Some((cand, 0)), 1, |cur| (cand < cur).then_some(cand));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Monotone: final value must be the minimum candidate.
        assert_eq!(t.value(5), 1);
        assert_eq!(t.parent(5), Some(Edge::new(1, 5, 0)));
    }

    #[test]
    fn exactly_one_first_change_under_concurrency() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let t = Arc::new(bfs_like(0));
        let firsts = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for cand in 1..=8u64 {
            let t = Arc::clone(&t);
            let firsts = Arc::clone(&firsts);
            handles.push(std::thread::spawn(move || {
                if let Some((_, first)) =
                    t.try_update(5, Some((cand, 0)), 42, |cur| (cand < cur).then_some(cand))
                {
                    if first {
                        firsts.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(firsts.load(Ordering::SeqCst), 1);
    }
}
