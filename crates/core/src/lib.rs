//! # risgraph-core — the RisGraph engine
//!
//! A from-scratch Rust reproduction of the RisGraph system (SIGMOD'21):
//! real-time per-update incremental analysis of monotonic algorithms on
//! evolving graphs, with **localized data access** (§3) and
//! **inter-update parallelism** (§4).
//!
//! Layering (bottom-up, mirroring Figure 1):
//!
//! * [`tree`] — the tree & value store: per-vertex results + parent
//!   pointers of the dependency forest;
//! * [`pool`] — a persistent fork-join worker pool;
//! * [`classifier`] + [`push`] — Hybrid Parallel Mode push propagation;
//! * [`engine`] — the localized execution engine: incremental
//!   insert/delete repair plus the safe/unsafe concurrency-control
//!   classification;
//! * [`history`] — versioned result snapshots with release-based GC;
//! * [`wal`] — optional durability via group-committed write-ahead logs;
//! * [`replication`] — leader→follower shipping of the merged,
//!   stamp-sorted epoch records: the leader-side feed and the
//!   follower-side replica apply path;
//! * [`scheduler`] — the tail-latency epoch-size controller;
//! * [`server`] — the interactive tier: sessions, the epoch loop schema,
//!   transactions, multi-algorithm maintenance.
//!
//! ## Quick start
//!
//! ```
//! use risgraph_core::engine::Engine;
//! use risgraph_algorithms::Bfs;
//! use risgraph_common::ids::{Edge, Update};
//!
//! let engine: Engine = Engine::with_algorithm(Bfs::new(0), 1024);
//! engine.load_edges(&[(0, 1, 0), (1, 2, 0)]);
//! assert_eq!(engine.value(0, 2), 2);
//!
//! // A per-update incremental insertion:
//! engine.apply(&Update::InsEdge(Edge::new(0, 2, 0))).unwrap();
//! assert_eq!(engine.value(0, 2), 1);
//! ```

pub mod affected;
pub mod classifier;
pub mod engine;
pub mod history;
pub mod pool;
pub mod push;
pub mod replication;
pub mod scheduler;
pub mod server;
pub mod tree;
pub mod wal;

pub use affected::{
    analyze as analyze_affected_area, footprint as affected_footprint, AffectedAreaReport,
};
pub use classifier::{LinearClassifier, PushMode};
pub use engine::{ChangeRecord, ChangeSet, DynAlgorithm, Engine, EngineConfig, SafeApply, Safety};
pub use history::HistoryStore;
pub use replication::{Replica, ReplicationFeed};
pub use scheduler::{Scheduler, SchedulerConfig};
pub use server::{Applied, Op, Reply, Server, ServerConfig, Session};
pub use tree::{TreeStore, Value, VertexState};
