//! Road-network generation (§7's non-power-law case).
//!
//! The paper's USA road network (23.9M vertices, 28.9M edges —
//! average degree ≈ 1.2 per direction, enormous diameter) stresses the
//! opposite regime from power-law graphs: deletions invalidate long
//! thin subtrees and recovery walks long paths. A grid with randomly
//! removed streets and a sprinkling of diagonal "highways" reproduces
//! both properties.

use rand::{rngs::StdRng, Rng, SeedableRng};
use risgraph_common::ids::{VertexId, Weight};

/// Road-grid generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct RoadConfig {
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Fraction of grid street segments kept (removal creates detours).
    pub keep_fraction: f64,
    /// Number of extra diagonal highway segments.
    pub highways: usize,
    /// RNG seed.
    pub seed: u64,
    /// Maximum segment weight (travel time), drawn from `1..=max`.
    pub max_weight: Weight,
}

impl Default for RoadConfig {
    fn default() -> Self {
        RoadConfig {
            width: 128,
            height: 128,
            keep_fraction: 0.92,
            highways: 64,
            seed: 7,
            max_weight: 16,
        }
    }
}

impl RoadConfig {
    /// Number of vertices (width × height).
    pub fn num_vertices(&self) -> usize {
        self.width * self.height
    }

    fn vid(&self, x: usize, y: usize) -> VertexId {
        (y * self.width + x) as VertexId
    }

    /// Generate bidirectional road segments (both directions emitted,
    /// as road graphs store them).
    pub fn generate(&self) -> Vec<(VertexId, VertexId, Weight)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges = Vec::new();
        let push_both =
            |edges: &mut Vec<(VertexId, VertexId, Weight)>, a: VertexId, b: VertexId, w: Weight| {
                edges.push((a, b, w));
                edges.push((b, a, w));
            };
        for y in 0..self.height {
            for x in 0..self.width {
                if x + 1 < self.width && rng.gen_bool(self.keep_fraction) {
                    let w = rng.gen_range(1..=self.max_weight);
                    push_both(&mut edges, self.vid(x, y), self.vid(x + 1, y), w);
                }
                if y + 1 < self.height && rng.gen_bool(self.keep_fraction) {
                    let w = rng.gen_range(1..=self.max_weight);
                    push_both(&mut edges, self.vid(x, y), self.vid(x, y + 1), w);
                }
            }
        }
        for _ in 0..self.highways {
            let (x0, y0) = (rng.gen_range(0..self.width), rng.gen_range(0..self.height));
            let (x1, y1) = (rng.gen_range(0..self.width), rng.gen_range(0..self.height));
            let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
            if dist == 0 {
                continue;
            }
            // Highways are fast: weight ~ distance / 4, at least 1.
            let w = (dist as u64 * self.max_weight / 4).max(1);
            push_both(&mut edges, self.vid(x0, y0), self.vid(x1, y1), w);
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_degree() {
        let cfg = RoadConfig {
            width: 32,
            height: 32,
            highways: 0,
            ..RoadConfig::default()
        };
        let edges = cfg.generate();
        let mut deg = vec![0usize; cfg.num_vertices()];
        for &(s, _, _) in &edges {
            deg[s as usize] += 1;
        }
        // Grid degree is at most 4 per direction.
        assert!(deg.iter().all(|&d| d <= 4));
        assert!(edges.len() > cfg.num_vertices()); // connected-ish grid
    }

    #[test]
    fn edges_are_bidirectional() {
        let cfg = RoadConfig {
            width: 16,
            height: 16,
            ..RoadConfig::default()
        };
        let edges = cfg.generate();
        let set: std::collections::HashSet<(u64, u64, u64)> = edges.iter().copied().collect();
        for &(s, d, w) in &edges {
            assert!(set.contains(&(d, s, w)), "missing reverse of {s}->{d}");
        }
    }

    #[test]
    fn deterministic() {
        let cfg = RoadConfig::default();
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn large_diameter_compared_to_power_law() {
        // Compute BFS depth from corner on a pure grid: must be ~width+height.
        let cfg = RoadConfig {
            width: 24,
            height: 24,
            keep_fraction: 1.0,
            highways: 0,
            ..RoadConfig::default()
        };
        let edges = cfg.generate();
        let n = cfg.num_vertices();
        let mut adj = vec![Vec::new(); n];
        for &(s, d, _) in &edges {
            adj[s as usize].push(d);
        }
        let mut dist = vec![usize::MAX; n];
        dist[0] = 0;
        let mut q = std::collections::VecDeque::from([0u64]);
        let mut max_d = 0;
        while let Some(u) = q.pop_front() {
            for &v in &adj[u as usize] {
                if dist[v as usize] == usize::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    max_d = max_d.max(dist[v as usize]);
                    q.push_back(v);
                }
            }
        }
        assert_eq!(max_d, 46, "corner-to-corner manhattan distance");
    }
}
