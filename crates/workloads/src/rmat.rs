//! R-MAT (recursive matrix) power-law graph generation.
//!
//! R-MAT/Kronecker generators (Leskovec et al., cited by the paper as
//! \[46\]) produce the skewed degree distributions and small diameters of
//! the social/web graphs in Table 3. We use the classic (a,b,c,d)
//! quadrant recursion with per-level probability smoothing.

use rand::{rngs::StdRng, Rng, SeedableRng};
use risgraph_common::ids::{VertexId, Weight};

/// R-MAT generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex (|E| = edge_factor × |V|).
    pub edge_factor: f64,
    /// Quadrant probabilities; must sum to ~1. The classic skewed
    /// setting (0.57, 0.19, 0.19, 0.05) matches social-network skew.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// RNG seed (generation is deterministic given the config).
    pub seed: u64,
    /// Largest weight to draw (weights are `1..=max_weight`; 0 disables
    /// weights — BFS/WCC workloads).
    pub max_weight: Weight,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 14,
            edge_factor: 16.0,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 42,
            max_weight: 0,
        }
    }
}

impl RmatConfig {
    /// Number of vertices (2^scale).
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Number of edges to generate.
    pub fn num_edges(&self) -> usize {
        (self.num_vertices() as f64 * self.edge_factor) as usize
    }

    /// Generate the edge list. Self-loops are permitted (real graphs
    /// contain them; the engine treats them as harmless). Duplicates
    /// occur naturally, as in the raw datasets.
    pub fn generate(&self) -> Vec<(VertexId, VertexId, Weight)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_edges = self.num_edges();
        let mut edges = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            let (src, dst) = self.sample_cell(&mut rng);
            let w = if self.max_weight == 0 {
                0
            } else {
                rng.gen_range(1..=self.max_weight)
            };
            edges.push((src, dst, w));
        }
        edges
    }

    fn sample_cell(&self, rng: &mut StdRng) -> (VertexId, VertexId) {
        let mut src = 0u64;
        let mut dst = 0u64;
        for _ in 0..self.scale {
            src <<= 1;
            dst <<= 1;
            // Per-level noise keeps the degree sequence from collapsing
            // onto exact powers (standard "smoothed" R-MAT).
            let noise = 0.9 + 0.2 * rng.gen::<f64>();
            let a = self.a * noise;
            let b = self.b * noise;
            let c = self.c * noise;
            let d = (1.0 - self.a - self.b - self.c) * noise;
            let total = a + b + c + d;
            let r = rng.gen::<f64>() * total;
            if r < a {
                // top-left: (0,0)
            } else if r < a + b {
                dst |= 1;
            } else if r < a + b + c {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        (src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degree_histogram(edges: &[(u64, u64, u64)], n: usize) -> Vec<usize> {
        let mut deg = vec![0usize; n];
        for &(s, _, _) in edges {
            deg[s as usize] += 1;
        }
        deg
    }

    #[test]
    fn generates_requested_counts() {
        let cfg = RmatConfig {
            scale: 10,
            edge_factor: 8.0,
            ..RmatConfig::default()
        };
        let edges = cfg.generate();
        assert_eq!(edges.len(), 8192);
        assert!(edges.iter().all(|&(s, d, _)| s < 1024 && d < 1024));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RmatConfig::default();
        assert_eq!(cfg.generate(), cfg.generate());
        let other = RmatConfig {
            seed: 43,
            ..RmatConfig::default()
        };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn degrees_are_skewed() {
        let cfg = RmatConfig {
            scale: 12,
            edge_factor: 16.0,
            ..RmatConfig::default()
        };
        let edges = cfg.generate();
        let mut deg = degree_histogram(&edges, cfg.num_vertices());
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = deg.iter().sum();
        let top_1pct: usize = deg[..deg.len() / 100].iter().sum();
        // Power-law: the top 1% of vertices must carry a large share of
        // edges (uniform graphs would carry ~1%).
        assert!(
            top_1pct * 100 / total >= 15,
            "top 1% carries only {}%",
            top_1pct * 100 / total
        );
    }

    #[test]
    fn weights_respect_bounds() {
        let cfg = RmatConfig {
            scale: 8,
            edge_factor: 4.0,
            max_weight: 7,
            ..RmatConfig::default()
        };
        assert!(cfg.generate().iter().all(|&(_, _, w)| (1..=7).contains(&w)));
        let unweighted = RmatConfig {
            scale: 8,
            edge_factor: 4.0,
            max_weight: 0,
            ..RmatConfig::default()
        };
        assert!(unweighted.generate().iter().all(|&(_, _, w)| w == 0));
    }
}
