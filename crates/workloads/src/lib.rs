//! Workload generation for the RisGraph reproduction.
//!
//! The paper evaluates on ten real graphs (Table 3) plus the USA road
//! network (§7). Those datasets are multi-gigabyte downloads; this
//! reproduction regenerates their *relevant structure* synthetically
//! (see DESIGN.md §3):
//!
//! * [`rmat`] — R-MAT/Kronecker power-law graphs: skewed degrees, small
//!   effective diameter — the properties RisGraph's localized access
//!   and safe-update classification exploit;
//! * [`road`] — grid-based road networks: bounded degree, huge
//!   diameter — the §7 non-power-law stress case;
//! * [`datasets`] — a registry mirroring Table 3's shapes (|V|, |E|
//!   ratios, temporality, roots) at a configurable scale factor;
//! * [`stream`] — the §6.1 update-stream protocol: pre-populate a
//!   fraction of edges, split the rest into insertion/deletion sets
//!   (timestamp-ordered when the dataset is temporal), alternate them
//!   at a configurable insertion ratio, optionally pack transactions.

pub mod datasets;
pub mod io;
pub mod rmat;
pub mod road;
pub mod stream;

pub use datasets::{Dataset, DatasetSpec, TABLE3};
pub use rmat::RmatConfig;
pub use stream::{StreamConfig, UpdateStream};
