//! The Table 3 dataset registry, regenerated synthetically.
//!
//! Each entry preserves the dataset's *shape*: the edges-per-vertex
//! ratio, the graph family (power-law social/web vs. collaboration
//! vs. road), temporality (timestamped streams split oldest/newest per
//! §6.1), and the evaluation root. Absolute sizes scale down by a
//! configurable factor so experiments run on one machine; DESIGN.md §3
//! documents the substitution.

use risgraph_common::ids::{VertexId, Weight};

use crate::rmat::RmatConfig;
use crate::road::RoadConfig;

/// Graph family, controlling which generator is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Power-law (social, web, interaction, transaction) — R-MAT.
    PowerLaw,
    /// Road network (§7) — grid generator.
    Road,
}

/// A Table 3 dataset descriptor.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Full name as the paper prints it.
    pub name: &'static str,
    /// Two-letter abbreviation (Table 3's "Abbr.").
    pub abbr: &'static str,
    /// Vertex count in the original dataset.
    pub paper_vertices: u64,
    /// Edge count in the original dataset.
    pub paper_edges: u64,
    /// Whether the original is timestamped ("Temporal" column).
    pub temporal: bool,
    /// Graph family.
    pub family: Family,
    /// Evaluation root for BFS/SSSP/SSWP ("Root" column).
    pub root: VertexId,
    /// R-MAT skew parameter `a` (ignored for roads); webs are more
    /// skewed than social graphs.
    pub skew_a: f64,
}

/// The ten Table 3 datasets plus §7's USA road network.
pub const TABLE3: &[DatasetSpec] = &[
    DatasetSpec {
        name: "HepPh",
        abbr: "PH",
        paper_vertices: 281_000,
        paper_edges: 4_600_000,
        temporal: true,
        family: Family::PowerLaw,
        root: 1,
        skew_a: 0.45,
    },
    DatasetSpec {
        name: "Wiki",
        abbr: "WK",
        paper_vertices: 2_130_000,
        paper_edges: 9_000_000,
        temporal: true,
        family: Family::PowerLaw,
        root: 0,
        skew_a: 0.52,
    },
    DatasetSpec {
        name: "Flickr",
        abbr: "FC",
        paper_vertices: 2_300_000,
        paper_edges: 33_100_000,
        temporal: true,
        family: Family::PowerLaw,
        root: 1,
        skew_a: 0.57,
    },
    DatasetSpec {
        name: "StackOverflow",
        abbr: "SO",
        paper_vertices: 2_600_000,
        paper_edges: 63_500_000,
        temporal: true,
        family: Family::PowerLaw,
        root: 0,
        skew_a: 0.55,
    },
    DatasetSpec {
        name: "BitCoin",
        abbr: "BC",
        paper_vertices: 24_600_000,
        paper_edges: 123_000_000,
        temporal: true,
        family: Family::PowerLaw,
        root: 2,
        skew_a: 0.50,
    },
    DatasetSpec {
        name: "SNB-SF-1000",
        abbr: "SB",
        paper_vertices: 3_140_000,
        paper_edges: 202_000_000,
        temporal: true,
        family: Family::PowerLaw,
        root: 0,
        skew_a: 0.55,
    },
    DatasetSpec {
        name: "LinkBench",
        abbr: "LB",
        paper_vertices: 128_000_000,
        paper_edges: 560_000_000,
        temporal: true,
        family: Family::PowerLaw,
        root: 0,
        skew_a: 0.55,
    },
    DatasetSpec {
        name: "Twitter-2010",
        abbr: "TT",
        paper_vertices: 41_700_000,
        paper_edges: 1_470_000_000,
        temporal: false,
        family: Family::PowerLaw,
        root: 0,
        skew_a: 0.57,
    },
    DatasetSpec {
        name: "Subdomain",
        abbr: "SD",
        paper_vertices: 102_000_000,
        paper_edges: 2_040_000_000,
        temporal: false,
        family: Family::PowerLaw,
        root: 0,
        skew_a: 0.60,
    },
    DatasetSpec {
        name: "UK-2007",
        abbr: "UK",
        paper_vertices: 106_000_000,
        paper_edges: 3_740_000_000,
        temporal: false,
        family: Family::PowerLaw,
        root: 0,
        skew_a: 0.60,
    },
    DatasetSpec {
        name: "USA-road",
        abbr: "RD",
        paper_vertices: 23_900_000,
        paper_edges: 28_900_000,
        temporal: false,
        family: Family::Road,
        root: 0,
        skew_a: 0.25,
    },
];

/// Look up a dataset by abbreviation.
pub fn by_abbr(abbr: &str) -> Option<&'static DatasetSpec> {
    TABLE3.iter().find(|d| d.abbr == abbr)
}

/// A generated dataset instance.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The spec this instance was generated from.
    pub spec: DatasetSpec,
    /// Vertex-id upper bound of the generated graph.
    pub num_vertices: usize,
    /// Edge list, ordered by generation "time" (index = timestamp for
    /// temporal datasets).
    pub edges: Vec<(VertexId, VertexId, Weight)>,
    /// Root vertex for rooted algorithms.
    pub root: VertexId,
}

impl DatasetSpec {
    /// The paper dataset's edges-per-vertex ratio.
    pub fn edge_factor(&self) -> f64 {
        self.paper_edges as f64 / self.paper_vertices as f64
    }

    /// Generate an instance with roughly `2^scale` vertices, preserving
    /// the original edge-factor, family and skew. `max_weight = 0`
    /// generates an unweighted graph.
    pub fn generate(&self, scale: u32, max_weight: Weight) -> Dataset {
        match self.family {
            Family::PowerLaw => {
                let cfg = RmatConfig {
                    scale,
                    edge_factor: self.edge_factor().clamp(2.0, 40.0),
                    a: self.skew_a,
                    b: (1.0 - self.skew_a) * 0.45,
                    c: (1.0 - self.skew_a) * 0.45,
                    seed: 0xDA7A ^ self.abbr.as_bytes()[0] as u64,
                    max_weight,
                };
                Dataset {
                    spec: *self,
                    num_vertices: cfg.num_vertices(),
                    edges: cfg.generate(),
                    root: self.root,
                }
            }
            Family::Road => {
                let side = 1usize << (scale / 2);
                let cfg = RoadConfig {
                    width: side,
                    height: side,
                    seed: 0x20AD,
                    max_weight: max_weight.max(1),
                    ..RoadConfig::default()
                };
                Dataset {
                    spec: *self,
                    num_vertices: cfg.num_vertices(),
                    edges: cfg.generate(),
                    root: self.root,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table3() {
        assert_eq!(TABLE3.len(), 11);
        let tt = by_abbr("TT").unwrap();
        assert_eq!(tt.name, "Twitter-2010");
        assert!(!tt.temporal);
        assert_eq!(tt.root, 0);
        assert!((tt.edge_factor() - 35.25).abs() < 0.1);
        assert!(by_abbr("XX").is_none());
    }

    #[test]
    fn generation_preserves_edge_factor() {
        let d = by_abbr("WK").unwrap().generate(10, 0);
        assert_eq!(d.num_vertices, 1024);
        let factor = d.edges.len() as f64 / d.num_vertices as f64;
        assert!((factor - by_abbr("WK").unwrap().edge_factor()).abs() < 0.5);
    }

    #[test]
    fn road_dataset_uses_grid() {
        let d = by_abbr("RD").unwrap().generate(10, 8);
        assert_eq!(d.num_vertices, 1024); // 32×32
        let factor = d.edges.len() as f64 / d.num_vertices as f64;
        assert!(factor < 6.0, "road graphs have bounded degree");
    }

    #[test]
    fn weighted_generation() {
        let d = by_abbr("PH").unwrap().generate(8, 100);
        assert!(d.edges.iter().all(|&(_, _, w)| (1..=100).contains(&w)));
    }
}
