//! Update-stream construction (§6.1).
//!
//! The paper's protocol: "We load 90% edges first, select 10% edges as
//! the deletion updates from loaded edges, and treat the remaining
//! (10%) edges as the insertion updates. If datasets are timestamped,
//! we choose the latest 10% as the insertion set and the oldest 10% as
//! the deletion set; otherwise, we randomly select edges as updates.
//! The ratio of insertions to deletions is 50% by default, and we
//! alternately request insertions and deletions of each edge."
//!
//! [`StreamConfig::build`] implements exactly that, with the knobs the
//! robustness experiments vary: pre-load fraction (Table 5's sliding
//! window), insertion percentage (Table 6), and transaction packing
//! (Table 7).

use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use risgraph_common::ids::{Edge, Update, VertexId, Weight};

/// Stream construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Fraction of edges pre-populated before streaming (0.9 default;
    /// Table 5 evaluates 0.1 and 0.5).
    pub preload_fraction: f64,
    /// Fraction of updates that are insertions (0.5 default; Table 6
    /// sweeps 0..=1).
    pub insertion_fraction: f64,
    /// Treat the edge order as timestamps (temporal datasets).
    pub timestamped: bool,
    /// Shuffle seed for non-temporal selection.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            preload_fraction: 0.9,
            insertion_fraction: 0.5,
            timestamped: false,
            seed: 99,
        }
    }
}

/// A built workload: the pre-load set plus the update sequence.
#[derive(Debug, Clone)]
pub struct UpdateStream {
    /// Edges loaded before measurement starts.
    pub preload: Vec<(VertexId, VertexId, Weight)>,
    /// The measured update sequence.
    pub updates: Vec<Update>,
}

impl StreamConfig {
    /// Build a stream from a dataset's edge list (ordered by time when
    /// `timestamped`).
    pub fn build(&self, edges: &[(VertexId, VertexId, Weight)]) -> UpdateStream {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = edges.len();
        let preload_n = ((n as f64) * self.preload_fraction) as usize;

        let mut order: Vec<usize> = (0..n).collect();
        if !self.timestamped {
            order.shuffle(&mut rng);
        }
        // Pre-load = the oldest `preload_n` (timestamped) or a random
        // subset of that size.
        let preload_idx = &order[..preload_n];
        let stream_idx = &order[preload_n..]; // insertion candidates

        let preload: Vec<_> = preload_idx.iter().map(|&i| edges[i]).collect();

        // Insertions: the remaining (newest) edges. Deletions: from the
        // loaded set — the oldest when timestamped, random otherwise.
        let insertions: Vec<Edge> = stream_idx
            .iter()
            .map(|&i| Edge::new(edges[i].0, edges[i].1, edges[i].2))
            .collect();
        let mut deletion_pool: Vec<usize> = preload_idx.to_vec();
        if !self.timestamped {
            deletion_pool.shuffle(&mut rng);
        }
        let deletions: Vec<Edge> = deletion_pool
            .iter()
            .take(insertions.len().min(preload_n))
            .map(|&i| Edge::new(edges[i].0, edges[i].1, edges[i].2))
            .collect();

        // Interleave by the configured ratio using an error-diffusion
        // accumulator (exactly alternating at 0.5, as the paper does).
        let total = if self.insertion_fraction >= 1.0 {
            insertions.len()
        } else if self.insertion_fraction <= 0.0 {
            deletions.len()
        } else {
            // Stop when either pool runs dry at the requested mix.
            let by_ins = (insertions.len() as f64 / self.insertion_fraction) as usize;
            let by_del = (deletions.len() as f64 / (1.0 - self.insertion_fraction)) as usize;
            by_ins.min(by_del)
        };
        let mut updates = Vec::with_capacity(total);
        let (mut ii, mut di) = (0usize, 0usize);
        let mut acc = 0.0f64;
        for _ in 0..total {
            acc += self.insertion_fraction;
            if acc >= 1.0 && ii < insertions.len() {
                acc -= 1.0;
                updates.push(Update::InsEdge(insertions[ii]));
                ii += 1;
            } else if di < deletions.len() {
                updates.push(Update::DelEdge(deletions[di]));
                di += 1;
            } else if ii < insertions.len() {
                updates.push(Update::InsEdge(insertions[ii]));
                ii += 1;
            }
        }
        UpdateStream { preload, updates }
    }
}

impl UpdateStream {
    /// Pack the update sequence into fixed-size transactions (Table 7).
    pub fn into_transactions(&self, txn_size: usize) -> Vec<Vec<Update>> {
        self.updates
            .chunks(txn_size.max(1))
            .map(|c| c.to_vec())
            .collect()
    }

    /// Number of vertices referenced anywhere in the workload.
    pub fn vertex_upper_bound(&self) -> u64 {
        let from_preload = self
            .preload
            .iter()
            .map(|&(s, d, _)| s.max(d) + 1)
            .max()
            .unwrap_or(0);
        let from_updates = self
            .updates
            .iter()
            .map(|u| match u {
                Update::InsEdge(e) | Update::DelEdge(e) => e.src.max(e.dst) + 1,
                Update::InsVertex(v) | Update::DelVertex(v) => v + 1,
            })
            .max()
            .unwrap_or(0);
        from_preload.max(from_updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(n: u64) -> Vec<(u64, u64, u64)> {
        (0..n).map(|i| (i, (i + 1) % n, i % 5)).collect()
    }

    #[test]
    fn default_split_is_90_10_alternating() {
        let es = edges(1000);
        let s = StreamConfig::default().build(&es);
        assert_eq!(s.preload.len(), 900);
        let ins = s
            .updates
            .iter()
            .filter(|u| matches!(u, Update::InsEdge(_)))
            .count();
        let del = s.updates.len() - ins;
        assert!((ins as i64 - del as i64).abs() <= 1, "ins={ins} del={del}");
        // Alternating at 50%.
        for pair in s.updates.chunks(2) {
            if pair.len() == 2 {
                let kinds = (
                    matches!(pair[0], Update::InsEdge(_)),
                    matches!(pair[1], Update::InsEdge(_)),
                );
                assert!(kinds.0 != kinds.1, "must alternate: {pair:?}");
            }
        }
    }

    #[test]
    fn timestamped_uses_oldest_for_deletion_newest_for_insertion() {
        let es = edges(100);
        let s = StreamConfig {
            timestamped: true,
            ..StreamConfig::default()
        }
        .build(&es);
        // Insertions come from indexes 90.. (the newest).
        let first_ins = s
            .updates
            .iter()
            .find_map(|u| match u {
                Update::InsEdge(e) => Some(*e),
                _ => None,
            })
            .unwrap();
        assert!(first_ins.src >= 90);
        // Deletions come from the oldest loaded edges.
        let first_del = s
            .updates
            .iter()
            .find_map(|u| match u {
                Update::DelEdge(e) => Some(*e),
                _ => None,
            })
            .unwrap();
        assert!(first_del.src < 10);
    }

    #[test]
    fn deletions_reference_loaded_edges() {
        let es = edges(500);
        let s = StreamConfig::default().build(&es);
        let loaded: std::collections::HashSet<(u64, u64, u64)> =
            s.preload.iter().copied().collect();
        for u in &s.updates {
            if let Update::DelEdge(e) = u {
                assert!(
                    loaded.contains(&(e.src, e.dst, e.data)),
                    "deletion of unloaded edge {e:?}"
                );
            }
        }
    }

    #[test]
    fn insertion_fraction_extremes() {
        let es = edges(200);
        let all_ins = StreamConfig {
            insertion_fraction: 1.0,
            ..StreamConfig::default()
        }
        .build(&es);
        assert!(all_ins
            .updates
            .iter()
            .all(|u| matches!(u, Update::InsEdge(_))));
        let all_del = StreamConfig {
            insertion_fraction: 0.0,
            ..StreamConfig::default()
        }
        .build(&es);
        assert!(all_del
            .updates
            .iter()
            .all(|u| matches!(u, Update::DelEdge(_))));
    }

    #[test]
    fn skewed_fraction_approximates_ratio() {
        let es = edges(4000);
        let s = StreamConfig {
            insertion_fraction: 0.75,
            ..StreamConfig::default()
        }
        .build(&es);
        let ins = s
            .updates
            .iter()
            .filter(|u| matches!(u, Update::InsEdge(_)))
            .count();
        let frac = ins as f64 / s.updates.len() as f64;
        assert!((frac - 0.75).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn sliding_window_fractions() {
        let es = edges(1000);
        for f in [0.1, 0.5, 0.9] {
            let s = StreamConfig {
                preload_fraction: f,
                ..StreamConfig::default()
            }
            .build(&es);
            assert_eq!(s.preload.len(), (1000.0 * f) as usize);
            assert!(!s.updates.is_empty());
        }
    }

    #[test]
    fn transaction_packing() {
        let es = edges(100);
        let s = StreamConfig::default().build(&es);
        let txns = s.into_transactions(4);
        assert!(txns.iter().rev().skip(1).all(|t| t.len() == 4));
        let total: usize = txns.iter().map(|t| t.len()).sum();
        assert_eq!(total, s.updates.len());
    }

    #[test]
    fn vertex_upper_bound_covers_everything() {
        let es = vec![(5u64, 3u64, 0u64), (7, 2, 0)];
        let s = StreamConfig {
            preload_fraction: 0.5,
            ..StreamConfig::default()
        }
        .build(&es);
        assert!(s.vertex_upper_bound() >= 8);
    }
}

/// Mix vertex lifecycle operations into an edge-update stream (the
/// Interactive API also serves `ins_vertex`/`del_vertex`; LinkBench-
/// style interactive workloads contain them). Every `1/vertex_op_rate`
/// updates, an `InsVertex` of a fresh id is injected, and the same id is
/// deleted again a few positions later (isolated by construction).
pub fn with_vertex_ops(stream: &UpdateStream, vertex_op_rate: usize, id_base: u64) -> Vec<Update> {
    if vertex_op_rate == 0 {
        return stream.updates.clone();
    }
    let mut out =
        Vec::with_capacity(stream.updates.len() + stream.updates.len() / vertex_op_rate * 2);
    let mut next_id = id_base;
    for (i, u) in stream.updates.iter().enumerate() {
        out.push(*u);
        if (i + 1) % vertex_op_rate == 0 {
            out.push(Update::InsVertex(next_id));
            out.push(Update::DelVertex(next_id));
            next_id += 1;
        }
    }
    out
}

#[cfg(test)]
mod vertex_op_tests {
    use super::*;

    #[test]
    fn vertex_ops_are_injected_in_pairs() {
        let es: Vec<(u64, u64, u64)> = (0..100).map(|i| (i, i + 1, 0)).collect();
        let s = StreamConfig::default().build(&es);
        let mixed = with_vertex_ops(&s, 3, 10_000);
        let ins = mixed
            .iter()
            .filter(|u| matches!(u, Update::InsVertex(_)))
            .count();
        let del = mixed
            .iter()
            .filter(|u| matches!(u, Update::DelVertex(_)))
            .count();
        assert_eq!(ins, del);
        assert!(ins > 0);
        // Ids are fresh (outside the edge id space).
        for u in &mixed {
            if let Update::InsVertex(v) = u {
                assert!(*v >= 10_000);
            }
        }
        // Rate 0 disables injection.
        assert_eq!(with_vertex_ops(&s, 0, 0).len(), s.updates.len());
    }
}
