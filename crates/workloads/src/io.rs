//! Edge-list I/O: the formats real deployments feed the system with.
//!
//! * [`read_text`] — SNAP-style whitespace-separated text
//!   (`src dst [weight] [timestamp]`, `#` comments), the format of the
//!   paper's SNAP/network-repository datasets (Table 3);
//! * [`write_binary`] / [`read_binary`] — a compact little-endian binary
//!   format (magic + count + 24-byte records) for fast reloads, matching
//!   the paper's raw-data accounting of 24 B per weighted edge.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use risgraph_common::ids::{VertexId, Weight};
use risgraph_common::{Error, Result};

const MAGIC: &[u8; 8] = b"RISGRPH1";

/// Parse SNAP-style text: one edge per line, `#`/`%` comments, 2–4
/// whitespace-separated fields (`src dst [weight] [timestamp]`).
/// Lines with fewer than two numeric fields are skipped; a timestamped
/// file keeps its line order (the stream builder treats order as time).
pub fn read_text(path: impl AsRef<Path>) -> Result<Vec<(VertexId, VertexId, Weight)>> {
    let file = std::fs::File::open(path)?;
    let mut edges = Vec::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let (Some(s), Some(d)) = (fields.next(), fields.next()) else {
            continue;
        };
        let (Ok(s), Ok(d)) = (s.parse::<VertexId>(), d.parse::<VertexId>()) else {
            continue;
        };
        let w = fields
            .next()
            .and_then(|f| f.parse::<Weight>().ok())
            .unwrap_or(0);
        edges.push((s, d, w));
    }
    Ok(edges)
}

/// Write the compact binary format (atomic only at whole-file level;
/// callers writing checkpoints should write to a temp path and rename).
pub fn write_binary(path: impl AsRef<Path>, edges: &[(VertexId, VertexId, Weight)]) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    w.write_all(&(edges.len() as u64).to_le_bytes())?;
    for &(s, d, weight) in edges {
        w.write_all(&s.to_le_bytes())?;
        w.write_all(&d.to_le_bytes())?;
        w.write_all(&weight.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Read the compact binary format back.
pub fn read_binary(path: impl AsRef<Path>) -> Result<Vec<(VertexId, VertexId, Weight)>> {
    let mut file = std::fs::File::open(path)?;
    let mut header = [0u8; 16];
    file.read_exact(&mut header)
        .map_err(|_| Error::Wal("edge file too short for header".into()))?;
    if &header[..8] != MAGIC {
        return Err(Error::Wal("bad magic: not a risgraph edge file".into()));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
    let mut body = Vec::new();
    file.read_to_end(&mut body)?;
    if body.len() < count * 24 {
        return Err(Error::Wal(format!(
            "edge file truncated: {} records promised, {} bytes present",
            count,
            body.len()
        )));
    }
    let mut edges = Vec::with_capacity(count);
    for i in 0..count {
        let off = i * 24;
        edges.push((
            u64::from_le_bytes(body[off..off + 8].try_into().unwrap()),
            u64::from_le_bytes(body[off + 8..off + 16].try_into().unwrap()),
            u64::from_le_bytes(body[off + 16..off + 24].try_into().unwrap()),
        ));
    }
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("risgraph-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn text_parsing_handles_comments_weights_and_junk() {
        let path = tmp("text.txt");
        std::fs::write(
            &path,
            "# SNAP comment\n% matrix-market comment\n\
             0 1\n1 2 7\n2 3 9 1620000000\n\
             malformed line\n4\n  5   6  \n",
        )
        .unwrap();
        let edges = read_text(&path).unwrap();
        assert_eq!(edges, vec![(0, 1, 0), (1, 2, 7), (2, 3, 9), (5, 6, 0)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn binary_roundtrip() {
        let path = tmp("edges.bin");
        let edges: Vec<(u64, u64, u64)> = (0..1000).map(|i| (i, i * 7 % 100, i % 13)).collect();
        write_binary(&path, &edges).unwrap();
        assert_eq!(read_binary(&path).unwrap(), edges);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn binary_rejects_bad_magic_and_truncation() {
        let path = tmp("bad.bin");
        std::fs::write(&path, b"NOTMAGIC........").unwrap();
        assert!(read_binary(&path).is_err());
        let edges = vec![(1u64, 2u64, 3u64); 10];
        write_binary(&path, &edges).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        assert!(read_binary(&path).is_err(), "truncation must be detected");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_roundtrip() {
        let path = tmp("empty.bin");
        write_binary(&path, &[]).unwrap();
        assert!(read_binary(&path).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
