//! Concurrent mmap-backed out-of-core store (§6.3, the paper's actual
//! design: "We use mmap to build a prototype that swaps to an SSD").
//!
//! [`MmapOocStore`] keeps the legacy [`crate::ooc::OocStore`]'s on-disk
//! layout — adjacency lists in 4 KiB file blocks chained per vertex,
//! forward and transpose, 20-byte `(neighbour, weight, count)` records —
//! but replaces both of its §6.3-prototype bottlenecks:
//!
//! * **Global mutex → per-vertex lock striping.** The legacy store
//!   serializes *every* operation behind one `Mutex<Inner>`, so the
//!   sharded safe phase (PR 2) collapses to serial execution on the OOC
//!   backend. Here each direction has [`STRIPES`] `RwLock` stripes over
//!   the per-vertex chain directories; a block belongs to exactly one
//!   `(vertex, direction)` chain, so holding the owning stripe lock
//!   grants exclusive access to its bytes and commuting safe updates on
//!   distinct vertices proceed concurrently. Lock order is the same as
//!   [`crate::GraphStore`]: out-stripe before in-stripe, never the
//!   reverse, which keeps the two-lock acquisition deadlock-free.
//! * **O(chain) `find` → per-vertex chain index.** The legacy store
//!   walks every block of a vertex's chain to locate a record; on hub
//!   vertices that is a linear scan per update. Each chain directory
//!   here carries a `(neighbour, weight) → (block, slot)` hash index
//!   (tombstones included, so revival hits the same slot), making
//!   `find`/`delete_edge_if`/`edge_count` O(1) regardless of degree,
//!   plus an O(1) live-degree counter.
//!
//! The block file is `mmap`ed `MAP_SHARED` (raw `mmap`/`munmap`/`msync`
//! FFI — the registry-less build environment has no `memmap2`), so block
//! access is a pointer dereference and the kernel pages cold blocks in
//! and out; there is no user-space cache to miss. The mapping grows by
//! doubling: allocation past the mapped region takes the map's write
//! lock, extends the file, and remaps. All block access holds a stripe
//! lock *then* the map's read lock, so growth cannot invalidate a
//! pointer mid-use.
//!
//! [`MmapOocStore::flush`] is `msync(MS_SYNC)` plus a chain-directory
//! sidecar (`<path>.dir`) capturing the live vertex set and every
//! vertex's block chains — the record payloads (counts included) are
//! durable in the block file itself, so `<path>` + `<path>.dir` are
//! self-describing. [`MmapOocStore::open`] is the cold-restart path
//! built on that: it reopens a flushed store *without WAL replay*,
//! rebuilding the in-heap chain directories (indexes, live-degree
//! counters, edge totals, vertex liveness) from the sidecar plus one
//! scan of the referenced blocks. Engine *results* still need a
//! recompute (or WAL replay) on top — the store only persists
//! structure.
//!
//! Out/in chain desyncs are surfaced as [`Error::Corruption`] (not a
//! release-silent `debug_assert!`), matching the legacy store's
//! hardened contract.

use std::fs::{File, OpenOptions};
use std::os::raw::{c_int, c_void};
use std::os::unix::io::AsRawFd;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use risgraph_common::hash::FxHashMap;
use risgraph_common::ids::{Edge, VertexId, Weight};
use risgraph_common::{Error, Result};

use crate::adjacency::{DeleteOutcome, InsertOutcome};
use crate::graph::{DynamicGraph, VertexTable};
use crate::ooc::{
    read_record, record_count, set_record_count, write_record, BLOCK_SIZE, RECORDS_PER_BLOCK,
};
use crate::store::StoreStats;

/// Raw mmap bindings: the environment vendors offline shims instead of
/// crates.io, and `memmap2` is not among them, so the store declares the
/// three libc entry points it needs directly (libc is always linked).
mod sys {
    use super::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const PROT_WRITE: c_int = 0x2;
    pub const MAP_SHARED: c_int = 0x01;
    #[cfg(target_os = "macos")]
    pub const MS_SYNC: c_int = 0x0010;
    #[cfg(not(target_os = "macos"))]
    pub const MS_SYNC: c_int = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
        pub fn msync(addr: *mut c_void, length: usize, flags: c_int) -> c_int;
    }
}

/// Stripe count per direction (power of two). 512 write locks per
/// direction is far beyond the shard counts the epoch loop runs, so
/// cross-vertex contention is negligible while the lock footprint stays
/// fixed as capacity grows.
const STRIPES: usize = 512;

#[inline]
fn stripe_of(v: VertexId) -> usize {
    (v as usize) & (STRIPES - 1)
}

#[inline]
fn slot_of(v: VertexId) -> usize {
    (v as usize) / STRIPES
}

/// The live mapping of the block file.
struct MapRegion {
    ptr: *mut u8,
    /// Mapped length in blocks.
    blocks: usize,
}

// The raw pointer is only dereferenced under the owning stripe lock
// (see `block_ref`/`block_mut` safety contracts), so the region itself
// is freely shareable.
unsafe impl Send for MapRegion {}
unsafe impl Sync for MapRegion {}

impl MapRegion {
    /// # Safety
    /// `id` must be inside the mapping and the caller must hold the
    /// stripe lock (read or write) of the chain owning block `id`.
    #[allow(clippy::mut_from_ref)] // aliasing is governed by the stripe locks
    unsafe fn block_mut(&self, id: u32) -> &mut [u8; BLOCK_SIZE] {
        debug_assert!((id as usize) < self.blocks);
        &mut *(self.ptr.add(id as usize * BLOCK_SIZE) as *mut [u8; BLOCK_SIZE])
    }

    /// # Safety
    /// Like [`Self::block_mut`] but shared: caller holds at least the
    /// owning stripe's read lock (no concurrent writer can exist).
    unsafe fn block_ref(&self, id: u32) -> &[u8; BLOCK_SIZE] {
        debug_assert!((id as usize) < self.blocks);
        &*(self.ptr.add(id as usize * BLOCK_SIZE) as *const [u8; BLOCK_SIZE])
    }
}

/// One vertex's chain directory in one direction: the block chain, the
/// O(1) record locator, and the live-degree counter.
#[derive(Default)]
struct VertexDir {
    /// Block ids of the chain, in append order.
    chain: Vec<u32>,
    /// `(neighbour, weight) → (block, slot)`, tombstones included so a
    /// re-insert revives the original slot (identical layout to the
    /// legacy store's linear `find`).
    index: FxHashMap<(VertexId, Weight), (u32, u32)>,
    /// Records with `count > 0`.
    live: u32,
}

impl VertexDir {
    fn heap_bytes(&self) -> usize {
        self.chain.len() * std::mem::size_of::<u32>()
            + self.index.len()
                * (std::mem::size_of::<(VertexId, Weight)>() + std::mem::size_of::<(u32, u32)>())
    }
}

/// Which chain family an operation targets.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    Out,
    In,
}

/// The concurrent mmap-backed out-of-core store. See the module docs.
pub struct MmapOocStore {
    file: File,
    path: PathBuf,
    map: RwLock<MapRegion>,
    /// Next block id to allocate (blocks are never reused).
    next_block: AtomicU64,
    /// Per-direction stripe locks over the chain directories: vertex
    /// `v`'s directory is `stripes[v % STRIPES][v / STRIPES]`.
    out: Box<[RwLock<Vec<VertexDir>>]>,
    inn: Box<[RwLock<Vec<VertexDir>>]>,
    vertices: VertexTable,
    live_edges: AtomicU64,
    /// Set by [`MmapOocStore::create_temp`]: unlink backing files on drop.
    temp: bool,
}

impl Drop for MmapOocStore {
    fn drop(&mut self) {
        let m = self.map.get_mut();
        if m.blocks > 0 {
            unsafe { sys::munmap(m.ptr as *mut c_void, m.blocks * BLOCK_SIZE) };
        }
        if self.temp {
            let _ = std::fs::remove_file(&self.path);
            let _ = std::fs::remove_file(sidecar_path(&self.path));
        }
    }
}

fn sidecar_path(path: &Path) -> PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".dir");
    PathBuf::from(p)
}

impl MmapOocStore {
    /// Create (truncating) a store at `path` addressing `0..capacity`
    /// vertices.
    pub fn create(path: impl AsRef<Path>, capacity: usize) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        let mut store = MmapOocStore {
            file,
            path,
            map: RwLock::new(MapRegion {
                ptr: std::ptr::null_mut(),
                blocks: 0,
            }),
            next_block: AtomicU64::new(0),
            out: (0..STRIPES)
                .map(|_| RwLock::new(Vec::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            inn: (0..STRIPES)
                .map(|_| RwLock::new(Vec::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            vertices: VertexTable::with_capacity(0),
            live_edges: AtomicU64::new(0),
            temp: false,
        };
        DynamicGraph::ensure_capacity(&mut store, capacity);
        store.ensure_blocks(64)?; // 256 KiB initial mapping
        Ok(store)
    }

    /// Create a store on a fresh file in the system temp directory
    /// (used by the `ooc-mmap` CLI/server backend when no path given).
    pub fn create_temp(capacity: usize) -> Result<Self> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "risgraph-ooc-mmap-{}-{n}.blocks",
            std::process::id()
        ));
        let mut store = Self::create(&path, capacity)?;
        store.temp = true;
        Ok(store)
    }

    /// Reopen a flushed store from `<path>` + `<path>.dir` **without
    /// WAL replay** — the chain-directory cold-restart path. The
    /// sidecar supplies the live vertex set and every vertex's block
    /// chains; one scan of the referenced blocks rebuilds the in-heap
    /// `(nbr, weight) → (block, slot)` indexes, live-degree counters
    /// and the edge total. The reopened store serves the identical
    /// adjacency state (fingerprint-equal, tombstones included) the
    /// flush captured; algorithm results must be recomputed on top.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let raw = std::fs::read(sidecar_path(&path)).map_err(|e| {
            Error::Corruption(format!(
                "cannot read chain-directory sidecar {}: {e}",
                sidecar_path(&path).display()
            ))
        })?;
        // Checksum-first: no field of the sidecar is trusted (in
        // particular none drives an allocation) until the whole body
        // validates.
        if raw.len() < 4 {
            return Err(Error::Corruption(
                "chain-directory sidecar too short".into(),
            ));
        }
        let want_crc = u32::from_le_bytes(raw[..4].try_into().unwrap());
        let dir = &raw[4..];
        if risgraph_common::crc::crc32(dir) != want_crc {
            return Err(Error::Corruption(
                "chain-directory sidecar checksum mismatch".into(),
            ));
        }
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let file_blocks = file.metadata()?.len() as usize / BLOCK_SIZE;

        // A bounds-checked little-endian reader over the sidecar.
        struct Side<'a> {
            buf: &'a [u8],
            pos: usize,
        }
        impl<'a> Side<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8]> {
                if self.pos + n > self.buf.len() {
                    return Err(Error::Corruption(format!(
                        "truncated chain-directory sidecar at offset {}",
                        self.pos
                    )));
                }
                let s = &self.buf[self.pos..self.pos + n];
                self.pos += n;
                Ok(s)
            }
            fn u64(&mut self) -> Result<u64> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
            fn u32(&mut self) -> Result<u32> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn done(&self) -> bool {
                self.pos == self.buf.len()
            }
        }
        let mut c = Side { buf: dir, pos: 0 };
        let capacity = c.u64()? as usize;
        let n_live = c.u64()? as usize;
        if capacity > (1 << 40) || n_live > capacity {
            return Err(Error::Corruption(format!(
                "implausible sidecar header: capacity {capacity}, {n_live} live vertices"
            )));
        }

        let mut store = MmapOocStore {
            file,
            path,
            map: RwLock::new(MapRegion {
                ptr: std::ptr::null_mut(),
                blocks: 0,
            }),
            next_block: AtomicU64::new(0),
            out: (0..STRIPES)
                .map(|_| RwLock::new(Vec::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            inn: (0..STRIPES)
                .map(|_| RwLock::new(Vec::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            vertices: VertexTable::with_capacity(0),
            live_edges: AtomicU64::new(0),
            temp: false,
        };
        DynamicGraph::ensure_capacity(&mut store, capacity);
        store.ensure_blocks(file_blocks.max(64))?;

        for _ in 0..n_live {
            let v = c.u64()?;
            if v as usize >= store.vertices.capacity() {
                return Err(Error::Corruption(format!(
                    "sidecar live vertex {v} beyond capacity {capacity}"
                )));
            }
            store.vertices.mark(v);
        }

        let mut next_block = 0u64;
        let mut live_edges = 0u64;
        while !c.done() {
            let v = c.u64()?;
            if v as usize >= store.vertices.capacity() {
                return Err(Error::Corruption(format!(
                    "sidecar chain vertex {v} beyond capacity {capacity}"
                )));
            }
            let out_len = c.u32()? as usize;
            let in_len = c.u32()? as usize;
            let mut read_chain = |len: usize| -> Result<Vec<u32>> {
                let mut chain = Vec::with_capacity(len.min(file_blocks));
                for _ in 0..len {
                    let b = c.u32()?;
                    if b as usize >= file_blocks {
                        return Err(Error::Corruption(format!(
                            "sidecar references block {b} beyond the {file_blocks}-block file"
                        )));
                    }
                    next_block = next_block.max(b as u64 + 1);
                    chain.push(b);
                }
                Ok(chain)
            };
            let out_chain = read_chain(out_len)?;
            let in_chain = read_chain(in_len)?;
            live_edges += store.rebuild_dir(Dir::Out, v, out_chain)?;
            store.rebuild_dir(Dir::In, v, in_chain)?;
        }
        store.next_block.store(next_block, Ordering::Release);
        store.live_edges.store(live_edges, Ordering::Release);
        Ok(store)
    }

    /// Rebuild one vertex's chain directory from its persisted block
    /// chain: re-index every record (tombstones included, so revival
    /// still hits the original slot) and recount live degree. Returns
    /// the total live multiplicity (the vertex's contribution to the
    /// edge total when `dir` is `Out`).
    fn rebuild_dir(&self, dir: Dir, v: VertexId, chain: Vec<u32>) -> Result<u64> {
        let mut d = VertexDir {
            chain: Vec::new(),
            index: FxHashMap::default(),
            live: 0,
        };
        let mut total = 0u64;
        {
            let m = self.map.read();
            for &block in &chain {
                let b = unsafe { m.block_ref(block) };
                let n = record_count(b);
                if n > RECORDS_PER_BLOCK {
                    return Err(Error::Corruption(format!(
                        "block {block} claims {n} records (max {RECORDS_PER_BLOCK})"
                    )));
                }
                for slot in 0..n {
                    let (nbr, w, count) = read_record(b, slot);
                    d.index.insert((nbr, w), (block, slot as u32));
                    if count > 0 {
                        d.live += 1;
                        total += count as u64;
                    }
                }
            }
        }
        d.chain = chain;
        self.stripes(dir)[stripe_of(v)].write()[slot_of(v)] = d;
        Ok(total)
    }

    /// Grow the file and remap so at least `need` blocks are addressable.
    /// Lock order: callers may hold stripe locks; nobody holds the map
    /// lock when calling (stripe → map, acquired fresh here).
    fn ensure_blocks(&self, need: usize) -> Result<()> {
        if need <= self.map.read().blocks {
            return Ok(());
        }
        let mut m = self.map.write();
        if need <= m.blocks {
            return Ok(());
        }
        let new_blocks = need.next_power_of_two().max(64);
        self.file.set_len((new_blocks * BLOCK_SIZE) as u64)?;
        // Map the new region before unmapping the old one: if mmap
        // fails (address-space pressure), the old mapping stays valid
        // and the store keeps serving its existing blocks — the caller
        // just sees the grow error.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                new_blocks * BLOCK_SIZE,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED,
                self.file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error().into());
        }
        if m.blocks > 0 {
            unsafe { sys::munmap(m.ptr as *mut c_void, m.blocks * BLOCK_SIZE) };
        }
        m.ptr = ptr as *mut u8;
        m.blocks = new_blocks;
        Ok(())
    }

    /// Allocate a fresh (zeroed) block, growing the mapping as needed.
    fn alloc_block(&self) -> Result<u32> {
        let id = self.next_block.fetch_add(1, Ordering::AcqRel);
        self.ensure_blocks(id as usize + 1)?;
        Ok(id as u32)
    }

    fn stripes(&self, dir: Dir) -> &[RwLock<Vec<VertexDir>>] {
        match dir {
            Dir::Out => &self.out,
            Dir::In => &self.inn,
        }
    }

    fn check_capacity_edge(&self, e: Edge) -> Result<()> {
        let cap = self.vertices.capacity() as u64;
        if e.src >= cap {
            return Err(Error::VertexNotFound(e.src));
        }
        if e.dst >= cap {
            return Err(Error::VertexNotFound(e.dst));
        }
        Ok(())
    }

    /// Add one copy of the `(nbr, w)` record to an already-locked
    /// chain directory (caller holds the owning stripe's write lock;
    /// commuting updates on other stripes run concurrently). When
    /// `seq` is given, a WAL sequence stamp is drawn while that lock
    /// is still held (same-edge operations serialize on `src`'s out
    /// stripe, so stamp order equals application order).
    fn bump(
        &self,
        d: &mut VertexDir,
        nbr: VertexId,
        w: Weight,
        seq: Option<&AtomicU64>,
    ) -> Result<(InsertOutcome, u64)> {
        let stamp = |seq: Option<&AtomicU64>| seq.map_or(0, |s| s.fetch_add(1, Ordering::Relaxed));
        if let Some(&(block, slot)) = d.index.get(&(nbr, w)) {
            let m = self.map.read();
            let b = unsafe { m.block_mut(block) };
            let (_, _, count) = read_record(b, slot as usize);
            write_record(b, slot as usize, nbr, w, count + 1);
            let outcome = if count == 0 {
                d.live += 1;
                InsertOutcome::New // revived tombstone
            } else {
                InsertOutcome::Duplicate {
                    new_count: count + 1,
                }
            };
            return Ok((outcome, stamp(seq)));
        }
        // Append: last block with room, else a fresh block on the chain.
        if let Some(&last) = d.chain.last() {
            let m = self.map.read();
            let b = unsafe { m.block_mut(last) };
            let n = record_count(b);
            if n < RECORDS_PER_BLOCK {
                write_record(b, n, nbr, w, 1);
                set_record_count(b, n + 1);
                d.index.insert((nbr, w), (last, n as u32));
                d.live += 1;
                return Ok((InsertOutcome::New, stamp(seq)));
            }
        }
        let block = self.alloc_block()?;
        {
            let m = self.map.read();
            let b = unsafe { m.block_mut(block) };
            write_record(b, 0, nbr, w, 1);
            set_record_count(b, 1);
        }
        d.chain.push(block);
        d.index.insert((nbr, w), (block, 0));
        d.live += 1;
        Ok((InsertOutcome::New, stamp(seq)))
    }

    /// Remove one copy of the `(nbr, w)` record under `v` in `dir` from
    /// an already-locked directory.
    fn decrement_locked(
        &self,
        d: &mut VertexDir,
        nbr: VertexId,
        w: Weight,
    ) -> Option<DeleteOutcome> {
        let &(block, slot) = d.index.get(&(nbr, w))?;
        let m = self.map.read();
        let b = unsafe { m.block_mut(block) };
        let (_, _, count) = read_record(b, slot as usize);
        if count == 0 {
            return None; // tombstone
        }
        write_record(b, slot as usize, nbr, w, count - 1);
        Some(if count == 1 {
            d.live -= 1;
            DeleteOutcome::Removed
        } else {
            DeleteOutcome::Decremented {
                new_count: count - 1,
            }
        })
    }

    fn decrement(&self, dir: Dir, v: VertexId, nbr: VertexId, w: Weight) -> Option<DeleteOutcome> {
        let mut stripe = self.stripes(dir)[stripe_of(v)].write();
        self.decrement_locked(&mut stripe[slot_of(v)], nbr, w)
    }

    /// Insert one copy of `e` (duplicate counting like the in-memory
    /// stores; endpoints are created implicitly).
    pub fn insert_edge(&self, e: Edge) -> Result<InsertOutcome> {
        self.insert_edge_stamped(e, None).map(|(o, _)| o)
    }

    /// [`Self::insert_edge`] with an in-stripe-lock WAL sequence stamp
    /// (see [`Self::bump`]).
    fn insert_edge_stamped(
        &self,
        e: Edge,
        seq: Option<&AtomicU64>,
    ) -> Result<(InsertOutcome, u64)> {
        self.check_capacity_edge(e)?;
        // Lifecycle pin: keeps delete_vertex's isolation check atomic
        // with this insert (see VertexTable::remove_isolated).
        let _pin = self.vertices.pin(e.src, e.dst);
        self.vertices.mark(e.src);
        self.vertices.mark(e.dst);
        // Mirror into the transpose while still holding the out stripe
        // (out → in order, deadlock-free): releasing it first would let
        // a concurrent delete on this edge observe the out record
        // without its transpose and report a spurious desync — while
        // creating a real one.
        let mut out_stripe = self.out[stripe_of(e.src)].write();
        let (outcome, stamp) = self.bump(&mut out_stripe[slot_of(e.src)], e.dst, e.data, seq)?;
        let mirrored = {
            let mut in_stripe = self.inn[stripe_of(e.dst)].write();
            self.bump(&mut in_stripe[slot_of(e.dst)], e.src, e.data, None)
        };
        if let Err(err) = mirrored {
            // A failed mapping grow mid-mirror must not leave the out
            // record without its transpose: undo it so a failed insert
            // is a no-op and the store keeps serving in-sync chains.
            self.decrement_locked(&mut out_stripe[slot_of(e.src)], e.dst, e.data);
            return Err(err);
        }
        drop(out_stripe);
        self.live_edges.fetch_add(1, Ordering::AcqRel);
        Ok((outcome, stamp))
    }

    /// Live multiplicity of the record located by an already-locked
    /// directory's index (0 when absent or tombstoned).
    fn count_locked(&self, d: &VertexDir, nbr: VertexId, w: Weight) -> u32 {
        match d.index.get(&(nbr, w)) {
            Some(&(block, slot)) => {
                let m = self.map.read();
                let b = unsafe { m.block_ref(block) };
                read_record(b, slot as usize).2
            }
            None => 0,
        }
    }

    /// Delete one copy of `e` — [`Self::delete_edge_if`] with an
    /// always-true predicate, so there is exactly one implementation of
    /// the delete protocol (lock order, transpose-first desync
    /// detection, edge accounting).
    pub fn delete_edge(&self, e: Edge) -> Result<DeleteOutcome> {
        Ok(self
            .delete_edge_if_stamped(e, |_| true, None)?
            .map(|(outcome, _)| outcome)
            .expect("always-true predicate cannot reject"))
    }

    /// Conditional delete (the §4 revalidation primitive): the check and
    /// the delete happen under `e.src`'s out-stripe write lock, and the
    /// transpose mirror is taken while still holding it (out → in order,
    /// deadlock-free as in [`crate::GraphStore`]).
    pub fn delete_edge_if(
        &self,
        e: Edge,
        pred: impl FnOnce(u32) -> bool,
    ) -> Result<Option<DeleteOutcome>> {
        self.delete_edge_if_stamped(e, pred, None)
            .map(|r| r.map(|(o, _)| o))
    }

    /// [`Self::delete_edge_if`] with an in-stripe-lock WAL sequence
    /// stamp (see [`Self::bump`]).
    fn delete_edge_if_stamped(
        &self,
        e: Edge,
        pred: impl FnOnce(u32) -> bool,
        seq: Option<&AtomicU64>,
    ) -> Result<Option<(DeleteOutcome, u64)>> {
        if self.check_capacity_edge(e).is_err() {
            return Err(Error::EdgeNotFound(e));
        }
        let mut stripe = self.out[stripe_of(e.src)].write();
        let count = self.count_locked(&stripe[slot_of(e.src)], e.dst, e.data);
        if count == 0 {
            return Err(Error::EdgeNotFound(e));
        }
        if !pred(count) {
            return Ok(None);
        }
        // Transpose first: a desync is reported without mutating.
        if self.decrement(Dir::In, e.dst, e.src, e.data).is_none() {
            return Err(Error::Corruption(format!(
                "out/in chains out of sync for {e:?}"
            )));
        }
        let outcome = self
            .decrement_locked(&mut stripe[slot_of(e.src)], e.dst, e.data)
            .expect("count checked under the held out stripe");
        let stamp = seq.map_or(0, |s| s.fetch_add(1, Ordering::Relaxed));
        drop(stripe);
        self.live_edges.fetch_sub(1, Ordering::AcqRel);
        Ok(Some((outcome, stamp)))
    }

    /// Multiplicity of `e` (0 when absent). O(1) via the chain index.
    pub fn edge_count(&self, e: Edge) -> u32 {
        if self.check_capacity_edge(e).is_err() {
            return 0;
        }
        let stripe = self.out[stripe_of(e.src)].read();
        match stripe[slot_of(e.src)].index.get(&(e.dst, e.data)) {
            Some(&(block, slot)) => {
                let m = self.map.read();
                let b = unsafe { m.block_ref(block) };
                read_record(b, slot as usize).2
            }
            None => 0,
        }
    }

    fn scan(&self, dir: Dir, v: VertexId, f: &mut dyn FnMut(VertexId, Weight, u32)) {
        if (v as usize) >= self.vertices.capacity() {
            return;
        }
        let stripe = self.stripes(dir)[stripe_of(v)].read();
        let d = &stripe[slot_of(v)];
        let m = self.map.read();
        for &block in &d.chain {
            let b = unsafe { m.block_ref(block) };
            let n = record_count(b);
            for i in 0..n {
                let (nbr, w, c) = read_record(b, i);
                if c > 0 {
                    f(nbr, w, c);
                }
            }
        }
    }

    fn degree(&self, dir: Dir, v: VertexId) -> usize {
        if (v as usize) >= self.vertices.capacity() {
            return 0;
        }
        self.stripes(dir)[stripe_of(v)].read()[slot_of(v)].live as usize
    }

    /// Live edges (duplicates included).
    pub fn num_edges(&self) -> u64 {
        self.live_edges.load(Ordering::Acquire)
    }

    /// `msync` the mapping and persist the chain directory sidecar.
    pub fn flush(&self) -> Result<()> {
        {
            let m = self.map.read();
            if m.blocks > 0 {
                let rc = unsafe {
                    sys::msync(m.ptr as *mut c_void, m.blocks * BLOCK_SIZE, sys::MS_SYNC)
                };
                if rc != 0 {
                    return Err(std::io::Error::last_os_error().into());
                }
            }
        }
        self.file.sync_data()?;
        self.write_chain_directory()
    }

    /// Persist the per-vertex chain directory: a CRC32 of everything
    /// that follows, then `[capacity: u64]`, the live vertex set
    /// `[n_live: u64][vertex ids…]`, then for each
    /// vertex with any chain `[v: u64][out_len: u32][in_len:
    /// u32][out block ids…][in block ids…]`, all little-endian,
    /// stripe-major (one lock acquisition per stripe; vertex entries
    /// are therefore not id-sorted). The leading checksum means a
    /// corrupted header (e.g. a flipped capacity byte) is detected
    /// *before* any field is trusted — the open path never allocates
    /// from unverified sizes. Record payloads (counts included)
    /// live in the block file itself, so the sidecar plus the blocks
    /// fully describe the adjacency state — [`MmapOocStore::open`]
    /// rebuilds a serving store from exactly these two files.
    fn write_chain_directory(&self) -> Result<()> {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(&(self.vertices.capacity() as u64).to_le_bytes());
        let mut live: Vec<u64> = Vec::new();
        self.vertices.for_each_live(&mut |v| live.push(v));
        buf.extend_from_slice(&(live.len() as u64).to_le_bytes());
        for v in live {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        for (s, (out, inn)) in self.out.iter().zip(self.inn.iter()).enumerate() {
            let out = out.read();
            let inn = inn.read();
            for (i, (od, id)) in out.iter().zip(inn.iter()).enumerate() {
                let (oc, ic) = (&od.chain, &id.chain);
                if oc.is_empty() && ic.is_empty() {
                    continue;
                }
                let v = (i * STRIPES + s) as u64;
                buf.extend_from_slice(&v.to_le_bytes());
                buf.extend_from_slice(&(oc.len() as u32).to_le_bytes());
                buf.extend_from_slice(&(ic.len() as u32).to_le_bytes());
                for &b in oc.iter().chain(ic.iter()) {
                    buf.extend_from_slice(&b.to_le_bytes());
                }
            }
        }
        let mut out = Vec::with_capacity(buf.len() + 4);
        out.extend_from_slice(&risgraph_common::crc::crc32(&buf).to_le_bytes());
        out.extend_from_slice(&buf);
        let tmp = sidecar_path(&self.path).with_extension("dir.tmp");
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, sidecar_path(&self.path))?;
        Ok(())
    }
}

impl DynamicGraph for MmapOocStore {
    fn backend_name(&self) -> &'static str {
        "OOC_MMAP"
    }

    fn capacity(&self) -> usize {
        self.vertices.capacity()
    }

    fn ensure_capacity(&mut self, n: usize) {
        if n <= self.vertices.capacity() {
            return;
        }
        let n = n.next_power_of_two().max(16);
        let per_stripe = n.div_ceil(STRIPES);
        for stripe in self.out.iter_mut().chain(self.inn.iter_mut()) {
            stripe.get_mut().resize_with(per_stripe, VertexDir::default);
        }
        self.vertices.ensure_capacity(n);
    }

    fn vertex_upper_bound(&self) -> u64 {
        self.vertices.upper_bound()
    }

    fn num_vertices(&self) -> u64 {
        self.vertices.live()
    }

    fn num_edges(&self) -> u64 {
        MmapOocStore::num_edges(self)
    }

    fn vertex_exists(&self, v: VertexId) -> bool {
        self.vertices.exists(v)
    }

    fn insert_vertex(&self, v: VertexId) -> Result<()> {
        if (v as usize) >= self.vertices.capacity() {
            return Err(Error::VertexNotFound(v));
        }
        self.vertices.insert(v)
    }

    fn create_vertex(&self) -> Result<VertexId> {
        self.vertices.create()
    }

    fn delete_vertex(&self, v: VertexId) -> Result<()> {
        let scratch = AtomicU64::new(0);
        DynamicGraph::delete_vertex_seq(self, v, &scratch).map(|_| ())
    }

    fn insert_vertex_seq(&self, v: VertexId, seq: &AtomicU64) -> Result<u64> {
        self.vertices.insert_seq(v, seq)
    }

    fn delete_vertex_seq(&self, v: VertexId, seq: &AtomicU64) -> Result<u64> {
        if (v as usize) >= self.vertices.capacity() {
            return Err(Error::VertexNotFound(v));
        }
        self.vertices.remove_isolated_seq(
            v,
            || self.degree(Dir::Out, v) == 0 && self.degree(Dir::In, v) == 0,
            seq,
        )
    }

    fn insert_edge(&self, e: Edge) -> Result<InsertOutcome> {
        MmapOocStore::insert_edge(self, e)
    }

    fn delete_edge(&self, e: Edge) -> Result<DeleteOutcome> {
        MmapOocStore::delete_edge(self, e)
    }

    fn delete_edge_if(
        &self,
        e: Edge,
        pred: &mut dyn FnMut(u32) -> bool,
    ) -> Result<Option<DeleteOutcome>> {
        MmapOocStore::delete_edge_if(self, e, pred)
    }

    fn insert_edge_seq(&self, e: Edge, seq: &AtomicU64) -> Result<(InsertOutcome, u64)> {
        MmapOocStore::insert_edge_stamped(self, e, Some(seq))
    }

    fn delete_edge_if_seq(
        &self,
        e: Edge,
        pred: &mut dyn FnMut(u32) -> bool,
        seq: &AtomicU64,
    ) -> Result<Option<(DeleteOutcome, u64)>> {
        MmapOocStore::delete_edge_if_stamped(self, e, pred, Some(seq))
    }

    fn edge_count(&self, e: Edge) -> u32 {
        MmapOocStore::edge_count(self, e)
    }

    fn scan_out(&self, v: VertexId, f: &mut dyn FnMut(VertexId, Weight, u32)) {
        self.scan(Dir::Out, v, f)
    }

    fn scan_in(&self, v: VertexId, f: &mut dyn FnMut(VertexId, Weight, u32)) {
        self.scan(Dir::In, v, f)
    }

    fn out_degree(&self, v: VertexId) -> usize {
        self.degree(Dir::Out, v)
    }

    fn in_degree(&self, v: VertexId) -> usize {
        self.degree(Dir::In, v)
    }

    fn for_each_vertex(&self, f: &mut dyn FnMut(VertexId)) {
        self.vertices.for_each_live(f);
    }

    fn stats(&self) -> StoreStats {
        let mut distinct = 0u64;
        let mut tombstones = 0u64;
        let mut dir_bytes = 0usize;
        // One lock acquisition per stripe, not two per vertex:
        // directories beyond the populated range are empty and
        // contribute nothing.
        for stripe in self.out.iter() {
            let stripe = stripe.read();
            for d in stripe.iter() {
                distinct += d.live as u64;
                tombstones += d.index.len() as u64 - d.live as u64;
                dir_bytes += d.heap_bytes();
            }
        }
        for stripe in self.inn.iter() {
            let stripe = stripe.read();
            for d in stripe.iter() {
                dir_bytes += d.heap_bytes();
            }
        }
        StoreStats {
            vertices: self.vertices.live(),
            edges: MmapOocStore::num_edges(self),
            distinct_edges: distinct,
            tombstones,
            indexed_vertices: self.vertices.live(), // every chain is indexed
            // The mapping is file-backed and pageable; charge the
            // in-heap directories plus the mapped window, mirroring the
            // legacy store's resident-cache accounting.
            memory_bytes: dir_bytes + self.map.read().blocks * BLOCK_SIZE,
        }
    }

    fn flush(&self) -> Result<()> {
        MmapOocStore::flush(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::GraphStore;
    use crate::HashIndex;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("risgraph-ooc-mmap-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.blocks", std::process::id()))
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(sidecar_path(path));
    }

    #[test]
    fn basic_roundtrip() {
        let path = tmp("basic");
        let s = MmapOocStore::create(&path, 16).unwrap();
        assert_eq!(
            s.insert_edge(Edge::new(1, 2, 5)).unwrap(),
            InsertOutcome::New
        );
        assert!(matches!(
            s.insert_edge(Edge::new(1, 2, 5)).unwrap(),
            InsertOutcome::Duplicate { new_count: 2 }
        ));
        s.insert_edge(Edge::new(1, 3, 7)).unwrap();
        assert_eq!(s.edge_count(Edge::new(1, 2, 5)), 2);
        assert_eq!(s.num_edges(), 3);
        assert!(matches!(
            s.delete_edge(Edge::new(1, 2, 5)).unwrap(),
            DeleteOutcome::Decremented { new_count: 1 }
        ));
        assert!(s.delete_edge(Edge::new(9, 9, 9)).is_err());
        let mut seen = Vec::new();
        s.scan(Dir::Out, 1, &mut |d, w, c| seen.push((d, w, c)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(2, 5, 1), (3, 7, 1)]);
        let mut inn = Vec::new();
        s.scan(Dir::In, 2, &mut |d, w, c| inn.push((d, w, c)));
        assert_eq!(inn, vec![(1, 5, 1)]);
        assert_eq!(DynamicGraph::out_degree(&s, 1), 2);
        assert_eq!(DynamicGraph::in_degree(&s, 2), 1);
        drop(s);
        cleanup(&path);
    }

    #[test]
    fn grows_past_the_initial_mapping() {
        // 64 initial blocks; a 30k-record hub needs ~150 blocks per
        // direction, forcing several remaps mid-stream.
        let path = tmp("grow");
        let s = MmapOocStore::create(&path, 64).unwrap();
        let n = 30_000u64;
        for i in 0..n {
            s.insert_edge(Edge::new(0, i % 64, i)).unwrap();
        }
        assert!(s.map.read().blocks > 64, "mapping never grew");
        let mut count = 0u64;
        s.scan(Dir::Out, 0, &mut |_, _, _| count += 1);
        assert_eq!(count, n, "records lost across remaps");
        for i in (0..n).step_by(997) {
            assert_eq!(s.edge_count(Edge::new(0, i % 64, i)), 1);
        }
        drop(s);
        cleanup(&path);
    }

    #[test]
    fn differential_vs_in_memory_store() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x33A9);
        let path = tmp("diff");
        let ooc = MmapOocStore::create(&path, 32).unwrap();
        let mem: GraphStore<HashIndex> = GraphStore::with_capacity(32);
        let mut live: Vec<Edge> = Vec::new();
        for _ in 0..2000 {
            if !live.is_empty() && rng.gen_bool(0.4) {
                let e = live.swap_remove(rng.gen_range(0..live.len()));
                ooc.delete_edge(e).unwrap();
                mem.delete_edge(e).unwrap();
            } else {
                let e = Edge::new(
                    rng.gen_range(0..32),
                    rng.gen_range(0..32),
                    rng.gen_range(0..4),
                );
                live.push(e);
                ooc.insert_edge(e).unwrap();
                mem.insert_edge(e).unwrap();
            }
        }
        assert_eq!(ooc.num_edges(), mem.num_edges());
        for v in 0..32u64 {
            let mut a = Vec::new();
            ooc.scan(Dir::Out, v, &mut |d, w, c| a.push((d, w, c)));
            a.sort_unstable();
            let mut b: Vec<(u64, u64, u32)> = mem
                .out(v)
                .iter_live()
                .map(|s| (s.dst, s.data, s.count))
                .collect();
            b.sort_unstable();
            assert_eq!(a, b, "vertex {v} out");
            let mut ai = Vec::new();
            ooc.scan(Dir::In, v, &mut |d, w, c| ai.push((d, w, c)));
            ai.sort_unstable();
            let mut bi: Vec<(u64, u64, u32)> = mem
                .inn(v)
                .iter_live()
                .map(|s| (s.dst, s.data, s.count))
                .collect();
            bi.sort_unstable();
            assert_eq!(ai, bi, "vertex {v} in");
            assert_eq!(DynamicGraph::out_degree(&ooc, v), b.len(), "degree {v}");
        }
        drop(ooc);
        cleanup(&path);
    }

    #[test]
    fn concurrent_disjoint_inserts_and_hub_hammering() {
        use std::sync::Arc;
        let path = tmp("conc");
        let s = Arc::new(MmapOocStore::create(&path, 1 << 12).unwrap());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    // Disjoint sources + everyone hammering hub 0's
                    // in-chains through distinct dsts.
                    s.insert_edge(Edge::new(t * 500 + i + 1, 0, i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.num_edges(), 4000);
        assert_eq!(DynamicGraph::in_degree(&*s, 0), 4000);
        drop(s);
        cleanup(&path);
    }

    #[test]
    fn concurrent_conditional_deletes_never_oversell() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let path = tmp("condel");
        let s = Arc::new(MmapOocStore::create(&path, 8).unwrap());
        let e = Edge::new(1, 2, 0);
        for _ in 0..4 {
            s.insert_edge(e).unwrap();
        }
        let wins = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            let wins = Arc::clone(&wins);
            handles.push(std::thread::spawn(move || {
                if let Ok(Some(_)) = s.delete_edge_if(e, |c| c > 1) {
                    wins.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::SeqCst), 3);
        assert_eq!(s.edge_count(e), 1);
        drop(s);
        cleanup(&path);
    }

    #[test]
    fn flush_persists_blocks_and_sidecar() {
        let path = tmp("flush");
        {
            let s = MmapOocStore::create(&path, 8).unwrap();
            for i in 0..300u64 {
                s.insert_edge(Edge::new(1, i % 8, i)).unwrap();
            }
            DynamicGraph::flush(&s).unwrap();
            let len = std::fs::metadata(&path).unwrap().len();
            assert!(len >= 2 * BLOCK_SIZE as u64, "file only {len} bytes");
            let dir = std::fs::read(sidecar_path(&path)).unwrap();
            assert!(
                dir.len() > 12,
                "sidecar must describe at least one vertex chain"
            );
            // Leading CRC over the body, then the capacity header.
            assert_eq!(
                u32::from_le_bytes(dir[..4].try_into().unwrap()),
                risgraph_common::crc::crc32(&dir[4..])
            );
            assert_eq!(
                u64::from_le_bytes(dir[4..12].try_into().unwrap()),
                s.capacity() as u64
            );
        }
        cleanup(&path);
    }

    #[test]
    fn forged_chain_desync_surfaces_as_corruption() {
        let path = tmp("desync");
        let s = MmapOocStore::create(&path, 8).unwrap();
        s.insert_edge(Edge::new(1, 2, 0)).unwrap();
        // Forge the desync: consume the transpose record only.
        s.decrement(Dir::In, 2, 1, 0).expect("transpose present");
        assert!(matches!(
            s.delete_edge(Edge::new(1, 2, 0)),
            Err(Error::Corruption(_))
        ));
        let s2_path = tmp("desync-if");
        let s2 = MmapOocStore::create(&s2_path, 8).unwrap();
        s2.insert_edge(Edge::new(3, 4, 1)).unwrap();
        s2.decrement(Dir::In, 4, 3, 1).expect("transpose present");
        assert!(matches!(
            s2.delete_edge_if(Edge::new(3, 4, 1), |_| true),
            Err(Error::Corruption(_))
        ));
        drop((s, s2));
        cleanup(&path);
        cleanup(&s2_path);
    }

    #[test]
    fn vertex_lifecycle_and_dynamic_graph() {
        let path = tmp("dyn");
        let mut s = MmapOocStore::create(&path, 8).unwrap();
        s.insert_edge(Edge::new(1, 2, 0)).unwrap();
        assert_eq!(DynamicGraph::num_vertices(&s), 2);
        assert!(matches!(
            DynamicGraph::delete_vertex(&s, 1),
            Err(Error::VertexNotIsolated(1))
        ));
        assert_eq!(
            MmapOocStore::delete_edge_if(&s, Edge::new(1, 2, 0), |c| c > 1).unwrap(),
            None
        );
        MmapOocStore::delete_edge(&s, Edge::new(1, 2, 0)).unwrap();
        DynamicGraph::delete_vertex(&s, 1).unwrap();
        DynamicGraph::ensure_capacity(&mut s, 3000);
        s.insert_edge(Edge::new(2900, 2901, 1)).unwrap();
        assert_eq!(DynamicGraph::edge_count(&s, Edge::new(2900, 2901, 1)), 1);
        let st = DynamicGraph::stats(&s);
        assert_eq!(st.edges, 1);
        assert_eq!(st.distinct_edges, 1);
        assert_eq!(st.tombstones, 1, "the deleted 1→2 record remains");
        assert!(st.memory_bytes > 0);
        drop(s);
        cleanup(&path);
    }

    /// Canonical adjacency + liveness fingerprint of a store:
    /// `(edges, vertices, per-vertex sorted adjacency, liveness)`.
    type Fingerprint = (u64, u64, Vec<Vec<(u64, u64, u32)>>, Vec<bool>);

    fn fingerprint(s: &MmapOocStore, n: u64) -> Fingerprint {
        let mut adj = Vec::new();
        let mut live = Vec::new();
        for v in 0..n {
            let mut a = Vec::new();
            s.scan(Dir::Out, v, &mut |d, w, c| a.push((d, w, c)));
            a.sort_unstable();
            adj.push(a);
            live.push(s.vertices.exists(v));
        }
        (s.num_edges(), DynamicGraph::num_vertices(s), adj, live)
    }

    #[test]
    fn cold_restart_reopens_the_flushed_store_without_wal_replay() {
        let path = tmp("cold-restart");
        let want = {
            let s = MmapOocStore::create(&path, 64).unwrap();
            // Duplicates, tombstones, an explicitly-inserted isolated
            // vertex, and a fully-emptied-but-live vertex — everything
            // the sidecar must round-trip.
            for i in 0..40u64 {
                s.insert_edge(Edge::new(i % 8, (i * 3) % 8, i % 4)).unwrap();
            }
            s.insert_edge(Edge::new(1, 2, 99)).unwrap();
            s.delete_edge(Edge::new(1, 2, 99)).unwrap(); // tombstone
            DynamicGraph::insert_vertex(&s, 50).unwrap(); // isolated
            s.insert_edge(Edge::new(40, 41, 7)).unwrap();
            s.delete_edge(Edge::new(40, 41, 7)).unwrap(); // 40/41 stay live
            DynamicGraph::flush(&s).unwrap();
            fingerprint(&s, 64)
        };
        let s = MmapOocStore::open(&path).unwrap();
        assert_eq!(fingerprint(&s, 64), want, "reopened state differs");
        // In-chains, degrees and O(1) lookups were rebuilt too.
        assert_eq!(s.edge_count(Edge::new(1, 2, 99)), 0, "tombstone stays dead");
        assert!(DynamicGraph::vertex_exists(&s, 50));
        let mut inn = Vec::new();
        s.scan(Dir::In, 0, &mut |d, w, c| inn.push((d, w, c)));
        assert!(!inn.is_empty(), "transpose chains rebuilt");
        // The reopened store keeps serving: revival reuses the original
        // slot and fresh blocks allocate past the recovered maximum.
        assert_eq!(
            s.insert_edge(Edge::new(1, 2, 99)).unwrap(),
            InsertOutcome::New
        );
        assert_eq!(s.edge_count(Edge::new(1, 2, 99)), 1);
        let st = DynamicGraph::stats(&s);
        assert_eq!(st.tombstones, 1, "the 40→41 tombstone survives reopen");
        for i in 0..300u64 {
            s.insert_edge(Edge::new(42, i % 64, i)).unwrap();
        }
        assert_eq!(DynamicGraph::out_degree(&s, 42), 300);
        drop(s);
        cleanup(&path);
    }

    #[test]
    fn open_rejects_missing_or_corrupt_sidecars() {
        let path = tmp("cold-missing");
        assert!(matches!(
            MmapOocStore::open(&path),
            Err(Error::Corruption(_))
        ));
        {
            let s = MmapOocStore::create(&path, 8).unwrap();
            s.insert_edge(Edge::new(1, 2, 0)).unwrap();
            DynamicGraph::flush(&s).unwrap();
        }
        // Truncate the sidecar mid-entry: the checksum catches it.
        let sidecar = sidecar_path(&path);
        let bytes = std::fs::read(&sidecar).unwrap();
        std::fs::write(&sidecar, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            MmapOocStore::open(&path),
            Err(Error::Corruption(_))
        ));
        // Re-checksum a forged body so the *parser's* bounds checks are
        // exercised, not just the CRC. Forge a chain block id pointing
        // beyond the block file: corruption, not UB.
        let reseal = |body: &[u8]| {
            let mut out = risgraph_common::crc::crc32(body).to_le_bytes().to_vec();
            out.extend_from_slice(body);
            out
        };
        let mut forged = bytes[4..].to_vec();
        let n = forged.len();
        forged[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&sidecar, reseal(&forged)).unwrap();
        assert!(matches!(
            MmapOocStore::open(&path),
            Err(Error::Corruption(_))
        ));
        // A validly-checksummed header with an absurd capacity is
        // refused before it drives any allocation.
        let mut forged = bytes[4..].to_vec();
        forged[..8].copy_from_slice(&(1u64 << 50).to_le_bytes());
        std::fs::write(&sidecar, reseal(&forged)).unwrap();
        assert!(matches!(
            MmapOocStore::open(&path),
            Err(Error::Corruption(_))
        ));
        // A flipped header byte without resealing fails the checksum.
        let mut flipped = bytes.clone();
        flipped[5] ^= 0xFF;
        std::fs::write(&sidecar, &flipped).unwrap();
        assert!(matches!(
            MmapOocStore::open(&path),
            Err(Error::Corruption(_))
        ));
        cleanup(&path);
    }

    #[test]
    fn tombstone_revival_reuses_the_slot() {
        let path = tmp("revive");
        let s = MmapOocStore::create(&path, 8).unwrap();
        let e = Edge::new(1, 2, 9);
        s.insert_edge(e).unwrap();
        assert!(matches!(s.delete_edge(e).unwrap(), DeleteOutcome::Removed));
        assert_eq!(s.edge_count(e), 0);
        assert_eq!(s.insert_edge(e).unwrap(), InsertOutcome::New);
        assert_eq!(s.edge_count(e), 1);
        // Still exactly one indexed record (no duplicate slots).
        let st = DynamicGraph::stats(&s);
        assert_eq!((st.distinct_edges, st.tombstones), (1, 0));
        drop(s);
        cleanup(&path);
    }
}
