//! Graph stores for the RisGraph reproduction.
//!
//! The centerpiece is [`GraphStore`], the paper's **Indexed Adjacency
//! Lists** (§3.1, §5): one dynamic array of edges per vertex — kept
//! contiguous for analytical scans — plus a per-vertex edge index
//! (`(dst, weight) → offset`) created once the vertex's degree exceeds a
//! threshold (512 by default). Insertions and deletions are O(1) average
//! with the hash index; duplicate edges are stored once with a
//! multiplicity count; deleted edges become tombstones that are recycled
//! when the array doubles.
//!
//! ## The backend matrix
//!
//! Every store implements [`DynamicGraph`], the storage contract the
//! engine/server tier is generic over, so one engine drives the full
//! §6.3 / Table 8/9 comparison — selected at runtime with
//! `--store <backend>` on the CLI or [`BackendKind`] in [`backend`]:
//!
//! | backend | CLI spelling | layout |
//! |---------|--------------|--------|
//! | [`GraphStore<HashIndex>`] | `ia-hash` | Indexed Adjacency Lists, hash indexes (paper default) |
//! | [`GraphStore<BTreeIndex>`] | `ia-btree` | Indexed Adjacency Lists, B-tree indexes |
//! | [`GraphStore<ArtIndex>`] | `ia-art` | Indexed Adjacency Lists, ART indexes |
//! | [`index_only::IndexOnlyStore<HashIndex>`] | `io-hash` | edges only in per-vertex indexes |
//! | [`index_only::IndexOnlyStore<BTreeIndex>`] | `io-btree` | ditto, B-tree |
//! | [`index_only::IndexOnlyStore<ArtIndex>`] | `io-art` | ditto, ART |
//! | [`ooc::OocStore`] | `ooc` | 4 KiB file-block chains + LRU cache (§6.3 out-of-core prototype) |
//! | [`ooc_mmap::MmapOocStore`] | `ooc-mmap` | mmap-backed block chains, per-vertex lock striping + chain indexes (§6.3, concurrent) |
//!
//! [`backend::AnyStore`] enum-dispatches the trait over all of them so
//! the server stays a single concrete type.
//!
//! The [`index`] module provides the three index families evaluated in
//! Table 8/9 (Hash, BTree, ART), and [`baseline`] the scan-based and
//! bloom-filter ingest baselines used to reproduce Figure 4. [`csr`]
//! builds immutable CSR snapshots for the recompute baselines and for
//! differential-testing the mutable stores.

pub mod adjacency;
pub mod backend;
pub mod baseline;
pub mod csr;
pub mod graph;
pub mod index;
pub mod index_only;
pub mod ooc;
pub mod ooc_mmap;
pub mod store;

pub use adjacency::{AdjacencyList, DeleteOutcome, EdgeSlot, InsertOutcome};
pub use backend::{AnyStore, BackendKind};
pub use graph::{DynamicGraph, VertexPin, VertexTable};
pub use index::{art::ArtIndex, btree::BTreeIndex, hash::HashIndex, EdgeIndex};
pub use index_only::IndexOnlyStore;
pub use ooc::OocStore;
pub use ooc_mmap::MmapOocStore;
pub use store::{GraphStore, StoreConfig, StoreStats};

/// Default degree threshold above which a per-vertex index is built
/// (§5: "In our implementations, the threshold is 512").
pub const DEFAULT_INDEX_THRESHOLD: usize = 512;

/// A [`GraphStore`] with the paper's default hash index (IA_Hash).
pub type DefaultStore = GraphStore<HashIndex>;
