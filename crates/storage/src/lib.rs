//! Graph stores for the RisGraph reproduction.
//!
//! The centerpiece is [`GraphStore`], the paper's **Indexed Adjacency
//! Lists** (§3.1, §5): one dynamic array of edges per vertex — kept
//! contiguous for analytical scans — plus a per-vertex edge index
//! (`(dst, weight) → offset`) created once the vertex's degree exceeds a
//! threshold (512 by default). Insertions and deletions are O(1) average
//! with the hash index; duplicate edges are stored once with a
//! multiplicity count; deleted edges become tombstones that are recycled
//! when the array doubles.
//!
//! The [`index`] module provides the three index families evaluated in
//! Table 8/9 (Hash, BTree, ART), [`index_only`] the IO_* store variants,
//! and [`baseline`] the scan-based and bloom-filter ingest baselines used
//! to reproduce Figure 4. [`csr`] builds immutable CSR snapshots for the
//! recompute baselines and for differential-testing the mutable store.

pub mod adjacency;
pub mod baseline;
pub mod csr;
pub mod index;
pub mod index_only;
pub mod ooc;
pub mod store;

pub use adjacency::{AdjacencyList, DeleteOutcome, EdgeSlot, InsertOutcome};
pub use index::{art::ArtIndex, btree::BTreeIndex, hash::HashIndex, EdgeIndex};
pub use store::{GraphStore, StoreConfig, StoreStats};

/// Default degree threshold above which a per-vertex index is built
/// (§5: "In our implementations, the threshold is 512").
pub const DEFAULT_INDEX_THRESHOLD: usize = 512;

/// A [`GraphStore`] with the paper's default hash index (IA_Hash).
pub type DefaultStore = GraphStore<HashIndex>;
